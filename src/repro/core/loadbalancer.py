"""Load balancing: levels and policies (paper section 3.2).

Levels: *connection* (replica chosen when the client connects, sticky
thereafter — "simple, but offers poor balancing when clients use
connection pools"), *transaction* (chosen per transaction) and *query*
(chosen per read query).

Policies: round-robin, uniform random, weighted (heterogeneous clusters,
section 4.1.3), LPRF — "least pending requests first" as used by C-JDBC —
and a Tashkent+-style memory-aware policy that prefers the replica whose
working set already contains the transaction's tables.
"""

from __future__ import annotations

import enum
import random
from typing import Callable, List, Optional, Sequence

from .replica import Replica


class BalancingLevel(enum.Enum):
    CONNECTION = "connection"
    TRANSACTION = "transaction"
    QUERY = "query"


class NoReplicaAvailable(Exception):
    """Every candidate replica is down or excluded."""


class RoutingContext:
    """What a policy may look at when choosing."""

    __slots__ = ("tables", "session_id", "is_write")

    def __init__(self, tables: Optional[Sequence[str]] = None,
                 session_id: Optional[int] = None, is_write: bool = False):
        # Policies only read `tables`; reuse caller lists (the analysis
        # cache hands out one sorted list per statement shape) instead of
        # copying on every routed read.
        if type(tables) is list:
            self.tables = tables
        else:
            self.tables = list(tables or [])
        self.session_id = session_id
        self.is_write = is_write


class Policy:
    """Base class: pick one replica among online candidates."""

    name = "base"

    def choose(self, candidates: List[Replica],
               context: RoutingContext) -> Replica:
        raise NotImplementedError


class RoundRobinPolicy(Policy):
    name = "round_robin"

    def __init__(self):
        self._next = 0

    def choose(self, candidates: List[Replica],
               context: RoutingContext) -> Replica:
        replica = candidates[self._next % len(candidates)]
        self._next += 1
        return replica


class RandomPolicy(Policy):
    name = "random"

    def __init__(self, seed: int = 1):
        self._rng = random.Random(seed)

    def choose(self, candidates: List[Replica],
               context: RoutingContext) -> Replica:
        return self._rng.choice(candidates)


class WeightedPolicy(Policy):
    """Weighted random — weights express heterogeneous capacity."""

    name = "weighted"

    def __init__(self, seed: int = 1):
        self._rng = random.Random(seed)

    def choose(self, candidates: List[Replica],
               context: RoutingContext) -> Replica:
        total = sum(r.weight for r in candidates)
        roll = self._rng.uniform(0, total)
        cursor = 0.0
        for replica in candidates:
            cursor += replica.weight
            if roll <= cursor:
                return replica
        return candidates[-1]


class LeastPendingPolicy(Policy):
    """LPRF: route to the replica with the fewest pending requests — the
    dynamic policy the paper credits with absorbing heterogeneity [8]."""

    name = "lprf"

    def choose(self, candidates: List[Replica],
               context: RoutingContext) -> Replica:
        return min(candidates, key=lambda r: (r.load, r.name))


class MemoryAwarePolicy(Policy):
    """Tashkent+-flavoured: prefer replicas whose hot set covers the
    transaction's tables, so execution stays in memory; break ties with a
    base policy."""

    name = "memory_aware"

    def __init__(self, base: Optional[Policy] = None,
                 hot_bonus: float = 1.0, working_set_capacity: int = 8):
        self.base = base or LeastPendingPolicy()
        self.hot_bonus = hot_bonus
        self.working_set_capacity = working_set_capacity

    def choose(self, candidates: List[Replica],
               context: RoutingContext) -> Replica:
        if not context.tables:
            chosen = self.base.choose(candidates, context)
        else:
            def score(replica: Replica) -> tuple:
                hotness = replica.hotness(context.tables)
                # higher hotness first; among equally-cold replicas prefer
                # the one with the most free working-set capacity, so
                # distinct working sets spread across the cluster
                return (-hotness * self.hot_bonus, len(replica.hot_tables),
                        replica.load, replica.name)
            chosen = min(candidates, key=score)
        chosen.note_hot_tables(context.tables, self.working_set_capacity)
        return chosen


POLICIES = {
    "round_robin": RoundRobinPolicy,
    "random": RandomPolicy,
    "weighted": WeightedPolicy,
    "lprf": LeastPendingPolicy,
    "memory_aware": MemoryAwarePolicy,
}


class LoadBalancer:
    """Chooses a read replica at the configured granularity.

    The balancer is *state held in the middleware*: if the middleware
    instance dies, sticky assignments die with it (the SPOF discussion of
    section 3.2 — exercised by benchmark E09).
    """

    def __init__(self, policy: Optional[Policy] = None,
                 level: BalancingLevel = BalancingLevel.QUERY):
        self.policy = policy or RoundRobinPolicy()
        self.level = level
        # session id -> sticky replica name (connection/transaction level)
        self._sticky: dict = {}
        self.decisions = 0
        # Optional health veto (name -> admissible?), installed by the
        # resilience layer's circuit breakers: a replica may be nominally
        # online yet ejected from candidacy because it keeps failing
        # requests faster than any failure detector would notice.
        self._health_filter: Optional[Callable[[str], bool]] = None
        self.health_rejections = 0
        # Reads answered by the result cache never reach `choose`: they
        # add zero replica load.  Counted so load accounting (decisions vs
        # actual traffic) stays explainable in experiments.
        self.cache_bypasses = 0
        # Why the last `choose` picked what it picked — read by the
        # tracing layer to tag the balancer.choose span (repro.obs).
        # One dict mutated in place: consumers read it synchronously
        # right after `choose` returns, so reusing the allocation is
        # safe and keeps the per-read garbage flat.
        self.last_decision: Optional[dict] = None

    def note_cache_hit(self) -> None:
        """A read was served from the middleware result cache instead of
        being balanced onto a replica."""
        self.cache_bypasses += 1

    def set_health_filter(self,
                          health: Optional[Callable[[str], bool]]) -> None:
        self._health_filter = health

    def choose(self, replicas: List[Replica], context: RoutingContext,
               exclude: Optional[set] = None) -> Replica:
        candidates = [
            r for r in replicas
            if r.can_serve and (exclude is None or r.name not in exclude)
        ]
        if not candidates:
            raise NoReplicaAvailable("no online replica can serve the request")
        if self._health_filter is not None:
            healthy = [r for r in candidates if self._health_filter(r.name)]
            if not healthy:
                self.health_rejections += 1
                from .errors import CircuitOpen
                raise CircuitOpen(
                    "every candidate replica is ejected by its circuit "
                    f"breaker ({[r.name for r in candidates]})")
            candidates = healthy
        self.decisions += 1

        if self.level is BalancingLevel.QUERY or context.session_id is None:
            chosen = self.policy.choose(candidates, context)
            self._note_decision(chosen, candidates, sticky=False)
            return chosen

        sticky_name = self._sticky.get(context.session_id)
        if sticky_name is not None:
            for replica in candidates:
                if replica.name == sticky_name:
                    self._note_decision(replica, candidates, sticky=True)
                    return replica
        chosen = self.policy.choose(candidates, context)
        self._sticky[context.session_id] = chosen.name
        self._note_decision(chosen, candidates, sticky=False)
        return chosen

    def _note_decision(self, chosen: Replica, candidates: List[Replica],
                       sticky: bool) -> None:
        decision = self.last_decision
        if decision is None:
            decision = self.last_decision = {}
        decision["policy"] = self.policy.name
        decision["replica"] = chosen.name
        decision["candidates"] = len(candidates)
        decision["sticky"] = sticky

    def end_transaction(self, session_id: int) -> None:
        """Transaction-level balancing drops stickiness at commit."""
        if self.level is BalancingLevel.TRANSACTION:
            self._sticky.pop(session_id, None)

    def end_connection(self, session_id: int) -> None:
        self._sticky.pop(session_id, None)

    def forget_replica(self, name: str) -> None:
        """Failover: drop sticky assignments to a dead replica."""
        self._sticky = {
            session: replica
            for session, replica in self._sticky.items()
            if replica != name
        }
