"""Failover and failback (paper sections 2.2, 4.3.3).

* :class:`VirtualIP` — the Figure 3 switchover primitive: clients address
  one stable name; failover re-points it.
* :class:`FailoverManager` — reacts to replica failures: removes the
  replica from service, promotes a new master when the master died
  (measuring promotion work), and performs failback-with-resync when a
  replica returns.
* 1-safe vs 2-safe accounting: on a master failure the manager reports the
  transactions that were committed at the master but never reached any
  survivor — the "determining which transactions are lost ... remains a
  manual procedure" window of section 2.2.  Under 2-safe (synchronous)
  propagation that count is zero by construction.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .middleware import ReplicationMiddleware
from .replica import Replica, ReplicaState


class VirtualIP:
    """A stable client-facing address re-pointable between targets [10]."""

    def __init__(self, name: str, target: str):
        self.name = name
        self.target = target
        self.switch_count = 0
        self.history: List[str] = [target]

    def switch(self, new_target: str) -> None:
        self.target = new_target
        self.switch_count += 1
        self.history.append(new_target)

    def __repr__(self) -> str:
        return f"VirtualIP({self.name!r} -> {self.target!r})"


class FailoverReport:
    """What one failover cost."""

    __slots__ = ("failed_replica", "new_master", "lost_transactions",
                 "promoted", "drained_items")

    def __init__(self, failed_replica: str,
                 new_master: Optional[str] = None,
                 lost_transactions: int = 0, promoted: bool = False,
                 drained_items: int = 0):
        self.failed_replica = failed_replica
        self.new_master = new_master
        self.lost_transactions = lost_transactions
        self.promoted = promoted
        self.drained_items = drained_items

    def __repr__(self) -> str:
        return (f"FailoverReport(failed={self.failed_replica!r}, "
                f"new_master={self.new_master!r}, "
                f"lost={self.lost_transactions})")


class FailoverManager:
    """Drives the middleware's reaction to replica failures."""

    def __init__(self, middleware: ReplicationMiddleware,
                 virtual_ip: Optional[VirtualIP] = None):
        self.middleware = middleware
        self.virtual_ip = virtual_ip
        self.reports: List[FailoverReport] = []
        self._callbacks: List[Callable[[FailoverReport], None]] = []

    def on_failover(self, callback: Callable[[FailoverReport], None]) -> None:
        self._callbacks.append(callback)

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------

    def handle_replica_failure(self, name: str,
                               discard_pending: bool = False) -> FailoverReport:
        """Declare ``name`` failed and reconfigure.

        If the failed replica was the master (master/slave or RSI-PC
        deployments), the most caught-up survivor is promoted; its pending
        apply queue is drained first so it starts from the freshest state
        it can reach.

        ``discard_pending`` models *master-driven log shipping* (MySQL
        replication, Slony): updates not yet applied at a survivor lived in
        the dead master's shipping pipeline and are gone — the 1-safe loss
        window.  Middleware-held queues (the default) survive the master.
        """
        middleware = self.middleware
        replica = middleware.replica_by_name(name)
        was_master = (middleware.master.name == name)
        master_seq = replica.applied_seq
        replica.mark_failed()
        if discard_pending:
            for survivor in middleware.replicas:
                if survivor.name != name:
                    survivor.apply_queue.clear()
        middleware.monitor.record("failover_started", name,
                                  was_master=was_master)

        report = FailoverReport(name)
        if was_master:
            survivor = self._most_caught_up()
            if survivor is None:
                middleware.monitor.record("failover_no_survivor", name)
                self.reports.append(report)
                return report
            report.drained_items = middleware.drain_replica(survivor.name)
            # 1-safe window: commits the master acknowledged that no
            # survivor ever received (section 2.2).
            report.lost_transactions = max(
                0, master_seq - survivor.applied_seq)
            if discard_pending and report.lost_transactions:
                # those updates lived only in the dead master's log
                middleware.recovery_log.truncate_after(survivor.applied_seq)
            middleware.set_master(survivor.name)
            report.new_master = survivor.name
            report.promoted = True
            if self.virtual_ip is not None:
                self.virtual_ip.switch(survivor.name)
        middleware.monitor.record(
            "failover_completed", name,
            new_master=report.new_master,
            lost_transactions=report.lost_transactions)
        self.reports.append(report)
        for callback in self._callbacks:
            callback(report)
        return report

    def _most_caught_up(self) -> Optional[Replica]:
        candidates = self.middleware.online_replicas()
        if not candidates:
            return None
        return max(candidates, key=lambda r: (r.applied_seq, r.name))

    # ------------------------------------------------------------------
    # failback
    # ------------------------------------------------------------------

    def failback(self, name: str) -> int:
        """Bring a recovered replica back: resynchronize it from the
        recovery log (everything after its applied watermark), then mark it
        ONLINE.  Returns the number of log entries replayed.

        The paper's caveat applies: the middleware does not know which
        transactions the failed replica committed right before dying
        (section 4.4.2) — we trust its ``applied_seq`` watermark, which our
        replicas persist; a real system without that watermark must do a
        full dump/restore instead (see ``core.management``).
        """
        middleware = self.middleware
        replica = middleware.replica_by_name(name)
        if replica.engine.crashed:
            replica.engine.recover()
        replica.set_state(ReplicaState.RECOVERING)
        middleware.monitor.record("failback_started", name,
                                  from_seq=replica.applied_seq)
        replayed = 0
        for entry in middleware.recovery_log.entries_since(replica.applied_seq):
            middleware.recovery_log.replay_entry(replica.engine, entry)
            replica.applied_seq = entry.seq
            replayed += 1
        # Global barrier: no in-flight update may be missed (section
        # 4.4.2); in synchronous mode the log head is authoritative.
        replica.apply_queue.clear()
        if not self._converged_with_cluster(replica):
            # The returning replica holds committed state the cluster never
            # saw (e.g. it was a 1-safe master whose tail was lost) or
            # drifted otherwise: incremental replay cannot fix it, and
            # "usually a full recovery has to be performed" (section
            # 4.4.2) — re-clone it from a live replica.
            self._full_reclone(replica)
            middleware.monitor.record("failback_full_resync", name)
        replica.set_state(ReplicaState.ONLINE)
        middleware.monitor.record("failback_completed", name,
                                  replayed=replayed)
        return replayed

    def _converged_with_cluster(self, replica: Replica) -> bool:
        others = [r for r in self.middleware.online_replicas()
                  if r.name != replica.name]
        if not others:
            return True
        reference = max(others, key=lambda r: r.applied_seq)
        self.middleware.drain_replica(reference.name)
        return (replica.engine.content_signature()
                == reference.engine.content_signature())

    def _full_reclone(self, replica: Replica) -> None:
        from ..sqlengine.backup import BackupOptions, dump_engine, restore_engine

        others = [r for r in self.middleware.online_replicas()
                  if r.name != replica.name]
        if not others:
            return
        source = max(others, key=lambda r: r.applied_seq)
        dump = dump_engine(source.engine, BackupOptions.full_clone())
        restore_engine(replica.engine, dump)
        replica.applied_seq = source.applied_seq


def promote_and_switch(middleware: ReplicationMiddleware,
                       virtual_ip: VirtualIP,
                       manager: Optional[FailoverManager] = None
                       ) -> FailoverReport:
    """Convenience: fail the current master over to the best survivor and
    re-point the virtual IP (the Figure 3 hot-standby reaction).

    Pass an existing ``manager`` to keep one continuous failover history
    (reports, callbacks) across repeated incidents; a throwaway manager
    would silently discard the report log and never fire registered
    ``on_failover`` callbacks."""
    if manager is None:
        manager = FailoverManager(middleware, virtual_ip)
    elif manager.virtual_ip is None:
        manager.virtual_ip = virtual_ip
    return manager.handle_replica_failure(middleware.master.name)
