"""Micro-benchmark workloads (paper section 3.4: "Micro-benchmarks are
also widely used to measure replicated system performance").

* :class:`MicroWorkload` — single-table CRUD with a configurable
  read/write mix and key skew.
* :class:`SequentialBatchWorkload` — the section 4.4.5 pathology: a
  single-client sequential batch update script, the workload replicated
  databases serve *worst* because per-statement latency dominates.
"""

from __future__ import annotations

import random
from typing import List

from .generator import TxnSpec, Workload, zipf_choice


class MicroWorkload(Workload):
    name = "micro"

    def __init__(self, rows: int = 1000, read_fraction: float = 0.5,
                 skew: float = 1.05, table: str = "kv",
                 write_statements: int = 1):
        self.rows = rows
        self.read_fraction = read_fraction
        self.skew = skew
        self.table = table
        # >1 makes write transactions span multiple statements, opening a
        # real conflict window between concurrent transactions
        self.write_statements = max(1, write_statements)

    def setup_sql(self) -> List[str]:
        statements = [
            f"""CREATE TABLE {self.table} (
                k INT PRIMARY KEY, v INT, pad VARCHAR(40))"""
        ]
        for key in range(self.rows):
            statements.append(
                f"INSERT INTO {self.table} (k, v, pad) "
                f"VALUES ({key}, 0, 'pad{key}')")
        return statements

    def read_fraction_estimate(self) -> float:
        return self.read_fraction

    def next_transaction(self, rng: random.Random) -> TxnSpec:
        key = zipf_choice(rng, self.rows, self.skew)
        if rng.random() < self.read_fraction:
            sql = f"SELECT v FROM {self.table} WHERE k = {key}"
            return TxnSpec([(sql, [])], True, [self.table], kind="point_read")
        if self.write_statements == 1:
            sql = f"UPDATE {self.table} SET v = v + 1 WHERE k = {key}"
            return TxnSpec([(sql, [])], False, [self.table],
                           kind="point_write")
        keys = {key}
        while len(keys) < self.write_statements:
            keys.add(zipf_choice(rng, self.rows, self.skew))
        statements = [
            (f"UPDATE {self.table} SET v = v + 1 WHERE k = {k}", [])
            for k in sorted(keys)
        ]
        return TxnSpec(statements, False, [self.table], kind="multi_write")


class SequentialBatchWorkload(Workload):
    """One client, back-to-back single-row updates — no parallelism at all.
    'A sequential batch update script will usually run much slower on a
    replicated database than on a single-instance database' (4.4.5)."""

    name = "sequential_batch"

    def __init__(self, rows: int = 500, table: str = "batch"):
        self.rows = rows
        self.table = table
        self._cursor = 0

    def setup_sql(self) -> List[str]:
        statements = [
            f"CREATE TABLE {self.table} (k INT PRIMARY KEY, v INT)"
        ]
        for key in range(self.rows):
            statements.append(
                f"INSERT INTO {self.table} (k, v) VALUES ({key}, 0)")
        return statements

    def read_fraction_estimate(self) -> float:
        return 0.0

    def next_transaction(self, rng: random.Random) -> TxnSpec:
        key = self._cursor % self.rows
        self._cursor += 1
        sql = f"UPDATE {self.table} SET v = v + 1 WHERE k = {key}"
        return TxnSpec([(sql, [])], False, [self.table], kind="batch_update")


class MultiTableWorkload(Workload):
    """Transactions with disjoint table working sets — the workload where
    memory-aware (Tashkent+) balancing shines (E08): each 'tenant' touches
    its own table, so steering a tenant to a consistent replica keeps that
    replica's working set hot."""

    name = "multi_table"

    def __init__(self, tables: int = 8, rows_per_table: int = 200,
                 read_fraction: float = 0.8):
        self.tables = tables
        self.rows_per_table = rows_per_table
        self.read_fraction = read_fraction

    def table_name(self, index: int) -> str:
        return f"tenant_{index}"

    def setup_sql(self) -> List[str]:
        statements = []
        for index in range(self.tables):
            name = self.table_name(index)
            statements.append(
                f"CREATE TABLE {name} (k INT PRIMARY KEY, v INT)")
            for key in range(self.rows_per_table):
                statements.append(
                    f"INSERT INTO {name} (k, v) VALUES ({key}, 0)")
        return statements

    def read_fraction_estimate(self) -> float:
        return self.read_fraction

    def next_transaction(self, rng: random.Random) -> TxnSpec:
        tenant = rng.randrange(self.tables)
        name = self.table_name(tenant)
        key = rng.randrange(self.rows_per_table)
        if rng.random() < self.read_fraction:
            sql = (f"SELECT COUNT(*), SUM(v) FROM {name} "
                   f"WHERE k BETWEEN {key} AND {key + 50}")
            return TxnSpec([(sql, [])], True, [f"shop.{name}"],
                           kind=f"scan_{tenant}")
        sql = f"UPDATE {name} SET v = v + 1 WHERE k = {key}"
        return TxnSpec([(sql, [])], False, [f"shop.{name}"],
                       kind=f"write_{tenant}")
