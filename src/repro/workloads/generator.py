"""Workload generation: transaction templates, closed- and open-loop load.

The paper's evaluation critique (sections 3.4 / 5.1): academic prototypes
use closed-loop load generators at scaled load, which "hides the system
overhead at low or constant load"; researchers "need new benchmarks that
are not necessarily closed-loop systems".  This module provides both
shapes so benchmark E16 can show the difference, and every workload is a
stream of :class:`TxnSpec` objects a driver can execute synchronously or
inside the discrete-event simulation.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator, List, Sequence, Tuple


class TxnSpec:
    """One transaction: ordered SQL statements plus routing metadata."""

    __slots__ = ("statements", "is_read_only", "tables", "kind")

    def __init__(self, statements: Sequence[Tuple[str, list]],
                 is_read_only: bool, tables: Sequence[str] = (),
                 kind: str = "txn"):
        self.statements = list(statements)
        self.is_read_only = is_read_only
        self.tables = list(tables)
        self.kind = kind

    def __repr__(self) -> str:
        mode = "RO" if self.is_read_only else "RW"
        return f"TxnSpec({self.kind}, {mode}, {len(self.statements)} stmts)"


class Workload:
    """Base workload: subclasses implement setup + transaction sampling."""

    name = "base"

    def setup_sql(self) -> List[str]:
        """DDL + initial data, executed once through the middleware."""
        return []

    def next_transaction(self, rng: random.Random) -> TxnSpec:
        raise NotImplementedError

    def transactions(self, count: int,
                     seed: int = 42) -> Iterator[TxnSpec]:
        rng = random.Random(seed)
        for _ in range(count):
            yield self.next_transaction(rng)

    def read_fraction_estimate(self) -> float:
        return 0.5


def zipf_choice(rng: random.Random, population: int, skew: float = 1.1) -> int:
    """A cheap Zipf-ish sampler in [0, population): rank r with weight
    1/(r+1)^skew.  Hot rows are what make conflicts (Gray [18])."""
    # inverse-CDF on a truncated harmonic series would be exact; rejection
    # sampling is simpler and fast enough for our sizes
    while True:
        rank = int(rng.paretovariate(skew)) - 1
        if 0 <= rank < population:
            return rank
        if rank >= population:
            rank = rng.randrange(population)
            return rank


class ClosedLoopRun:
    """Synchronous closed-loop driver: N logical clients take turns, each
    running transactions back to back (think time is only meaningful in
    the simulated driver; see ``repro.bench.simdriver``)."""

    def __init__(self, workload: Workload, clients: int = 4, seed: int = 7):
        self.workload = workload
        self.clients = clients
        self.seed = seed

    def run(self, session_factory: Callable[[], object],
            transactions_per_client: int = 50) -> dict:
        """Run the workload; returns counters.  ``session_factory`` yields
        an object with ``execute(sql, params)``."""
        completed = 0
        aborted = 0
        rng = random.Random(self.seed)
        sessions = [session_factory() for _ in range(self.clients)]
        try:
            for _round in range(transactions_per_client):
                for session in sessions:
                    spec = self.workload.next_transaction(rng)
                    try:
                        _run_spec(session, spec)
                        completed += 1
                    except Exception:  # noqa: BLE001 — abort accounting
                        aborted += 1
                        _safe_rollback(session)
        finally:
            for session in sessions:
                close = getattr(session, "close", None)
                if close:
                    close()
        return {"completed": completed, "aborted": aborted}


def _run_spec(session, spec: TxnSpec) -> None:
    if len(spec.statements) == 1:
        sql, params = spec.statements[0]
        session.execute(sql, params)
        return
    session.execute("BEGIN")
    for sql, params in spec.statements:
        session.execute(sql, params)
    session.execute("COMMIT")


def _safe_rollback(session) -> None:
    try:
        session.execute("ROLLBACK")
    except Exception:  # noqa: BLE001
        pass


def scaled_load_plan(base_clients: int, replicas: int) -> int:
    """The section 3.4 'scaled load' convention: 5x the clients for a
    5-replica system — used by E16 to show what it hides."""
    return base_clients * replicas
