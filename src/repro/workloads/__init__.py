"""``repro.workloads`` — OLTP workload generators and trace tooling."""

from .generator import (
    ClosedLoopRun, TxnSpec, Workload, scaled_load_plan, zipf_choice,
)
from .microbench import MicroWorkload, MultiTableWorkload, SequentialBatchWorkload
from .openloop import (
    ConstantRate, DiurnalRate, FlashCrowd, OpenLoopWorkload, RateCurve,
    ZipfSampler, arrival_times,
)
from .rubis import RubisWorkload
from .ticketbroker import TicketBrokerWorkload
from .tpcw import MIXES, TpcWWorkload
from .trace import (
    StatisticalReplayer, TraceEntry, TraceRecorder, equivalent,
    exact_replay_is_possible,
)

__all__ = [
    "ClosedLoopRun", "ConstantRate", "DiurnalRate", "FlashCrowd", "MIXES",
    "MicroWorkload", "MultiTableWorkload", "OpenLoopWorkload",
    "RateCurve", "RubisWorkload", "SequentialBatchWorkload",
    "StatisticalReplayer", "TicketBrokerWorkload", "TpcWWorkload",
    "TraceEntry", "TraceRecorder", "TxnSpec", "Workload", "ZipfSampler",
    "arrival_times", "equivalent", "exact_replay_is_possible",
    "scaled_load_plan", "zipf_choice",
]
