"""``repro.workloads`` — OLTP workload generators and trace tooling."""

from .generator import (
    ClosedLoopRun, TxnSpec, Workload, scaled_load_plan, zipf_choice,
)
from .microbench import MicroWorkload, MultiTableWorkload, SequentialBatchWorkload
from .rubis import RubisWorkload
from .ticketbroker import TicketBrokerWorkload
from .tpcw import MIXES, TpcWWorkload
from .trace import (
    StatisticalReplayer, TraceEntry, TraceRecorder, equivalent,
    exact_replay_is_possible,
)

__all__ = [
    "ClosedLoopRun", "MIXES", "MicroWorkload", "MultiTableWorkload",
    "RubisWorkload", "SequentialBatchWorkload", "StatisticalReplayer",
    "TicketBrokerWorkload", "TpcWWorkload", "TraceEntry", "TraceRecorder",
    "TxnSpec", "Workload", "equivalent", "exact_replay_is_possible",
    "scaled_load_plan", "zipf_choice",
]
