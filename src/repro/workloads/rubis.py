"""A RUBiS-shaped auction workload [2] (paper section 3.4).

Shape-level: users, auction items and bids; the *browsing mix* is pure
reads, the *bidding mix* is ~85% reads with bid/comment writes on hot
items — contention concentrates on popular auctions, which is what makes
multi-master certification abort rates interesting (E06).
"""

from __future__ import annotations

import random
from typing import List

from .generator import TxnSpec, Workload, zipf_choice


class RubisWorkload(Workload):
    name = "rubis"

    def __init__(self, items: int = 300, users: int = 150,
                 mix: str = "bidding"):
        if mix not in ("browsing", "bidding"):
            raise ValueError(f"unknown RUBiS mix {mix!r}")
        self.items = items
        self.users = users
        self.mix = mix
        self.read_fraction = 1.0 if mix == "browsing" else 0.85
        self._bid_id = 0

    def setup_sql(self) -> List[str]:
        statements = [
            """CREATE TABLE users (
                u_id INT PRIMARY KEY, u_nickname VARCHAR(20),
                u_rating INT)""",
            """CREATE TABLE auction_items (
                ai_id INT PRIMARY KEY, ai_name VARCHAR(40),
                ai_seller INT, ai_max_bid FLOAT, ai_nb_bids INT,
                ai_category VARCHAR(16))""",
            """CREATE TABLE bids (
                b_id INT PRIMARY KEY, b_item INT, b_user INT,
                b_amount FLOAT)""",
        ]
        rng = random.Random(23)
        categories = ("ART", "BOOKS", "CARS", "MUSIC", "TOYS")
        for user in range(self.users):
            statements.append(
                f"INSERT INTO users (u_id, u_nickname, u_rating) "
                f"VALUES ({user}, 'nick{user}', {rng.randrange(0, 100)})")
        for item in range(self.items):
            category = categories[item % len(categories)]
            seller = rng.randrange(self.users)
            start = round(rng.uniform(1, 50), 2)
            statements.append(
                f"INSERT INTO auction_items "
                f"(ai_id, ai_name, ai_seller, ai_max_bid, ai_nb_bids, ai_category) "
                f"VALUES ({item}, 'item{item}', {seller}, {start}, 0, '{category}')")
        return statements

    def read_fraction_estimate(self) -> float:
        return self.read_fraction

    def next_transaction(self, rng: random.Random) -> TxnSpec:
        if rng.random() < self.read_fraction:
            return self._browse(rng)
        return self._place_bid(rng)

    def _browse(self, rng: random.Random) -> TxnSpec:
        roll = rng.random()
        if roll < 0.4:
            item = zipf_choice(rng, self.items, 1.3)
            sql = (f"SELECT ai_name, ai_max_bid, ai_nb_bids "
                   f"FROM auction_items WHERE ai_id = {item}")
            return TxnSpec([(sql, [])], True, ["auction_items"],
                           kind="view_item")
        if roll < 0.7:
            category = ("ART", "BOOKS", "CARS")[rng.randrange(3)]
            sql = (f"SELECT ai_id, ai_name, ai_max_bid FROM auction_items "
                   f"WHERE ai_category = '{category}' "
                   f"ORDER BY ai_max_bid DESC LIMIT 15")
            return TxnSpec([(sql, [])], True, ["auction_items"],
                           kind="browse_category")
        item = zipf_choice(rng, self.items, 1.3)
        sql = (f"SELECT b_user, b_amount FROM bids WHERE b_item = {item} "
               f"ORDER BY b_amount DESC LIMIT 10")
        return TxnSpec([(sql, [])], True, ["bids"], kind="bid_history")

    def _place_bid(self, rng: random.Random) -> TxnSpec:
        # bids concentrate on hot auctions -> write-write conflicts
        item = zipf_choice(rng, self.items, 1.5)
        user = rng.randrange(self.users)
        amount = round(rng.uniform(10, 500), 2)
        self._bid_id += 1
        bid_id = self._bid_id * 1000 + rng.randrange(1000)
        statements = [
            (f"INSERT INTO bids (b_id, b_item, b_user, b_amount) "
             f"VALUES ({bid_id}, {item}, {user}, {amount})", []),
            (f"UPDATE auction_items SET ai_nb_bids = ai_nb_bids + 1, "
             f"ai_max_bid = GREATEST(ai_max_bid, {amount}) "
             f"WHERE ai_id = {item}", []),
        ]
        return TxnSpec(statements, False, ["bids", "auction_items"],
                       kind="place_bid")
