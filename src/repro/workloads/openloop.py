"""Open-loop session-arrival workload tier (paper sections 3.4 / 5.1).

The paper's evaluation critique is that closed-loop client pools at
"scaled load" hide overload behaviour: a closed loop slows down with the
system, an open loop does not.  This module provides the real thing at
the scale the critique implies — a *session arrival process* (not a
fixed client pool) with:

* heavy-tailed Zipf key popularity via an exact inverse-CDF sampler
  (:class:`ZipfSampler` — the rejection sampler in
  :func:`repro.workloads.generator.zipf_choice` is fine for thousands
  of draws, not millions);
* time-varying arrival rates (:class:`DiurnalRate`) with flash-crowd
  bursts layered on top (:class:`FlashCrowd`);
* 10^5–10^6 simulated sessions, each a short transaction sequence with
  think gaps, generated lazily so memory stays flat.

Arrivals are drawn from a non-homogeneous Poisson process by thinning
(:func:`arrival_times`), so any :class:`RateCurve` shape is exact.  The
driver side lives in :class:`repro.bench.simdriver.SessionArrivalDriver`.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_left
from itertools import accumulate
from typing import Iterator, List

from .generator import TxnSpec, Workload


# ---------------------------------------------------------------------------
# key popularity
# ---------------------------------------------------------------------------

class ZipfSampler:
    """Exact Zipf(skew) sampler over ``[0, population)`` by inverse CDF.

    The cumulative weights are precomputed once (O(n) floats); each draw
    is one uniform variate plus a binary search, so a million-session
    run costs microseconds per key instead of the rejection loop's
    unbounded retries at high skew.
    """

    __slots__ = ("population", "skew", "_cdf", "_total")

    def __init__(self, population: int, skew: float = 1.1):
        if population <= 0:
            raise ValueError("population must be positive")
        self.population = population
        self.skew = skew
        weights = (1.0 / (rank + 1) ** skew for rank in range(population))
        self._cdf = list(accumulate(weights))
        self._total = self._cdf[-1]

    def sample(self, rng: random.Random) -> int:
        return bisect_left(self._cdf, rng.random() * self._total)

    def hot_fraction(self, top: int) -> float:
        """Share of draws landing in the ``top`` most popular keys."""
        top = min(top, self.population)
        return self._cdf[top - 1] / self._total


# ---------------------------------------------------------------------------
# arrival-rate curves
# ---------------------------------------------------------------------------

class RateCurve:
    """Arrival rate (sessions/second) as a function of time."""

    def rate(self, t: float) -> float:
        raise NotImplementedError

    def max_rate(self, horizon: float) -> float:
        """An upper bound on ``rate`` over ``[0, horizon]`` — the
        thinning envelope.  Subclasses return a tight bound."""
        raise NotImplementedError


class ConstantRate(RateCurve):
    __slots__ = ("base",)

    def __init__(self, base: float):
        self.base = float(base)

    def rate(self, t: float) -> float:
        return self.base

    def max_rate(self, horizon: float) -> float:
        return self.base


class DiurnalRate(RateCurve):
    """A day/night sinusoid: ``base * (1 + amplitude*sin(...))``, peak at
    ``period * 0.25`` past ``phase``.  With amplitude 1 the trough is
    zero traffic and the peak is double the base — the daily swing real
    session traffic shows."""

    __slots__ = ("base", "amplitude", "period", "phase")

    def __init__(self, base: float, amplitude: float = 0.5,
                 period: float = 86400.0, phase: float = 0.0):
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError("amplitude must be in [0, 1]")
        self.base = float(base)
        self.amplitude = amplitude
        self.period = period
        self.phase = phase

    def rate(self, t: float) -> float:
        cycle = math.sin(2.0 * math.pi * (t - self.phase) / self.period)
        return self.base * (1.0 + self.amplitude * cycle)

    def max_rate(self, horizon: float) -> float:
        return self.base * (1.0 + self.amplitude)


class FlashCrowd(RateCurve):
    """A multiplicative burst over an underlying curve: rate is scaled by
    ``multiplier`` during ``[start, start + duration)``, with linear ramp
    up/down over ``ramp`` seconds so the crowd arrives like a crowd, not
    a step function."""

    __slots__ = ("underlying", "start", "duration", "multiplier", "ramp")

    def __init__(self, underlying: RateCurve, start: float, duration: float,
                 multiplier: float = 2.0, ramp: float = 0.0):
        if multiplier < 1.0:
            raise ValueError("flash-crowd multiplier must be >= 1")
        self.underlying = underlying
        self.start = start
        self.duration = duration
        self.multiplier = multiplier
        self.ramp = max(0.0, ramp)

    def _boost(self, t: float) -> float:
        end = self.start + self.duration
        if t < self.start or t >= end:
            return 1.0
        if self.ramp > 0.0:
            into = t - self.start
            left = end - t
            edge = min(into, left)
            if edge < self.ramp:
                frac = edge / self.ramp
                return 1.0 + (self.multiplier - 1.0) * frac
        return self.multiplier

    def rate(self, t: float) -> float:
        return self.underlying.rate(t) * self._boost(t)

    def max_rate(self, horizon: float) -> float:
        return self.underlying.max_rate(horizon) * self.multiplier


def arrival_times(curve: RateCurve, horizon: float, rng: random.Random,
                  limit: int = 0) -> Iterator[float]:
    """Arrival instants of a non-homogeneous Poisson process with
    intensity ``curve.rate`` over ``[0, horizon)``, by thinning: draw
    candidates at the envelope rate, keep each with probability
    ``rate(t)/envelope``.  Lazy, O(1) memory, exact for any curve.

    ``limit`` > 0 caps the number of arrivals (a hard session budget).
    """
    envelope = curve.max_rate(horizon)
    if envelope <= 0:
        return
    t = 0.0
    emitted = 0
    while True:
        t += rng.expovariate(envelope)
        if t >= horizon:
            return
        if rng.random() * envelope <= curve.rate(t):
            yield t
            emitted += 1
            if limit and emitted >= limit:
                return


# ---------------------------------------------------------------------------
# the workload
# ---------------------------------------------------------------------------

class OpenLoopWorkload(Workload):
    """Single-table CRUD with exact-Zipf key popularity, shaped for the
    session-arrival driver: each *session* runs ``session_length`` short
    transactions separated by ``think_time`` gaps.

    ``rows`` is the keyspace; setup inserts ``seed_rows`` of them (the
    working set the benchmark actually touches, since Zipf mass
    concentrates at low ranks) so loading stays cheap at million-key
    scale.  Reads and writes against unseeded keys are still valid SQL —
    reads return empty, updates match zero rows.
    """

    name = "openloop"

    def __init__(self, rows: int = 100_000, seed_rows: int = 2000,
                 read_fraction: float = 0.9, skew: float = 1.1,
                 table: str = "sessions_kv",
                 mean_session_length: float = 2.0,
                 max_session_length: int = 8,
                 mean_think_time: float = 0.05):
        self.rows = rows
        self.seed_rows = min(seed_rows, rows)
        self.read_fraction = read_fraction
        self.table = table
        self.mean_session_length = mean_session_length
        self.max_session_length = max_session_length
        self.mean_think_time = mean_think_time
        self.sampler = ZipfSampler(rows, skew)

    def setup_sql(self) -> List[str]:
        statements = [
            f"""CREATE TABLE {self.table} (
                k INT PRIMARY KEY, v INT, pad VARCHAR(40))"""
        ]
        for key in range(self.seed_rows):
            statements.append(
                f"INSERT INTO {self.table} (k, v, pad) "
                f"VALUES ({key}, 0, 'pad{key}')")
        return statements

    def read_fraction_estimate(self) -> float:
        return self.read_fraction

    # -- per-session shape ---------------------------------------------

    def session_length(self, rng: random.Random) -> int:
        """Transactions per session: geometric with the configured mean,
        capped so no session outlives the run."""
        p = 1.0 / max(1.0, self.mean_session_length)
        length = 1
        while (length < self.max_session_length
               and rng.random() > p):
            length += 1
        return length

    def think_time(self, rng: random.Random) -> float:
        if self.mean_think_time <= 0:
            return 0.0
        return rng.expovariate(1.0 / self.mean_think_time)

    # -- per-transaction SQL -------------------------------------------

    def next_transaction(self, rng: random.Random) -> TxnSpec:
        key = self.sampler.sample(rng)
        if rng.random() < self.read_fraction:
            sql = f"SELECT v FROM {self.table} WHERE k = {key}"
            return TxnSpec([(sql, [])], True, [self.table],
                           kind="point_read")
        sql = f"UPDATE {self.table} SET v = v + 1 WHERE k = {key}"
        return TxnSpec([(sql, [])], False, [self.table], kind="point_write")
