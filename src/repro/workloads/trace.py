"""Workload capture and statistically-equivalent replay.

Paper section 5.1: "Even though it is possible to capture in various logs
the execution of a workload, we know of no way yet to replay that exact
same workload: the inherent parallelism ... implies non-determinism in
the execution order ... Replaying a statistically equivalent workload is
possible".

:class:`TraceRecorder` wraps a session and logs (time, kind, sql, params);
:class:`StatisticalReplayer` re-issues a workload with the same per-kind
statement counts and the same read/write interleaving *distribution*, but
makes no attempt at exact ordering — and exposes exactly why exact replay
is impossible (:func:`exact_replay_is_possible` returns the paper's
answer).
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional



class TraceEntry:
    __slots__ = ("time", "kind", "sql", "params", "session_id")

    def __init__(self, time: float, kind: str, sql: str, params: list,
                 session_id: int = 0):
        self.time = time
        self.kind = kind
        self.sql = sql
        self.params = params
        self.session_id = session_id


class TraceRecorder:
    """Wraps any object with ``execute(sql, params)`` and records calls."""

    def __init__(self, session, time_source: Optional[Callable[[], float]] = None,
                 session_id: int = 0):
        self._session = session
        self._time_source = time_source or (lambda: float(len(self.entries)))
        self.session_id = session_id
        self.entries: List[TraceEntry] = []

    def execute(self, sql: str, params: Optional[list] = None):
        params = list(params or [])
        kind = _classify(sql)
        self.entries.append(TraceEntry(
            self._time_source(), kind, sql, params, self.session_id))
        return self._session.execute(sql, params)

    def close(self) -> None:
        close = getattr(self._session, "close", None)
        if close:
            close()

    def kind_histogram(self) -> dict:
        histogram: dict = {}
        for entry in self.entries:
            histogram[entry.kind] = histogram.get(entry.kind, 0) + 1
        return histogram


def _classify(sql: str) -> str:
    head = sql.lstrip().split(None, 1)
    if not head:
        return "other"
    word = head[0].upper()
    if word in ("SELECT",):
        return "read"
    if word in ("INSERT", "UPDATE", "DELETE"):
        return "write"
    if word in ("BEGIN", "COMMIT", "ROLLBACK", "START"):
        return "txn"
    return "other"


class StatisticalReplayer:
    """Replays a trace preserving per-kind counts and mix, not order."""

    def __init__(self, entries: List[TraceEntry], seed: int = 5):
        self.entries = list(entries)
        self.rng = random.Random(seed)

    def replay(self, session, shuffle_window: int = 16) -> dict:
        """Re-issue all statements.  Statements are shuffled within sliding
        windows: local order varies (as real re-execution would), global
        mix and counts are preserved."""
        replayed = 0
        errors = 0
        entries = [e for e in self.entries if e.kind != "txn"]
        index = 0
        while index < len(entries):
            window = entries[index:index + shuffle_window]
            self.rng.shuffle(window)
            for entry in window:
                try:
                    session.execute(entry.sql, entry.params)
                    replayed += 1
                except Exception:  # noqa: BLE001 — replay divergence is data
                    errors += 1
            index += shuffle_window
        return {"replayed": replayed, "errors": errors}


def exact_replay_is_possible() -> bool:
    """The paper's verdict (section 5.1): reproducing the exact original
    parallel execution order would need instruction-level simulation."""
    return False


def equivalent(histogram_a: dict, histogram_b: dict) -> bool:
    """Two traces are statistically equivalent here when their per-kind
    statement counts match."""
    return histogram_a == histogram_b
