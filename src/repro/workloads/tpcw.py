"""A TPC-W-shaped web commerce workload (paper section 3.4).

Shape-level reproduction of the browsing/shopping mixes used to evaluate
Tashkent, Ganymed and C-JDBC: a product catalog, customers, carts and
orders; the *browsing mix* is ~95% reads, the *shopping mix* ~80%, the
*ordering mix* ~50% — the three standard TPC-W mixes.
"""

from __future__ import annotations

import random
from typing import List

from .generator import TxnSpec, Workload, zipf_choice

MIXES = {
    "browsing": 0.95,
    "shopping": 0.80,
    "ordering": 0.50,
}


class TpcWWorkload(Workload):
    name = "tpcw"

    def __init__(self, items: int = 500, customers: int = 200,
                 mix: str = "shopping"):
        if mix not in MIXES:
            raise ValueError(f"unknown TPC-W mix {mix!r}")
        self.items = items
        self.customers = customers
        self.mix = mix
        self.read_fraction = MIXES[mix]
        self._order_id = 0

    def setup_sql(self) -> List[str]:
        statements = [
            """CREATE TABLE item (
                i_id INT PRIMARY KEY, i_title VARCHAR(60),
                i_stock INT, i_cost FLOAT, i_subject VARCHAR(16))""",
            """CREATE TABLE customer (
                c_id INT PRIMARY KEY, c_uname VARCHAR(20),
                c_discount FLOAT)""",
            """CREATE TABLE orders (
                o_id INT PRIMARY KEY, o_c_id INT, o_total FLOAT,
                o_status VARCHAR(12))""",
            """CREATE TABLE order_line (
                ol_id INT PRIMARY KEY, ol_o_id INT, ol_i_id INT,
                ol_qty INT)""",
        ]
        rng = random.Random(17)
        subjects = ("ARTS", "BIOGRAPHIES", "COMPUTERS", "COOKING",
                    "HISTORY", "TRAVEL")
        for item in range(self.items):
            subject = subjects[item % len(subjects)]
            stock = rng.randrange(10, 100)
            cost = round(rng.uniform(5, 120), 2)
            statements.append(
                f"INSERT INTO item (i_id, i_title, i_stock, i_cost, i_subject) "
                f"VALUES ({item}, 'title{item}', {stock}, {cost}, '{subject}')")
        for customer in range(self.customers):
            discount = round(rng.uniform(0, 0.3), 2)
            statements.append(
                f"INSERT INTO customer (c_id, c_uname, c_discount) "
                f"VALUES ({customer}, 'user{customer}', {discount})")
        return statements

    def read_fraction_estimate(self) -> float:
        return self.read_fraction

    def next_transaction(self, rng: random.Random) -> TxnSpec:
        if rng.random() < self.read_fraction:
            return self._web_interaction(rng)
        return self._buy_request(rng)

    def _web_interaction(self, rng: random.Random) -> TxnSpec:
        roll = rng.random()
        if roll < 0.4:
            item = zipf_choice(rng, self.items, 1.1)
            sql = f"SELECT i_title, i_cost, i_stock FROM item WHERE i_id = {item}"
            return TxnSpec([(sql, [])], True, ["item"], kind="product_detail")
        if roll < 0.7:
            subject = ("ARTS", "COMPUTERS", "TRAVEL")[rng.randrange(3)]
            sql = (f"SELECT i_id, i_title, i_cost FROM item "
                   f"WHERE i_subject = '{subject}' ORDER BY i_cost LIMIT 20")
            return TxnSpec([(sql, [])], True, ["item"], kind="search")
        if roll < 0.9:
            sql = ("SELECT i_id, i_title FROM item "
                   "ORDER BY i_stock DESC LIMIT 10")
            return TxnSpec([(sql, [])], True, ["item"], kind="best_sellers")
        customer = rng.randrange(self.customers)
        sql = (f"SELECT o_id, o_total, o_status FROM orders "
               f"WHERE o_c_id = {customer} ORDER BY o_id DESC LIMIT 5")
        return TxnSpec([(sql, [])], True, ["orders"], kind="order_display")

    def _buy_request(self, rng: random.Random) -> TxnSpec:
        customer = rng.randrange(self.customers)
        self._order_id += 1
        order_id = self._order_id * 1000 + rng.randrange(1000)
        lines = rng.randrange(1, 4)
        statements = [(
            f"INSERT INTO orders (o_id, o_c_id, o_total, o_status) "
            f"VALUES ({order_id}, {customer}, 0.0, 'pending')", [])]
        total = 0.0
        for line in range(lines):
            item = zipf_choice(rng, self.items, 1.1)
            qty = rng.randrange(1, 3)
            statements.append((
                f"INSERT INTO order_line (ol_id, ol_o_id, ol_i_id, ol_qty) "
                f"VALUES ({order_id * 10 + line}, {order_id}, {item}, {qty})",
                []))
            statements.append((
                f"UPDATE item SET i_stock = i_stock - {qty} "
                f"WHERE i_id = {item} AND i_stock >= {qty}", []))
            total += qty * 20.0
        statements.append((
            f"UPDATE orders SET o_total = {total}, o_status = 'committed' "
            f"WHERE o_id = {order_id}", []))
        return TxnSpec(statements, False,
                       ["orders", "order_line", "item"], kind="buy")
