"""The Fortune-500 travel ticket broker workload (paper section 1).

"a workload where 95% of transactions were read-only.  Still, the 5%
write workload resulted in thousands of update requests per second" —
synchronous replication could not keep up, and sub-minute failover was a
business requirement ("the competition is one click away").

Schema: travel inventory (flights/hotels/cars as ``offers``), bookings,
and agencies.  Reads are availability searches and booking lookups;
writes are new bookings and inventory adjustments.
"""

from __future__ import annotations

import random
from typing import List

from .generator import TxnSpec, Workload, zipf_choice


class TicketBrokerWorkload(Workload):
    name = "ticket_broker"

    def __init__(self, offers: int = 200, agencies: int = 50,
                 read_fraction: float = 0.95, hot_skew: float = 1.2):
        self.offers = offers
        self.agencies = agencies
        self.read_fraction = read_fraction
        self.hot_skew = hot_skew
        self._booking_id = 0

    def setup_sql(self) -> List[str]:
        statements = [
            """CREATE TABLE offers (
                id INT PRIMARY KEY, kind VARCHAR(10), destination VARCHAR(20),
                seats INT, price FLOAT)""",
            """CREATE TABLE bookings (
                id INT PRIMARY KEY, offer_id INT, agency_id INT,
                seats INT, status VARCHAR(12))""",
            """CREATE TABLE agencies (
                id INT PRIMARY KEY, name VARCHAR(40), country VARCHAR(8))""",
        ]
        rng = random.Random(99)
        kinds = ("flight", "hotel", "car")
        destinations = ("PAR", "NYC", "TYO", "SFO", "LON", "SIN", "BER", "ROM")
        for offer in range(self.offers):
            kind = kinds[offer % len(kinds)]
            destination = destinations[offer % len(destinations)]
            seats = rng.randrange(50, 300)
            price = round(rng.uniform(40, 900), 2)
            statements.append(
                f"INSERT INTO offers (id, kind, destination, seats, price) "
                f"VALUES ({offer}, '{kind}', '{destination}', {seats}, {price})")
        for agency in range(self.agencies):
            country = destinations[agency % len(destinations)][:2]
            statements.append(
                f"INSERT INTO agencies (id, name, country) "
                f"VALUES ({agency}, 'agency{agency}', '{country}')")
        return statements

    def read_fraction_estimate(self) -> float:
        return self.read_fraction

    def next_transaction(self, rng: random.Random) -> TxnSpec:
        if rng.random() < self.read_fraction:
            return self._read_transaction(rng)
        return self._write_transaction(rng)

    def _read_transaction(self, rng: random.Random) -> TxnSpec:
        roll = rng.random()
        if roll < 0.5:
            # availability search on a (skewed) popular offer
            offer = zipf_choice(rng, self.offers, self.hot_skew)
            sql = (f"SELECT id, seats, price FROM offers "
                   f"WHERE id = {offer} AND seats > 0")
            return TxnSpec([(sql, [])], True, ["offers"], kind="search")
        if roll < 0.8:
            destination = ("PAR", "NYC", "TYO", "SFO")[rng.randrange(4)]
            sql = (f"SELECT id, kind, price FROM offers "
                   f"WHERE destination = '{destination}' "
                   f"ORDER BY price LIMIT 10")
            return TxnSpec([(sql, [])], True, ["offers"], kind="browse")
        agency = rng.randrange(self.agencies)
        sql = (f"SELECT COUNT(*), SUM(seats) FROM bookings "
               f"WHERE agency_id = {agency}")
        return TxnSpec([(sql, [])], True, ["bookings"], kind="report")

    def _write_transaction(self, rng: random.Random) -> TxnSpec:
        offer = zipf_choice(rng, self.offers, self.hot_skew)
        agency = rng.randrange(self.agencies)
        seats = rng.randrange(1, 4)
        self._booking_id += 1
        booking_id = self._booking_id * 1000 + rng.randrange(1000)
        statements = [
            (f"UPDATE offers SET seats = seats - {seats} "
             f"WHERE id = {offer} AND seats >= {seats}", []),
            (f"INSERT INTO bookings (id, offer_id, agency_id, seats, status) "
             f"VALUES ({booking_id}, {offer}, {agency}, {seats}, 'confirmed')",
             []),
        ]
        return TxnSpec(statements, False, ["offers", "bookings"],
                       kind="booking")
