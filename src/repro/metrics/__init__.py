"""``repro.metrics`` — performance and availability metrics (section 5.1)."""

from .availability import (
    FIVE_NINES_BUDGET_SECONDS, SECONDS_PER_YEAR, AvailabilityTracker,
    availability_from_mtbf, downtime_budget, nines,
)
from .breakdown import (BreakdownAggregator, explain_trace,
                        trace_breakdown, trace_root)
from .cache import hit_rate, stale_fraction, summarize
from .perf import LatencyRecorder, ThroughputMeter, TimeSeries

__all__ = [
    "AvailabilityTracker", "BreakdownAggregator",
    "FIVE_NINES_BUDGET_SECONDS", "LatencyRecorder", "SECONDS_PER_YEAR",
    "ThroughputMeter", "TimeSeries", "availability_from_mtbf",
    "downtime_budget", "explain_trace", "hit_rate", "nines",
    "stale_fraction", "summarize", "trace_breakdown", "trace_root",
]
