"""Availability metrics: MTTF, MTTR, nines, downtime budgets.

Directly from the paper (section 2.2):

    Availability = MTTF / (MTTF + MTTR)

and section 5.1: "A system with 5 nines of availability can be unavailable
for no more than 5.26 minutes per year — this number marks the sole
acceptable upper bound when evaluating new availability techniques.
Similarly, metrics such as MTTF and MTTR should be considered when
evaluating a design and/or prototype."
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

SECONDS_PER_YEAR = 365.25 * 24 * 3600.0
FIVE_NINES_BUDGET_SECONDS = (1 - 0.99999) * SECONDS_PER_YEAR  # ~315.6 s/yr


def availability_from_mtbf(mttf: float, mttr: float) -> float:
    """The paper's formula: A = MTTF / (MTTF + MTTR)."""
    if mttf <= 0:
        return 0.0
    return mttf / (mttf + mttr)


def nines(availability: float) -> float:
    """How many nines: 0.999 -> 3.0; capped at 12 to avoid log(0)."""
    unavailability = 1.0 - availability
    if unavailability <= 0:
        return 12.0
    return min(12.0, -math.log10(unavailability))


def downtime_budget(nines_count: int,
                    period_seconds: float = SECONDS_PER_YEAR) -> float:
    """Allowed downtime for N nines over a period (seconds)."""
    return period_seconds * (10.0 ** (-nines_count))


class AvailabilityTracker:
    """Builds an up/down timeline from service events and computes the
    paper's metrics over it."""

    def __init__(self, start_time: float = 0.0, initially_up: bool = True):
        self.start_time = start_time
        self._up = initially_up
        self._last_change = start_time
        self._uptime = 0.0
        self._downtime = 0.0
        self.outages: List[Tuple[float, float]] = []  # (down_at, up_at)
        self._down_at: Optional[float] = None
        if not initially_up:
            self._down_at = start_time

    def service_down(self, now: float) -> None:
        if not self._up:
            return
        self._uptime += now - self._last_change
        self._up = False
        self._last_change = now
        self._down_at = now

    def service_up(self, now: float) -> None:
        if self._up:
            return
        self._downtime += now - self._last_change
        self._up = True
        self._last_change = now
        if self._down_at is not None:
            self.outages.append((self._down_at, now))
            self._down_at = None

    def finish(self, now: float) -> None:
        """Close the timeline at ``now``."""
        if self._up:
            self._uptime += now - self._last_change
        else:
            self._downtime += now - self._last_change
            if self._down_at is not None:
                self.outages.append((self._down_at, now))
                self._down_at = None
        self._last_change = now

    # -- metrics -------------------------------------------------------------

    @property
    def uptime(self) -> float:
        return self._uptime

    @property
    def downtime(self) -> float:
        return self._downtime

    def availability(self) -> float:
        total = self._uptime + self._downtime
        if total <= 0:
            return 1.0
        return self._uptime / total

    def mttr(self) -> float:
        """Mean time to repair: average outage duration."""
        if not self.outages:
            return 0.0
        return sum(up - down for down, up in self.outages) / len(self.outages)

    def mttf(self) -> float:
        """Mean time to failure: average up-interval before an outage."""
        if not self.outages:
            return self._uptime
        intervals = []
        previous_up = self.start_time
        for down_at, up_at in self.outages:
            intervals.append(down_at - previous_up)
            previous_up = up_at
        return sum(intervals) / len(intervals)

    def nines(self) -> float:
        return nines(self.availability())

    def meets_budget(self, nines_count: int,
                     period_seconds: Optional[float] = None) -> bool:
        """Would this downtime rate fit an N-nines yearly budget?"""
        total = self._uptime + self._downtime
        if total <= 0:
            return True
        period = period_seconds or total
        budget = downtime_budget(nines_count, period)
        scaled_downtime = self._downtime * (period / total)
        return scaled_downtime <= budget

    def summary(self) -> Dict[str, float]:
        return {
            "uptime": self._uptime,
            "downtime": self._downtime,
            "availability": self.availability(),
            "nines": self.nines(),
            "mttf": self.mttf(),
            "mttr": self.mttr(),
            "outages": float(len(self.outages)),
        }
