"""Per-stage latency breakdown derived from span traces.

Section 5.1 of the paper asks evaluations to report "performance in the
presence of failures" and "performance of degraded modes" — which means
explaining *where* a slow request spent its time, not just that it was
slow.  This module turns one trace (the spans of a single request) into
a stage → time map that sums exactly to the root span's duration:

* every span contributes its **self time** — duration minus the
  duration of its direct children minus the total ``duration`` carried
  by its own timed events — under its span name;
* every timed event (an event whose attrs carry ``duration`` seconds,
  e.g. the retry ``backoff`` the resilience layer charged) contributes
  that duration under its event name;
* clock-granularity noise can make children appear to overlap their
  parent, so self time is clamped at zero and the clamped excess is
  discarded — the invariant checked by the tests is
  ``sum(stages.values()) <= root.duration`` with equality whenever no
  clamping occurred.

:class:`BreakdownAggregator` folds many traces into per-stage
:class:`~repro.metrics.perf.LatencyRecorder` histograms (the E25
failover-timeline evidence), and :func:`explain_trace` renders one
trace as an ``EXPLAIN ANALYZE``-style indented report.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..obs.tracing import Span
from .perf import LatencyRecorder


def trace_breakdown(spans: Sequence[Span]) -> Dict[str, float]:
    """Stage → seconds for one trace's finished spans.

    Orphan spans (parent id not in the trace, e.g. linked cross-node
    ``replica.apply`` spans or a parent evicted from retention) are
    treated as roots of their own subtree: they contribute self time
    but are *not* subtracted from anyone, so asynchronous work never
    corrupts the request-side breakdown.
    """
    if len(spans) == 1 and spans[0].finished and not spans[0].events:
        # the overwhelmingly common shape under root-span sampling:
        # one statement span, no children, no timed events
        only = spans[0]
        return {only.name: only.duration} if only.duration > 0.0 else {}
    stages: Dict[str, float] = {}
    by_id = {s.span_id: s for s in spans if s.finished}
    child_time: Dict[int, float] = {}
    for span in by_id.values():
        if span.parent_id in by_id:
            child_time[span.parent_id] = \
                child_time.get(span.parent_id, 0.0) + span.duration
    for span in by_id.values():
        event_time = 0.0
        for _time, name, attrs in span.events:
            duration = attrs.get("duration")
            if duration is None:
                continue
            duration = float(duration)
            stages[name] = stages.get(name, 0.0) + duration
            event_time += duration
        self_time = span.duration - child_time.get(span.span_id, 0.0) \
            - event_time
        if self_time > 0.0:
            stages[span.name] = stages.get(span.name, 0.0) + self_time
    return stages


def trace_root(spans: Sequence[Span]) -> Optional[Span]:
    """The trace's root span (no parent within the trace); earliest
    start wins if several qualify (linked spans are later)."""
    by_id = {s.span_id for s in spans}
    roots = [s for s in spans
             if s.finished and (s.parent_id is None
                                or s.parent_id not in by_id)]
    if not roots:
        return None
    return min(roots, key=lambda s: (s.start, s.span_id))


class BreakdownAggregator:
    """Folds many traces into per-stage latency histograms."""

    def __init__(self) -> None:
        self.stage_recorders: Dict[str, LatencyRecorder] = {}
        self.total = LatencyRecorder("end_to_end")
        self.traces = 0

    def add_trace(self, spans: Sequence[Span]) -> Dict[str, float]:
        """Fold one trace in; returns its stage map."""
        stages = trace_breakdown(spans)
        for name, seconds in stages.items():
            recorder = self.stage_recorders.get(name)
            if recorder is None:
                recorder = LatencyRecorder(name)
                self.stage_recorders[name] = recorder
            recorder.add(seconds)
        root = trace_root(spans)
        if root is not None:
            self.total.add(root.duration)
        self.traces += 1
        return stages

    def add_traces(self, traces: Iterable[Sequence[Span]]) -> None:
        for spans in traces:
            self.add_trace(spans)

    def stage_totals(self) -> Dict[str, float]:
        """Stage → summed seconds across every folded trace."""
        return {name: sum(rec.samples)
                for name, rec in self.stage_recorders.items()}

    def summary(self) -> Dict[str, Any]:
        """JSON-friendly report: per-stage histograms + coverage.

        ``coverage`` is sum(stage time) / sum(end-to-end time) — the
        fraction of measured request latency the named stages explain
        (E25's acceptance bar is >= 0.95).
        """
        total_e2e = sum(self.total.samples)
        total_staged = sum(self.stage_totals().values())
        return {
            "traces": self.traces,
            "end_to_end": self.total.summary(),
            "stages": {name: rec.summary()
                       for name, rec in
                       sorted(self.stage_recorders.items())},
            "stage_seconds": self.stage_totals(),
            "coverage": (total_staged / total_e2e) if total_e2e else 1.0,
        }


def explain_trace(spans: Sequence[Span]) -> str:
    """Render one trace as an ``EXPLAIN ANALYZE``-style report.

    Spans are indented under their parents with start offsets relative
    to the root, tags inline, and timed events as ``+`` lines — the
    per-request view of where time went.
    """
    finished = [s for s in spans if s.finished]
    if not finished:
        return "(empty trace)"
    root = trace_root(finished)
    assert root is not None
    children: Dict[Optional[int], List[Span]] = {}
    by_id = {s.span_id for s in finished}
    for span in finished:
        parent = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent, []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda s: (s.start, s.span_id))
    lines: List[str] = [f"TRACE {root.trace_id}  "
                        f"(total {root.duration * 1000.0:.3f} ms)"]
    base = root.start

    def fmt_tags(span: Span) -> str:
        if not span.tags:
            return ""
        inner = ", ".join(f"{k}={span.tags[k]}"
                          for k in sorted(span.tags))
        return f"  [{inner}]"

    def walk(span: Span, depth: int) -> None:
        indent = "  " * depth
        lines.append(
            f"{indent}{span.name}  {span.duration * 1000.0:.3f} ms"
            f"  @+{(span.start - base) * 1000.0:.3f} ms{fmt_tags(span)}")
        for time, name, attrs in span.events:
            detail = ", ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
            suffix = f"  ({detail})" if detail else ""
            lines.append(f"{indent}  + {name}"
                         f"  @+{(time - base) * 1000.0:.3f} ms{suffix}")
        for child in children.get(span.span_id, ()):  # direct children
            if child.span_id != span.span_id:
                walk(child, depth + 1)

    top: List[Tuple[float, Span]] = [
        (s.start, s) for s in children.get(None, ())]
    for _start, span in sorted(top, key=lambda p: (p[0], p[1].span_id)):
        walk(span, 1)
    return "\n".join(lines)
