"""Throughput and latency collectors."""

from __future__ import annotations

import math
from typing import Dict, List, Optional


class LatencyRecorder:
    """Collects latency samples (seconds) and reports percentiles."""

    def __init__(self, name: str = "latency"):
        self.name = name
        self.samples: List[float] = []

    def add(self, value: float) -> None:
        self.samples.append(value)

    def count(self) -> int:
        return len(self.samples)

    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, p in [0, 100]."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        if p <= 0:
            return ordered[0]
        if p >= 100:
            return ordered[-1]
        rank = max(1, math.ceil(len(ordered) * p / 100.0))
        return ordered[rank - 1]

    def max(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count()),
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max(),
        }


class ThroughputMeter:
    """Counts completions against a (simulated) clock."""

    def __init__(self, name: str = "throughput"):
        self.name = name
        self.completed = 0
        self.failed = 0
        self.started_at: Optional[float] = None
        self.last_at: Optional[float] = None

    def start(self, now: float) -> None:
        self.started_at = now

    def note_completion(self, now: float) -> None:
        if self.started_at is None:
            self.started_at = now
        self.completed += 1
        self.last_at = now

    def note_failure(self, now: float) -> None:
        if self.started_at is None:
            self.started_at = now
        self.failed += 1
        self.last_at = now

    def rate(self, until: Optional[float] = None) -> float:
        if self.started_at is None:
            return 0.0
        end = until if until is not None else self.last_at
        if end is None or end <= self.started_at:
            return 0.0
        return self.completed / (end - self.started_at)

    def abort_rate(self) -> float:
        total = self.completed + self.failed
        return self.failed / total if total else 0.0


class TimeSeries:
    """(time, value) pairs for plotting lag or load over time."""

    def __init__(self, name: str = "series"):
        self.name = name
        self.points: List[tuple] = []

    def add(self, time: float, value: float) -> None:
        self.points.append((time, value))

    def values(self) -> List[float]:
        return [v for _t, v in self.points]

    def max(self) -> float:
        return max(self.values()) if self.points else 0.0

    def last(self) -> float:
        return self.points[-1][1] if self.points else 0.0

    def mean(self) -> float:
        values = self.values()
        return sum(values) / len(values) if values else 0.0
