"""Result-cache metrics: counter roll-ups and derived rates.

The raw counters live on :class:`repro.cache.resultcache.ResultCache`;
this module turns them into the quantities monitoring dashboards (and
benchmark E24) actually plot — hit rate, stale-served fraction, fill
efficiency, occupancy.
"""

from __future__ import annotations

from typing import Dict


def hit_rate(stats: Dict[str, int]) -> float:
    """Served-from-cache fraction of all lookups that could have hit:
    (hits + stale hits) / (hits + stale hits + misses + gate rejections).
    Protocol/uncacheable bypasses are excluded — those reads never had a
    cacheable answer to miss."""
    served = stats.get("hits", 0) + stats.get("stale_hits", 0)
    lookups = (served + stats.get("misses", 0)
               + stats.get("gate_rejections", 0))
    if lookups == 0:
        return 0.0
    return served / lookups


def stale_fraction(stats: Dict[str, int]) -> float:
    """Fraction of served hits that were labelled bounded-staleness."""
    served = stats.get("hits", 0) + stats.get("stale_hits", 0)
    if served == 0:
        return 0.0
    return stats.get("stale_hits", 0) / served


def summarize(stats: Dict[str, int], size: int = 0,
              capacity: int = 0) -> Dict[str, float]:
    """One flat dict for monitoring snapshots: every raw counter plus the
    derived rates and current occupancy."""
    summary: Dict[str, float] = dict(stats)
    summary["size"] = size
    summary["capacity"] = capacity
    summary["occupancy"] = (size / capacity) if capacity else 0.0
    summary["hit_rate"] = hit_rate(stats)
    summary["stale_fraction"] = stale_fraction(stats)
    return summary
