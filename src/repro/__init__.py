"""repro — middleware-based database replication, end to end.

A full reproduction of Cecchet, Candea & Ailamaki, "Middleware-based
Database Replication: The Gaps Between Theory and Practice" (SIGMOD 2008):
the replication middleware itself (statement and writeset replication,
pluggable consistency, load balancing, failover/failback, recovery log,
partitioning, WAN multi-site), the RDBMS substrate it runs on, a
deterministic cluster simulator for timing/availability experiments, OLTP
workload generators, and the paper's proposed evaluation metrics.

Quickstart::

    from repro import build_cluster, load_workload
    from repro.workloads import MicroWorkload

    mw = build_cluster(3, replication="writeset", consistency="pcsi")
    load_workload(mw, MicroWorkload(rows=100))
    with mw.connect(database="shop") as session:
        session.execute("UPDATE kv SET v = v + 1 WHERE k = 1")
        print(session.execute("SELECT v FROM kv WHERE k = 1").scalar())
"""

from .bench.harness import Report, build_cluster, build_replicas, load_workload
from .core import (
    CircuitBreaker, MiddlewareConfig, MiddlewareSession, Overloaded,
    Replica, ReplicationMiddleware, RequestTimeout, ResiliencePolicy,
    RetryExhausted, RetryPolicy,
)
from .sqlengine import Engine

__version__ = "1.0.0"

__all__ = [
    "CircuitBreaker", "Engine", "MiddlewareConfig", "MiddlewareSession",
    "Overloaded", "Replica", "ReplicationMiddleware", "Report",
    "RequestTimeout", "ResiliencePolicy", "RetryExhausted", "RetryPolicy",
    "build_cluster", "build_replicas", "load_workload", "__version__",
]
