"""``repro.cache`` — middleware-resident query result caching.

The paper's surveyed middleware (C-JDBC/Sequoia-style JDBC proxies) pairs
read routing with a middleware-level result cache — most of their low-load
win comes from answering repeated reads without touching a replica at all.
This package is that subsystem, modernised along the lines of Hihooi
(PAPERS.md): the middleware tracks exactly which cached state is still
fresh enough to answer a query under the session's consistency protocol.

Three pieces:

* :mod:`repro.cache.resultcache` — a bounded LRU+TTL store keyed by
  normalized (user, database, statement, params) with per-entry read-
  dependency sets at table and ``(table, pk)`` granularity;
* :mod:`repro.cache.invalidation` — a subscriber on the middleware's
  certified-write stream that invalidates entries at key granularity,
  falling back to whole-table invalidation for non-keyed writes and a
  full flush for DDL / opaque procedures (the paper's §4 pitfalls: those
  must bypass or flush, never serve stale);
* :mod:`repro.cache.gate` — the per-protocol consistency gate deciding
  whether a hit may be served to a given session (1SR bypasses, the SI
  family serves entries whose effective version is visible, degraded
  clusters may serve explicitly-labelled bounded-staleness hits).

Read-dependency extraction lives in :mod:`repro.cache.dependencies`,
built on the planner's index-probe proofs.
"""

from .dependencies import ReadDependencies, extract_read_dependencies
from .gate import (
    GATE_BYPASS_PROTOCOL, GATE_HIT, GATE_REJECT, GATE_STALE, ConsistencyGate,
)
from .invalidation import CertifiedWrite, WritesetInvalidator
from .resultcache import (
    CachedResult, CacheEntry, ResultCache, ResultCacheConfig, cache_key,
    normalize_statement,
)

__all__ = [
    "CacheEntry",
    "CachedResult",
    "CertifiedWrite",
    "ConsistencyGate",
    "GATE_BYPASS_PROTOCOL",
    "GATE_HIT",
    "GATE_REJECT",
    "GATE_STALE",
    "ReadDependencies",
    "ResultCache",
    "ResultCacheConfig",
    "WritesetInvalidator",
    "cache_key",
    "extract_read_dependencies",
    "normalize_statement",
]
