"""The per-protocol consistency gate.

A cache entry is not stale or fresh in the absolute — it is fresh *for a
session under a protocol*.  The gate reduces that question to sequence
arithmetic:

* a live entry is valid **as of the invalidator's watermark**: every
  certified write up to ``invalidator.applied_seq`` that touched the
  entry's dependencies would have removed it, so serving the entry is
  indistinguishable from reading a replica whose applied sequence equals
  that watermark (for the entry's read set);
* the protocol already states, via ``min_read_seq``, the watermark a
  *replica* must have applied before this session may read from it — the
  same bound applies verbatim to the cache.

So: 1SR (statement broadcast) bypasses the cache entirely — its reads
take middleware table locks and must observe in-flight write broadcasts,
which no result cache can witness.  The SI family compares the
watermark against ``min_read_seq``: GSI accepts any prefix (always a
hit), strong session SI demands the session's own observed prefix,
strong SI demands the global sequence.  When the watermark falls short,
a degraded cluster may still serve the entry as an explicitly-labelled
bounded-staleness hit through PR 1's ``serve_stale`` budget — the same
policy knob that governs lagging-replica reads.
"""

from __future__ import annotations

from typing import Tuple

GATE_HIT = "hit"
GATE_STALE = "stale"
GATE_REJECT = "reject"
GATE_BYPASS_PROTOCOL = "bypass-protocol"


class ConsistencyGate:
    """Decides whether a cached entry may be served to a session."""

    def __init__(self, middleware, cache, invalidator):
        self.middleware = middleware
        self.cache = cache
        self.invalidator = invalidator

    @property
    def protocol_allows_caching(self) -> bool:
        """Broadcast-mode (1SR) protocols never read from the cache."""
        return self.middleware.config.consistency.write_mode != "broadcast"

    def decide(self, session) -> Tuple[str, int]:
        """(decision, lag) for serving a live cache entry to ``session``.

        ``lag`` is how many sequence numbers the cache's effective
        watermark trails the protocol's requirement — 0 for fresh hits,
        positive for ``GATE_STALE``/``GATE_REJECT``.
        """
        middleware = self.middleware
        protocol = middleware.config.consistency
        if protocol.write_mode == "broadcast":
            return GATE_BYPASS_PROTOCOL, 0
        needed = protocol.min_read_seq(session.view, middleware.cluster_view())
        effective = self.invalidator.applied_seq
        if effective >= needed:
            return GATE_HIT, 0
        lag = needed - effective
        resilience = middleware.resilience
        if resilience is not None and resilience.serve_stale(lag):
            return GATE_STALE, lag
        return GATE_REJECT, lag

    def note_served(self, session, decision: str) -> None:
        """Bookkeeping after a hit: the session has observed state
        consistent with the invalidator's watermark, which feeds the
        monotonic-reads guarantees exactly like a replica read."""
        self.middleware.config.consistency.note_read(
            session.view, self.invalidator.applied_seq)
