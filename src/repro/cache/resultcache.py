"""The bounded LRU+TTL result store.

Entries are keyed by normalized ``(user, database, statement, params)``
and carry their read-dependency footprint plus the certifier sequence the
entry was filled at.  Two inverted indexes make invalidation O(affected
entries) instead of O(cache): one from ``(db, table, pk)`` point keys and
one from ``(db, table)``.  A *point* entry (the planner proved the result
draws only from specific primary keys) is invalidated only by writes to
those keys; a *broad* entry (scans, joins, aggregates over ranges) is
invalidated by any write to its tables.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Optional, Set, Tuple

from ..sqlengine.executor import Result
from .dependencies import ReadDependencies

Clock = Callable[[], float]

TableKey = Tuple[str, str]            # (database, table)
PointKey = Tuple[str, str, tuple]     # (database, table, pk tuple)


def _zero_clock() -> float:
    return 0.0


# Parameterized workloads repeat the same statement text thousands of
# times; memoizing normalization keeps the hit path allocation-free.
_NORMALIZE_MEMO: Dict[str, str] = {}
_NORMALIZE_MEMO_LIMIT = 4096


def normalize_statement(sql: str) -> str:
    """Collapse whitespace and trailing semicolons so trivially-different
    spellings of the same statement share one cache slot.  Case is left
    alone — folding it would corrupt string literals."""
    normalized = _NORMALIZE_MEMO.get(sql)
    if normalized is None:
        normalized = " ".join(sql.split()).rstrip("; ")
        if len(_NORMALIZE_MEMO) >= _NORMALIZE_MEMO_LIMIT:
            _NORMALIZE_MEMO.clear()
        _NORMALIZE_MEMO[sql] = normalized
    return normalized


def cache_key(user: str, database: Optional[str], sql: str,
              params) -> Optional[tuple]:
    """The cache key for one read, or ``None`` when the request cannot be
    keyed (unhashable parameters)."""
    try:
        param_key = tuple(params) if params else ()
        hash(param_key)
    except TypeError:
        return None
    return (user, database, normalize_statement(sql), param_key)


class CachedResult(Result):
    """A :class:`Result` served from the cache, labelled as such.

    ``stale`` marks a bounded-staleness degraded-mode hit; ``lag`` is how
    many global sequence numbers behind the protocol's requirement the
    served state may be.  Fresh hits carry ``stale=False, lag=0``.
    """

    __slots__ = ("from_cache", "stale", "lag")

    def __init__(self, columns, rows, rowcount, lastrowid,
                 stale: bool = False, lag: int = 0):
        super().__init__(columns=list(columns), rows=list(rows),
                         rowcount=rowcount, lastrowid=lastrowid)
        self.from_cache = True
        self.stale = stale
        self.lag = lag


class CacheEntry:
    """One cached result with its dependency footprint."""

    __slots__ = ("key", "columns", "rows", "rowcount", "lastrowid",
                 "deps", "fill_seq", "filled_at")

    def __init__(self, key: tuple, result: Result, deps: ReadDependencies,
                 fill_seq: int, filled_at: float):
        self.key = key
        self.columns = list(result.columns)
        self.rows = list(result.rows)
        self.rowcount = result.rowcount
        self.lastrowid = result.lastrowid
        self.deps = deps
        self.fill_seq = fill_seq
        self.filled_at = filled_at

    def to_result(self, stale: bool = False, lag: int = 0) -> CachedResult:
        return CachedResult(self.columns, self.rows, self.rowcount,
                            self.lastrowid, stale=stale, lag=lag)

    def table_names(self) -> Set[str]:
        """Bare (database-less) table names this entry depends on — used
        to veto serving when a session's temp table shadows a real one."""
        return {table for _db, table in self.deps.tables}

    def __repr__(self) -> str:
        return (f"CacheEntry(seq={self.fill_seq}, rows={len(self.rows)}, "
                f"deps={self.deps!r})")


class ResultCacheConfig:
    """Tunable cache behaviour, attached to a ``MiddlewareConfig``.

    Attributes:
        capacity: maximum number of entries (LRU eviction beyond it).
        ttl: entry lifetime in injected-clock seconds (``None`` = rely on
            invalidation alone).
        max_rows: results larger than this are not cached.
    """

    def __init__(self, capacity: int = 512, ttl: Optional[float] = None,
                 max_rows: int = 1024):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.ttl = ttl
        self.max_rows = max_rows


class ResultCache:
    """The store: bounded LRU + optional TTL + inverted dependency
    indexes.  Consistency decisions live in :mod:`repro.cache.gate`; this
    class only remembers, forgets and counts."""

    def __init__(self, config: Optional[ResultCacheConfig] = None,
                 clock: Optional[Clock] = None):
        self.config = config or ResultCacheConfig()
        self.clock = clock or _zero_clock
        self._entries: "OrderedDict[tuple, CacheEntry]" = OrderedDict()
        # point key -> cache keys of entries depending on exactly that row
        self._by_point: Dict[PointKey, Set[tuple]] = {}
        # (db, table) -> cache keys of *broad* entries on that table
        self._by_table_broad: Dict[TableKey, Set[tuple]] = {}
        # (db, table) -> cache keys of *every* entry touching that table
        self._by_table_all: Dict[TableKey, Set[tuple]] = {}
        self.stats = {
            "hits": 0, "stale_hits": 0, "misses": 0, "fills": 0,
            "fill_rejected": 0, "evictions": 0, "expirations": 0,
            "invalidated_entries": 0, "invalidation_events": 0,
            "flushes": 0, "bypass_protocol": 0, "bypass_uncacheable": 0,
            "gate_rejections": 0,
        }

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # lookup / fill
    # ------------------------------------------------------------------

    def peek(self, key: tuple) -> Optional[CacheEntry]:
        """Fetch without touching hit/miss counters (the gate decides
        what the lookup *was* afterwards).  Expired entries are dropped."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        ttl = self.config.ttl
        if ttl is not None and self.clock() - entry.filled_at >= ttl:
            self._drop(key)
            self.stats["expirations"] += 1
            return None
        self._entries.move_to_end(key)
        return entry

    def put(self, key: tuple, result: Result, deps: ReadDependencies,
            fill_seq: int) -> Optional[CacheEntry]:
        if len(result.rows) > self.config.max_rows:
            self.stats["fill_rejected"] += 1
            return None
        if key in self._entries:
            self._drop(key)
        entry = CacheEntry(key, result, deps, fill_seq, self.clock())
        self._entries[key] = entry
        for point in deps.point_keys:
            self._by_point.setdefault(point, set()).add(key)
            table_key = (point[0], point[1])
            self._by_table_all.setdefault(table_key, set()).add(key)
        for table_key in deps.tables:
            self._by_table_all.setdefault(table_key, set()).add(key)
            if table_key not in deps.point_tables:
                self._by_table_broad.setdefault(table_key, set()).add(key)
        self.stats["fills"] += 1
        while len(self._entries) > self.config.capacity:
            oldest = next(iter(self._entries))
            self._drop(oldest)
            self.stats["evictions"] += 1
        return entry

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------

    def invalidate_point(self, point: PointKey) -> int:
        """A certified write touched one primary key: kill entries pinned
        to that key plus every broad entry on the table."""
        victims = set(self._by_point.get(point, ()))
        victims |= self._by_table_broad.get((point[0], point[1]), set())
        return self._kill(victims)

    def invalidate_table(self, table_key: TableKey) -> int:
        """A non-keyed write (or one we could not key) touched the table:
        kill everything that depends on it, point entries included."""
        return self._kill(set(self._by_table_all.get(table_key, ())))

    def flush(self) -> int:
        """DDL / opaque procedure / unknown footprint: drop everything."""
        count = len(self._entries)
        self._entries.clear()
        self._by_point.clear()
        self._by_table_broad.clear()
        self._by_table_all.clear()
        self.stats["flushes"] += 1
        self.stats["invalidated_entries"] += count
        return count

    def _kill(self, keys: Set[tuple]) -> int:
        for key in keys:
            self._drop(key)
        self.stats["invalidated_entries"] += len(keys)
        return len(keys)

    def _drop(self, key: tuple) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        for point in entry.deps.point_keys:
            self._unindex(self._by_point, point, key)
            self._unindex(self._by_table_all, (point[0], point[1]), key)
        for table_key in entry.deps.tables:
            self._unindex(self._by_table_all, table_key, key)
            self._unindex(self._by_table_broad, table_key, key)

    @staticmethod
    def _unindex(index: Dict, bucket_key, key: tuple) -> None:
        bucket = index.get(bucket_key)
        if bucket is None:
            return
        bucket.discard(key)
        if not bucket:
            del index[bucket_key]

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """Counters plus derived rates, for monitoring snapshots."""
        from ..metrics.cache import summarize
        return summarize(self.stats, size=len(self._entries),
                         capacity=self.config.capacity)

    def __repr__(self) -> str:
        return (f"ResultCache(size={len(self._entries)}/"
                f"{self.config.capacity}, hits={self.stats['hits']}, "
                f"misses={self.stats['misses']})")
