"""Read-dependency extraction for cacheable statements.

The planner already proves when an index probe covers a statement
(:func:`repro.sqlengine.planner.plan_table_access`); this module reuses
that proof to classify a read as a *point* dependency — the result draws
only from rows whose primary key is in a known set — or a *broad* one
that depends on whole tables.  Point entries survive unrelated writes to
the same table, which is where most of the hit rate under mixed traffic
comes from.

Uncacheable reads return ``None``: non-deterministic calls (``NOW()``,
``RAND()``, ``NEXTVAL``), ``information_schema`` (catalog state moves
outside the certified-write stream), temporary tables (per-session state
that must never be served across sessions, paper §4.1.4), and statements
whose tables cannot be resolved against the replica's schema.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Set, Tuple

from ..sqlengine import ast_nodes as ast
from ..sqlengine.errors import SQLError
from ..sqlengine.expressions import EvalContext
from ..sqlengine.planner import plan_table_access, select_has_subquery

TableKey = Tuple[str, str]
PointKey = Tuple[str, str, tuple]


class ReadDependencies:
    """The invalidation footprint of one cached result.

    ``tables`` — every ``(db, table)`` the result depends on;
    ``point_keys`` — ``(db, table, pk)`` triples when the planner proved
    the result draws only from those rows; ``point_tables`` — the tables
    covered by that proof (a table in ``tables`` but not here is *broad*:
    any write to it invalidates the entry).
    """

    __slots__ = ("tables", "point_keys", "point_tables")

    def __init__(self, tables: FrozenSet[TableKey],
                 point_keys: FrozenSet[PointKey] = frozenset(),
                 point_tables: FrozenSet[TableKey] = frozenset()):
        self.tables = tables
        self.point_keys = point_keys
        self.point_tables = point_tables

    @property
    def is_point(self) -> bool:
        return bool(self.point_tables) and self.point_tables == self.tables

    def __repr__(self) -> str:
        kind = "point" if self.is_point else "broad"
        return f"ReadDependencies({kind}, tables={sorted(self.tables)})"


def split_table_name(name: str,
                     default_database: Optional[str]) -> Optional[TableKey]:
    """``db.table`` or bare ``table`` -> ``(db, table)`` lowercase."""
    name = name.lower()
    if "." in name:
        database, _, table = name.partition(".")
        return (database, table)
    if default_database is None:
        return None
    return (default_database.lower(), name)


def extract_read_dependencies(statement: ast.Statement, info, engine,
                              default_database: Optional[str],
                              params) -> Optional[ReadDependencies]:
    """The dependency footprint of a read, resolved against ``engine``'s
    schema (the replica the read executed on), or ``None`` when the read
    must not be cached.  ``info`` is the middleware's ``StatementInfo``.
    """
    if info.nondeterministic_calls or not info.is_read_only:
        return None
    table_keys: Set[TableKey] = set()
    resolved = {}
    for name in info.all_tables():
        table_key = split_table_name(name, default_database)
        if table_key is None or table_key[0] == "information_schema" \
                or table_key[1].startswith("information_schema"):
            return None
        try:
            table = engine.database(table_key[0]).table(table_key[1])
        except SQLError:
            return None
        if table.temporary:
            return None
        table_keys.add(table_key)
        resolved[table_key] = table
    if not table_keys:
        # table-less reads (SELECT 1) depend on nothing and never go stale
        return ReadDependencies(frozenset())

    point = _point_lookup_keys(statement, table_keys, resolved, params)
    if point is not None:
        table_key, keys = point
        return ReadDependencies(
            frozenset(table_keys),
            point_keys=frozenset((table_key[0], table_key[1], key)
                                 for key in keys),
            point_tables=frozenset({table_key}))
    return ReadDependencies(frozenset(table_keys))


def _point_lookup_keys(statement, table_keys, resolved, params):
    """Prove the read draws only from specific primary keys: a single-
    table SELECT with no subqueries whose WHERE the planner turns into a
    probe of the *primary-key* index.  The probe is a superset of the
    matching rows, so any write that could change the result necessarily
    carries one of the probed keys in its certification footprint."""
    if not isinstance(statement, ast.SelectStatement):
        return None
    if len(table_keys) != 1 or not isinstance(statement.source,
                                              ast.TableRef):
        return None
    if select_has_subquery(statement):
        return None
    table_key = next(iter(table_keys))
    table = resolved[table_key]
    pk_index = table.primary_key_index
    if pk_index is None:
        return None
    binding = (statement.source.alias or statement.source.name.name).lower()
    ctx = EvalContext(None, None, params=list(params or []))
    try:
        plan = plan_table_access(table, binding, statement.where, ctx)
    except SQLError:
        return None
    if not plan.is_index or plan.index is not pk_index:
        return None
    return table_key, list(plan.keys)
