"""Writeset-driven cache invalidation.

The middleware publishes one :class:`CertifiedWrite` per committed update
unit — a certified writeset, a statement-mode transaction's derived
footprint, or a DDL broadcast.  The :class:`WritesetInvalidator` consumes
that stream and keeps two facts straight:

* **what is dead** — entries whose dependencies intersect the write's
  ``(db, table, pk)`` footprint are dropped at key granularity; non-keyed
  footprints (``pk=None``) kill everything on the table; DDL and opaque
  units (stored procedures, trigger-bearing tables, underivable
  statements — the paper's §4 pitfalls) flush the whole cache, because
  serving stale is the one failure mode a replication cache must never
  have;
* **how fresh the survivors are** — ``applied_seq`` is the highest
  sequence the invalidator has processed; a surviving entry is valid as
  of that watermark, which is what the consistency gate compares against
  the protocol's ``min_read_seq``.

A bounded history of recent footprints additionally answers the *fill
guard* question: a read executed on a replica lagging at sequence ``s``
may only be cached if no footprint in ``(s, applied_seq]`` overlaps its
dependencies — otherwise the fill would launder stale replica state into
a "fresh as of ``applied_seq``" entry.  Outside the history window the
answer is *unknown* and the fill is refused.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, FrozenSet, Optional, Set, Tuple

from .dependencies import ReadDependencies

TableKey = Tuple[str, str]

#: kinds whose footprint cannot be trusted at key granularity
OPAQUE_KINDS = frozenset({"ddl", "opaque"})


class CertifiedWrite:
    """One committed update unit on the certified stream.

    ``keys`` is the invalidation footprint: ``(db, table, pk)`` triples
    with ``pk=None`` meaning whole-table.  ``kind`` is ``"writeset"``,
    ``"statements"``, ``"ddl"`` or ``"opaque"``.
    """

    __slots__ = ("seq", "keys", "tables", "kind", "database", "entries")

    def __init__(self, seq: int, keys: FrozenSet = frozenset(),
                 tables: FrozenSet[TableKey] = frozenset(),
                 kind: str = "writeset", database: Optional[str] = None,
                 entries=None):
        self.seq = seq
        self.keys = keys
        self.tables = tables
        self.kind = kind
        self.database = database
        self.entries = entries

    def __repr__(self) -> str:
        return (f"CertifiedWrite(seq={self.seq}, kind={self.kind}, "
                f"keys={len(self.keys)})")


class _Footprint:
    """What one historical write touched, for the fill guard.  ``None``
    points/tables (an opaque unit) conflicts with everything."""

    __slots__ = ("seq", "points", "tables")

    def __init__(self, seq: int, points: Optional[Set],
                 tables: Optional[Set[TableKey]]):
        self.seq = seq
        self.points = points
        self.tables = tables

    @property
    def opaque(self) -> bool:
        return self.points is None

    def overlaps(self, deps: ReadDependencies) -> bool:
        if self.opaque:
            return True
        if self.tables and any(t in deps.tables for t in self.tables):
            return True
        if not self.points:
            return False
        broad = deps.tables - deps.point_tables
        for point in self.points:
            if point in deps.point_keys:
                return True
            if (point[0], point[1]) in broad:
                return True
        return False


class WritesetInvalidator:
    """Subscriber on the middleware's certified-write stream."""

    def __init__(self, cache, history_limit: int = 1024):
        self.cache = cache
        self.history_limit = history_limit
        self.applied_seq = 0
        # events with seq <= _floor_seq may be missing from history
        self._floor_seq = 0
        self._history: Deque[_Footprint] = deque()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def attach(self, middleware) -> None:
        """Subscribe and align the watermark with the middleware's current
        global sequence (nothing is cached yet, so nothing is owed)."""
        self.reset(middleware.global_seq)
        middleware.on_certified(self.on_certified)

    def reset(self, seq: int) -> None:
        """Middleware recovery / (re)attachment: the stream may have
        gapped, so drop everything and restart the watermark."""
        if len(self.cache):
            self.cache.flush()
        self._history.clear()
        self.applied_seq = seq
        self._floor_seq = seq

    # ------------------------------------------------------------------
    # the stream
    # ------------------------------------------------------------------

    def on_certified(self, event: CertifiedWrite) -> None:
        cache = self.cache
        cache.stats["invalidation_events"] += 1
        if event.kind in OPAQUE_KINDS:
            cache.flush()
            footprint = _Footprint(event.seq, None, None)
        else:
            points: Set = set()
            tables: Set[TableKey] = set()
            for database, table, pk in event.keys:
                if pk is None:
                    tables.add((database, table))
                    cache.invalidate_table((database, table))
                else:
                    points.add((database, table, pk))
                    cache.invalidate_point((database, table, pk))
            footprint = _Footprint(event.seq, points, tables)
        self.applied_seq = max(self.applied_seq, event.seq)
        self._history.append(footprint)
        while len(self._history) > self.history_limit:
            dropped = self._history.popleft()
            self._floor_seq = max(self._floor_seq, dropped.seq)

    # ------------------------------------------------------------------
    # fill guard
    # ------------------------------------------------------------------

    def conflicts_since(self, after_seq: int,
                        deps: ReadDependencies) -> Optional[bool]:
        """Did any certified write in ``(after_seq, applied_seq]`` overlap
        ``deps``?  ``None`` means the window extends past the bounded
        history — the caller must treat it as a conflict."""
        if after_seq >= self.applied_seq:
            return False
        if after_seq < self._floor_seq:
            return None
        for footprint in reversed(self._history):
            if footprint.seq <= after_seq:
                break
            if footprint.overlaps(deps):
                return True
        return False

    def __repr__(self) -> str:
        return (f"WritesetInvalidator(applied_seq={self.applied_seq}, "
                f"history={len(self._history)})")
