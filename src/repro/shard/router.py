"""The shard-aware router: the client-facing tier in front of N
replication groups.

A :class:`ShardedCluster` owns the versioned :class:`ShardMap`, the
shard-map log, the 2PC coordinator and the (reshard-managed) forwarding
rules; a :class:`ShardedSession` resolves every statement against the
current map via the same ``repro.core.analysis`` footprints the
middleware itself uses and dispatches it:

* **single-shard** — straight to that group's ``MiddlewareSession``
  (its full pipeline: balancer, certification, group commit, cache);
  a transaction that only ever wrote on one shard also *commits*
  through that group alone — the fast path that skips 2PC entirely;
* **scatter-gather reads** — executed on every owning group and merged
  by ``repro.shard.merge`` (AVG rewrite, regrouping, ORDER BY re-sort,
  LIMIT/OFFSET re-application);
* **multi-shard writes** — multi-row INSERTs are split by key so each
  group receives exactly its rows; predicate writes run on every owning
  group; either way the enclosing (possibly implicit) transaction
  commits through :class:`~repro.shard.twopc.TwoPCCoordinator`;
* **global tables and DDL** — broadcast to every group (reads of a
  global table go to group 0).

Every statement gets a ``shard.route`` span tagged with the table, the
routing kind, the target groups and the map version; commits add
``shard.2pc.*`` spans.  The current map version is folded into each
group session's result-cache keys (``MiddlewareSession.cache_salt``), so
the instant a reshard flips the map, every cache entry filled under the
old placement becomes unreachable — a moved key can never be served
stale.

**HA composition** (docs/TOPOLOGY.md): a group entry may be an
:class:`~repro.ha.pair.HAPair` instead of a bare middleware.  The
cluster then keeps a per-group pair registry, repoints ``groups[i]`` at
the promoted standby on every switch, and the session layer re-resolves
its cached group handles — so a fenced-out or killed group middleware
surfaces as *retry-after-failover* (``core/resilience.py``'s
classification) instead of failing the scatter, and an autocommit
statement that provably changed nothing is transparently re-dispatched
to the new leader.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.admission import AdmissionGate
from ..core.analysis import StatementInfo, analyze
from ..core.errors import FencedOut, MiddlewareDown, UnsupportedStatementError
from ..core.middleware import MiddlewareSession, ReplicationMiddleware
from ..core.partitioning import _key_values_from_where, _literal_value
from ..obs.tracing import Tracer
from ..sqlengine import ast_nodes as ast
from ..sqlengine.executor import Result
from ..sqlengine.parser import parse_script
from .merge import plan_scatter
from .shardmap import ShardMap, ShardMapLog, Sharder, ShardSpec
from .twopc import TwoPCCoordinator


class ForwardingRule:
    """One in-flight key movement (installed by ``repro.shard.reshard``
    for the dual-write window): writes for matching keys go to *both*
    src and dst, reads stay at src, and unpinned scatter reads skip dst
    so the moving rows are counted exactly once until the flip."""

    __slots__ = ("table", "contains", "src", "dst")

    def __init__(self, table: str, contains, src: int, dst: int):
        self.table = table.lower()
        self.contains = contains
        self.src = src
        self.dst = dst

    def matches(self, table: str, value: Any) -> bool:
        return table == self.table and self.contains(value)


# -- compiled key plans ------------------------------------------------------
#
# ``_key_values_from_where`` walks the WHERE tree on every call deciding
# the same AST-shape questions each time.  These compilers make those
# decisions once per (statement, spec) and return a closure over the
# parameter slots, mirroring the interpreter's semantics exactly
# (including the "a NULL key value means unpinned" rule).  ``None``
# means "this statement never pins" — a constant the interpreter could
# only rediscover per call.

KeyPlan = Optional[Callable[[List[Any]], Optional[List[Any]]]]

#: "no compiled plan — interpret per call"; distinct from ``None``,
#: which is a compiled constant meaning "this statement never pins"
_NO_PLAN = object()


def _compile_key_plan(statement: ast.Statement, spec: ShardSpec) -> KeyPlan:
    if isinstance(statement, ast.InsertStatement):
        return _compile_insert_plan(statement, spec)
    return _compile_where_plan(getattr(statement, "where", None),
                               spec.key_column)


def _compile_insert_plan(statement: ast.InsertStatement,
                         spec: ShardSpec) -> KeyPlan:
    if statement.columns is None or statement.rows is None:
        raise UnsupportedStatementError(
            f"INSERT into sharded table {spec.table!r} must list its "
            f"columns including the shard key {spec.key_column!r}")
    lowered = [c.lower() for c in statement.columns]
    if spec.key_column not in lowered:
        raise UnsupportedStatementError(
            f"INSERT into sharded table {spec.table!r} without the "
            f"shard key {spec.key_column!r}: the row cannot be placed")
    key_index = lowered.index(spec.key_column)
    getters: List[Tuple[str, Any]] = []
    for row in statement.rows:
        expr = row[key_index]
        if isinstance(expr, ast.Literal):
            getters.append(("lit", expr.value))
        elif isinstance(expr, ast.Param):
            getters.append(("param", expr.index))
        else:
            raise UnsupportedStatementError(
                "INSERT shard-key values must be literals or bound "
                "parameters")

    def plan(params: List[Any]) -> Optional[List[Any]]:
        values = []
        for kind, slot in getters:
            if kind == "lit":
                value = slot
            else:
                value = params[slot] if slot < len(params) else None
                if value is None:
                    raise UnsupportedStatementError(
                        "INSERT shard-key values must be literals or "
                        "bound parameters")
            values.append(value)
        return values

    return plan


def _compile_where_plan(where, key_column: str) -> KeyPlan:
    if where is None:
        return None
    if isinstance(where, ast.BinaryOp):
        if where.op == "AND":
            left = _compile_where_plan(where.left, key_column)
            right = _compile_where_plan(where.right, key_column)
            if left is None:
                return right
            if right is None:
                return left

            def both(params, left=left, right=right):
                left_values = left(params)
                right_values = right(params)
                if left_values is not None and right_values is not None:
                    pinned = [v for v in left_values if v in right_values]
                    return pinned or left_values
                return (left_values if left_values is not None
                        else right_values)

            return both
        if where.op == "OR":
            left = _compile_where_plan(where.left, key_column)
            right = _compile_where_plan(where.right, key_column)
            if left is None or right is None:
                return None

            def either(params, left=left, right=right):
                left_values = left(params)
                right_values = right(params)
                if left_values is None or right_values is None:
                    return None
                return left_values + right_values

            return either
        if where.op == "=":
            column = literal = None
            if isinstance(where.left, ast.ColumnRef):
                column, literal = where.left, where.right
            elif isinstance(where.right, ast.ColumnRef):
                column, literal = where.right, where.left
            if column is not None and column.name.lower() == key_column:
                if isinstance(literal, ast.Literal):
                    if literal.value is None:
                        return None
                    value = literal.value
                    return lambda params, value=value: [value]
                if isinstance(literal, ast.Param):
                    index = literal.index

                    def pin(params, index=index):
                        value = (params[index] if index < len(params)
                                 else None)
                        return None if value is None else [value]

                    return pin
            return None
        return None
    if isinstance(where, ast.InList) and not where.negated \
            and isinstance(where.expr, ast.ColumnRef) \
            and where.expr.name.lower() == key_column and where.items:
        entries: List[Tuple[str, Any]] = []
        for item in where.items:
            if isinstance(item, ast.Literal):
                if item.value is None:
                    return None
                entries.append(("lit", item.value))
            elif isinstance(item, ast.Param):
                entries.append(("param", item.index))
            else:
                return None

        def inlist(params, entries=tuple(entries)):
            values = []
            for kind, slot in entries:
                if kind == "lit":
                    values.append(slot)
                else:
                    value = params[slot] if slot < len(params) else None
                    if value is None:
                        return None
                    values.append(value)
            return values

        return inlist
    return None


class ShardedCluster:
    """The shard tier: N replication groups behind one versioned map.

    Each entry in ``groups`` is either a bare
    :class:`~repro.core.middleware.ReplicationMiddleware` or an
    :class:`~repro.ha.pair.HAPair` fronting one (duck-typed on
    ``active``/``kill_active`` so this module never imports
    ``repro.ha``).  For paired groups the router tracks promotions:
    ``self.groups[i]`` always points at the group's current leader."""

    def __init__(self, groups: Sequence,
                 shard_map: Optional[ShardMap] = None,
                 name: str = "sharded",
                 admission: Optional[AdmissionGate] = None,
                 tracing: bool = True):
        if not groups:
            raise ValueError("a sharded cluster needs at least one group")
        self.name = name
        self.pairs: List[Optional[Any]] = []
        self.groups: List[ReplicationMiddleware] = []
        for entry in groups:
            pair = entry if hasattr(entry, "kill_active") \
                and hasattr(entry, "active") else None
            self.pairs.append(pair)
            self.groups.append(pair.active if pair is not None else entry)
        for group in self.groups:
            if group.config.replication != "writeset":
                raise ValueError(
                    f"group {group.name!r} uses "
                    f"{group.config.replication!r} replication; the shard "
                    "tier's 2PC prepares against per-group writeset "
                    "certification and requires replication='writeset'")
        self.map = shard_map or ShardMap(len(self.groups))
        if self.map.shards != len(self.groups):
            raise ValueError(
                f"map has {self.map.shards} shards but {len(self.groups)} "
                "groups were provided")
        self.map_log = ShardMapLog()
        self.map_log.append("map_install", version=self.map.version,
                            shards=self.map.shards)
        self.tracer = Tracer(clock=self.groups[0].monitor.peek,
                             enabled=tracing)
        self.twopc = TwoPCCoordinator(self)
        self.admission = admission
        self.forwarding: List[ForwardingRule] = []
        self.sessions: List["ShardedSession"] = []
        self._session_counter = 0
        self.route_caching = True
        self._route_plans: Dict[int, tuple] = {}
        self.stats: Dict[str, int] = {
            "single_shard": 0, "scatter_reads": 0, "multi_shard_writes": 0,
            "broadcast": 0, "single_shard_commits": 0, "twopc_commits": 0,
            "admission_rejected": 0, "group_promotions": 0,
            "failover_reroutes": 0,
        }
        for index, pair in enumerate(self.pairs):
            if pair is not None:
                self._watch_pair(index, pair)

    # -- HA pair registry -----------------------------------------------

    def _watch_pair(self, index: int, pair) -> None:
        def switched(new_leader, index=index):
            self.groups[index] = new_leader
            self.stats["group_promotions"] += 1
        pair.on_switch(switched)

    def attach_pair(self, index: int, pair) -> None:
        """Register (or replace, after an operator rebuilt the standby
        behind a promoted leader) the HA pair fronting group ``index``
        and repoint the group handle at its current active leader."""
        self.pairs[index] = pair
        self.groups[index] = pair.active
        self._watch_pair(index, pair)

    def group_alive(self, index: int) -> bool:
        """Can group ``index``'s current handle take a statement now?"""
        group = self.groups[index]
        return not group.failed and not group.standby_mode

    # -- map management -------------------------------------------------

    def register_table(self, table: str, key_column: str,
                       sharder: Sharder) -> ShardSpec:
        spec = self.map.register_table(table, key_column, sharder)
        self.map_log.append("table_registered", table=spec.table,
                            key_column=spec.key_column,
                            sharder=sharder.kind,
                            version=self.map.version)
        return spec

    def install_map(self, new_map: ShardMap) -> None:
        """The atomic flip: one assignment changes what every subsequent
        statement routes by *and* salts every cache key."""
        if new_map.version <= self.map.version:
            raise ValueError(
                f"map version must advance (have {self.map.version}, "
                f"got {new_map.version})")
        if new_map.shards != len(self.groups):
            raise ValueError("new map shard count must match the groups")
        self.map = new_map
        self.map_log.append("map_install", version=new_map.version,
                            shards=new_map.shards)

    def rules_for(self, table: str) -> List[ForwardingRule]:
        return [r for r in self.forwarding if r.table == table]

    # -- route-plan memo -------------------------------------------------

    def _route_plan(self, statement: ast.Statement) -> tuple:
        """``(statement, info, map_version, spec, key_plan)`` memoized by
        statement identity — the open-loop drivers replay a small set of
        parse-cached templates, so the analysis walk, the spec lookup and
        the WHERE-shape inspection are all loop-invariant; only the bound
        parameters change per call.  Each entry holds a strong reference
        to the statement so its id cannot be recycled while cached, and
        entries self-invalidate when a reshard advances the map version
        (the key plan bakes in the spec)."""
        key = id(statement)
        plan = self._route_plans.get(key)
        if plan is not None and plan[0] is statement \
                and plan[2] == self.map.version:
            return plan
        info = analyze(statement)
        spec = None
        for table in info.all_tables():
            spec = self.map.spec_of(table)
            if spec is not None:
                break
        key_plan = None
        if spec is not None and not info.is_ddl:
            key_plan = _compile_key_plan(statement, spec)
        plan = (statement, info, self.map.version, spec, key_plan)
        if len(self._route_plans) >= 4096:
            self._route_plans.clear()
        self._route_plans[key] = plan
        return plan

    # -- sessions / cluster plumbing ------------------------------------

    def connect(self, user: str = "admin", password: str = "",
                database: Optional[str] = None) -> "ShardedSession":
        self._session_counter += 1
        session = ShardedSession(self, self._session_counter, user,
                                 password, database)
        self.sessions.append(session)
        return session

    def open_write_transactions(self) -> int:
        """In-flight transactions that have written somewhere — the
        pre-flip epoch a reshard must drain before moving ownership."""
        return sum(1 for s in self.sessions
                   if not s.closed and s.in_transaction
                   and s._txn_write_groups)

    def pump(self) -> int:
        return sum(g.pump() for g in self.groups)

    def drain_all(self) -> int:
        return sum(g.drain_all() for g in self.groups)

    def check_convergence(self) -> bool:
        return all(g.check_convergence() for g in self.groups)


class ShardedSession:
    """A client session over the shard tier."""

    def __init__(self, cluster: ShardedCluster, session_id: int, user: str,
                 password: str, database: Optional[str]):
        self.cluster = cluster
        self.id = session_id
        self.user = user
        self.password = password
        self.database = database
        self.closed = False
        # exactly-once identity, propagated to every group session so
        # each group's commit ledger can dedup a post-failover replay
        self.client_id: Optional[str] = None
        self.client_txn_id: Optional[str] = None
        self._sessions: Dict[int, MiddlewareSession] = {}
        self.in_transaction = False
        self._txn_groups: Set[int] = set()
        self._txn_write_groups: Set[int] = set()
        # Routing trace of the last statement, consumed by the timed
        # driver to charge simulated costs on the groups that did work.
        self.last_route: Optional[Dict[str, Any]] = None

    # -- public API -----------------------------------------------------

    def execute(self, sql: str,
                params: Optional[List[Any]] = None) -> Result:
        self._check_open()
        statements = parse_script(sql)
        ticket = self._admit(statements)
        ok = False
        try:
            result = Result()
            for statement in statements:
                result = self._execute_one(statement, sql,
                                           list(params or []))
            ok = True
            return result
        finally:
            if ticket is not None:
                if ok and ticket.kind == "commit":
                    ticket.ack()
                ticket.finish(ok)

    def execute_one_parsed(self, statement: ast.Statement, sql_text: str,
                           params: Optional[List[Any]] = None) -> Result:
        """Execute one pre-parsed statement (timed-driver fast path —
        admission, when used, is held by the driver)."""
        self._check_open()
        return self._execute_one(statement, sql_text, list(params or []))

    def begin(self) -> None:
        self._execute_one(ast.BeginStatement(), "BEGIN", [])

    def commit(self) -> None:
        self._execute_one(ast.CommitStatement(), "COMMIT", [])

    def rollback(self) -> None:
        self._execute_one(ast.RollbackStatement(), "ROLLBACK", [])

    def close(self) -> None:
        for session in self._sessions.values():
            session.close()
        self.closed = True

    def __enter__(self) -> "ShardedSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- admission ------------------------------------------------------

    def _admit(self, statements):
        gate = self.cluster.admission
        if gate is None:
            return None
        is_write = any(
            not isinstance(s, (ast.SelectStatement, ast.BeginStatement,
                               ast.RollbackStatement))
            for s in statements)
        try:
            return gate.admit("commit" if is_write else "read")
        except Exception:
            self.cluster.stats["admission_rejected"] += 1
            raise

    # -- per-group sessions ---------------------------------------------

    def group_session(self, index: int) -> MiddlewareSession:
        cluster = self.cluster
        session = self._sessions.get(index)
        if session is not None and (
                session.closed
                or session.middleware is not cluster.groups[index]):
            # the group failed over (or the handle was fenced out)
            # since this session was opened: drop it and re-resolve
            # through the pair's virtual IP.  If a transaction died with
            # the old instance, the caller must replay the whole
            # transaction — surface that as retry-after-failover.
            stale_txn = (index in self._txn_groups
                         or index in self._txn_write_groups)
            if not session.closed:
                try:
                    session.close()
                except Exception:  # noqa: BLE001 — old instance is gone
                    pass
            del self._sessions[index]
            session = None
            if stale_txn:
                exc = MiddlewareDown(
                    f"group {index} middleware failed over "
                    "mid-transaction")
                exc.retry_after_failover = True
                raise exc
        if session is None:
            session = self._connect_group(index)
            self._sessions[index] = session
        # the map version salts this group's result-cache keys, so a
        # reshard flip instantly orphans entries filled under the old
        # placement (tentpole: no stale reads of moved keys)
        session.cache_salt = cluster.map.version
        if self.client_txn_id is not None:
            session.client_txn_id = self.client_txn_id
        return session

    def _connect_group(self, index: int) -> MiddlewareSession:
        cluster = self.cluster
        pair = cluster.pairs[index]
        if pair is not None:
            return pair.connect(self.user, self.password, self.database,
                                client_id=self.client_id)
        session = cluster.groups[index].connect(
            self.user, self.password, self.database)
        if self.client_id is not None:
            session.client_id = self.client_id
        return session

    def _txn_session(self, index: int) -> MiddlewareSession:
        session = self.group_session(index)
        if self.in_transaction:
            if not session.in_transaction:
                session.begin()
            self._txn_groups.add(index)
        return session

    def _execute_on(self, index: int, statement: ast.Statement,
                    sql_text: str, params: List[Any]) -> Result:
        """Dispatch one statement to group ``index``; when the group's
        active middleware died or was fenced underneath an autocommit
        statement, re-resolve to the promoted leader and retry once.

        Safe because ``MiddlewareSession._dispatch_one`` checks
        liveness/fencing *before* any state change: a
        ``MiddlewareDown``/``FencedOut`` from an autocommit statement
        proves nothing durable happened, so one re-dispatch cannot
        double-apply.  Mid-transaction failures are never retried here —
        they surface tagged ``retry_after_failover`` so the client
        replays the whole transaction (exactly-once via the group's
        commit ledger)."""
        try:
            return self._txn_session(index).execute_one_parsed(
                statement, sql_text, params)
        except MiddlewareDown as exc:
            if not self._failover_retryable(index, exc):
                raise
            self.cluster.stats["failover_reroutes"] += 1
            try:
                return self._txn_session(index).execute_one_parsed(
                    statement, sql_text, params)
            except MiddlewareDown as again:
                # the retry hit another dead/fenced instance — keep the
                # failover classification on what the client sees
                self._failover_retryable(index, again)
                raise

    def _failover_retryable(self, index: int, exc: MiddlewareDown) -> bool:
        """Tag every failover-shaped error ``retry_after_failover`` (the
        ``core/resilience.py`` classification) and decide whether this
        statement may be transparently re-dispatched right now: only
        when no transaction state died with the old instance and the
        group handle already points at a live leader."""
        cluster = self.cluster
        if isinstance(exc, FencedOut) or cluster.pairs[index] is not None:
            exc.retry_after_failover = True
        if self.in_transaction:
            return False
        stale = self._sessions.get(index)
        if stale is not None and not stale.closed and stale.in_transaction:
            return False
        if stale is not None:
            if not stale.closed:
                try:
                    stale.close()
                except Exception:  # noqa: BLE001 — old instance is gone
                    pass
            self._sessions.pop(index, None)
        return cluster.group_alive(index)

    # -- statement execution --------------------------------------------

    def _execute_one(self, statement: ast.Statement, sql_text: str,
                     params: List[Any]) -> Result:
        if isinstance(statement, ast.BeginStatement):
            return self._begin()
        if isinstance(statement, ast.CommitStatement):
            return self._commit()
        if isinstance(statement, ast.RollbackStatement):
            return self._rollback()

        cluster = self.cluster
        if cluster.route_caching:
            _stmt, info, _version, spec, key_plan = \
                cluster._route_plan(statement)
        else:
            info = analyze(statement)
            _table, spec = self._sharded_table_of(info)
            key_plan = _NO_PLAN
        span = cluster.tracer.start_span(
            "shard.route", session=self.id, sql=sql_text[:80],
            map_version=cluster.map.version)
        try:
            if info.is_ddl or spec is None:
                return self._dispatch_global(statement, sql_text, params,
                                             info, span)
            span.set_tag("table", spec.table)
            targets = self._resolve_targets(statement, spec, params, info,
                                            key_plan)
            span.set_tag("targets", len(targets))
            if len(targets) == 1:
                span.set_tag("kind", "single")
                cluster.stats["single_shard"] += 1
                target = next(iter(targets))
                self._note_route("single", (target,), info.is_write)
                result = self._execute_on(target, statement, sql_text,
                                          params)
                if info.is_write and self.in_transaction:
                    self._txn_write_groups.add(target)
                return result
            if info.is_write:
                span.set_tag("kind", "multi_write")
                return self._dispatch_multi_write(statement, sql_text,
                                                  params, info, spec,
                                                  sorted(targets))
            span.set_tag("kind", "scatter")
            return self._dispatch_scatter(statement, sql_text, params,
                                          sorted(targets))
        finally:
            span.end()

    def _sharded_table_of(self, info: StatementInfo):
        for table in info.all_tables():
            spec = self.cluster.map.spec_of(table)
            if spec is not None:
                return spec.table, spec
        return None, None

    # -- target resolution ----------------------------------------------

    def _resolve_targets(self, statement: ast.Statement, spec: ShardSpec,
                         params: List[Any], info: StatementInfo,
                         key_plan=_NO_PLAN) -> Set[int]:
        cluster = self.cluster
        rules = cluster.rules_for(spec.table)
        if key_plan is _NO_PLAN:
            # uncompiled path: interpret the WHERE/VALUES shape per call
            if isinstance(statement, ast.InsertStatement):
                keys = self._insert_key_values(statement, spec, params)
            else:
                where = getattr(statement, "where", None)
                keys = _key_values_from_where(where, spec.key_column,
                                              params)
        else:
            keys = key_plan(params) if key_plan is not None else None
        if keys is None:
            # unpinned: every owning group.  Reads skip a dual-write
            # destination (it holds the moving rows too — counting them
            # there *and* at the still-owning src would double them).
            targets = set(range(len(cluster.groups)))
            if not info.is_write:
                for rule in rules:
                    targets.discard(rule.dst)
            return targets
        targets: Set[int] = set()
        for value in keys:
            owner = spec.shard_for(value)
            targets.add(owner)
            if info.is_write:
                for rule in rules:
                    if rule.matches(spec.table, value):
                        targets.add(rule.dst)
                        cluster.stats.setdefault("dual_writes", 0)
                        cluster.stats["dual_writes"] += 1
        return targets

    def _insert_key_values(self, statement: ast.InsertStatement,
                           spec: ShardSpec,
                           params: List[Any]) -> Optional[List[Any]]:
        if statement.columns is None or statement.rows is None:
            raise UnsupportedStatementError(
                f"INSERT into sharded table {spec.table!r} must list its "
                f"columns including the shard key {spec.key_column!r}")
        lowered = [c.lower() for c in statement.columns]
        if spec.key_column not in lowered:
            raise UnsupportedStatementError(
                f"INSERT into sharded table {spec.table!r} without the "
                f"shard key {spec.key_column!r}: the row cannot be placed")
        key_index = lowered.index(spec.key_column)
        values = []
        for row in statement.rows:
            expr = row[key_index]
            value = _literal_value(expr, params)
            if value is None and not isinstance(expr, ast.Literal):
                raise UnsupportedStatementError(
                    "INSERT shard-key values must be literals or bound "
                    "parameters")
            values.append(value)
        return values

    # -- dispatch paths --------------------------------------------------

    def _note_route(self, kind: str, targets, is_write: bool,
                    commit=None) -> None:
        self.last_route = {"kind": kind, "targets": tuple(targets),
                           "write": is_write, "commit": commit}

    def _dispatch_global(self, statement: ast.Statement, sql_text: str,
                         params: List[Any], info: StatementInfo,
                         span) -> Result:
        cluster = self.cluster
        if info.is_write or info.is_ddl:
            span.set_tag("kind", "broadcast")
            cluster.stats["broadcast"] += 1
            every = tuple(range(len(cluster.groups)))
            self._note_route("broadcast", every, True)
            result = Result()
            for index in every:
                result = self._execute_on(index, statement, sql_text,
                                          params)
                if self.in_transaction:
                    self._txn_write_groups.add(index)
            return result
        span.set_tag("kind", "global_read")
        self._note_route("global_read", (0,), False)
        return self._execute_on(0, statement, sql_text, params)

    def _dispatch_scatter(self, statement: ast.Statement, sql_text: str,
                          params: List[Any],
                          targets: Sequence[int]) -> Result:
        cluster = self.cluster
        cluster.stats["scatter_reads"] += 1
        self._note_route("scatter", targets, False)
        plan = plan_scatter(statement, sql_text, params)
        results = [
            self._execute_on(index, plan.statement, plan.sql_text, params)
            for index in targets
        ]
        return plan.merge(results)

    def _dispatch_multi_write(self, statement: ast.Statement,
                              sql_text: str, params: List[Any],
                              info: StatementInfo, spec: ShardSpec,
                              targets: Sequence[int]) -> Result:
        cluster = self.cluster
        cluster.stats["multi_shard_writes"] += 1
        implicit = not self.in_transaction
        if implicit:
            self._begin()
        try:
            if isinstance(statement, ast.InsertStatement):
                result = self._split_insert(statement, sql_text, params,
                                            spec)
            else:
                # predicate write: each group touches only its own rows
                result = Result()
                rowcount = 0
                for index in targets:
                    partial = self._execute_on(index, statement, sql_text,
                                               params)
                    self._txn_write_groups.add(index)
                    rowcount += partial.rowcount
                result = Result(rowcount=rowcount)
            self._note_route("multi_write", targets, True)
            if implicit:
                self._commit()
            return result
        except Exception:
            if implicit and self.in_transaction:
                self._rollback()
            raise

    def _split_insert(self, statement: ast.InsertStatement, sql_text: str,
                      params: List[Any], spec: ShardSpec) -> Result:
        """Per-shard row subsets: each group gets exactly the rows it
        owns (plus dual-write copies during a reshard window)."""
        lowered = [c.lower() for c in statement.columns]
        key_index = lowered.index(spec.key_column)
        rules = self.cluster.rules_for(spec.table)
        by_group: Dict[int, list] = {}
        for row in statement.rows:
            value = _literal_value(row[key_index], params)
            owner = spec.shard_for(value)
            by_group.setdefault(owner, []).append(row)
            for rule in rules:
                if rule.matches(spec.table, value):
                    by_group.setdefault(rule.dst, []).append(row)
        rowcount = 0
        for index, rows in sorted(by_group.items()):
            shard_statement = ast.InsertStatement(
                statement.table, statement.columns, rows=rows)
            partial = self._execute_on(
                index, shard_statement, f"{sql_text} /*shard:{index}*/",
                params)
            self._txn_write_groups.add(index)
            rowcount += partial.rowcount
        return Result(rowcount=rowcount, lastrowid=None)

    # -- transaction control ---------------------------------------------

    def _begin(self) -> Result:
        if self.in_transaction:
            raise UnsupportedStatementError(
                "transaction already in progress")
        self.in_transaction = True
        self._txn_groups = set()
        self._txn_write_groups = set()
        self._note_route("begin", (), False)
        return Result()

    def _commit(self) -> Result:
        if not self.in_transaction:
            return Result()
        cluster = self.cluster
        write_groups = set(self._txn_write_groups)
        read_groups = self._txn_groups - write_groups
        mode = "fast" if len(write_groups) <= 1 else "2pc"
        self._note_route("commit", sorted(write_groups), True,
                         commit={"mode": mode,
                                 "groups": sorted(write_groups)})
        try:
            for index in sorted(read_groups):
                self._sessions[index].commit()
            if mode == "fast":
                # single-shard fast path: the one group's ordinary
                # certify/group-commit pipeline — no 2PC anywhere
                for index in sorted(write_groups):
                    self._sessions[index].commit()
                cluster.stats["single_shard_commits"] += 1
            else:
                span = cluster.tracer.start_span(
                    "shard.2pc", session=self.id,
                    participants=len(write_groups),
                    map_version=cluster.map.version)
                try:
                    cluster.twopc.commit(self, write_groups,
                                         parent_span=span)
                finally:
                    span.end()
                cluster.stats["twopc_commits"] += 1
        except MiddlewareDown as exc:
            # the commit died with a group's middleware: the client must
            # replay the whole transaction against the promoted leader;
            # each group's commit ledger makes that replay exactly-once
            for index in write_groups | read_groups:
                if isinstance(exc, FencedOut) \
                        or cluster.pairs[index] is not None:
                    exc.retry_after_failover = True
                    break
            self._abort_open_groups()
            raise
        except Exception:
            self._abort_open_groups()
            raise
        finally:
            self._reset_txn()
        return Result()

    def _rollback(self) -> Result:
        if not self.in_transaction:
            return Result()
        self._note_route("rollback", sorted(self._txn_groups), False)
        self._abort_open_groups()
        self._reset_txn()
        return Result()

    def _abort_open_groups(self) -> None:
        for session in list(self._sessions.values()):
            if session.closed or not session.in_transaction:
                continue
            try:
                session.rollback()
            except MiddlewareDown:
                # the instance died holding this transaction; its locks
                # and staged state died with it — nothing to roll back
                pass

    def _reset_txn(self) -> None:
        self.in_transaction = False
        self._txn_groups = set()
        self._txn_write_groups = set()

    def _check_open(self) -> None:
        if self.closed:
            raise MiddlewareDown("session is closed")
