"""The shard-aware router: the client-facing tier in front of N
replication groups.

A :class:`ShardedCluster` owns the versioned :class:`ShardMap`, the
shard-map log, the 2PC coordinator and the (reshard-managed) forwarding
rules; a :class:`ShardedSession` resolves every statement against the
current map via the same ``repro.core.analysis`` footprints the
middleware itself uses and dispatches it:

* **single-shard** — straight to that group's ``MiddlewareSession``
  (its full pipeline: balancer, certification, group commit, cache);
  a transaction that only ever wrote on one shard also *commits*
  through that group alone — the fast path that skips 2PC entirely;
* **scatter-gather reads** — executed on every owning group and merged
  by ``repro.shard.merge`` (AVG rewrite, regrouping, ORDER BY re-sort,
  LIMIT/OFFSET re-application);
* **multi-shard writes** — multi-row INSERTs are split by key so each
  group receives exactly its rows; predicate writes run on every owning
  group; either way the enclosing (possibly implicit) transaction
  commits through :class:`~repro.shard.twopc.TwoPCCoordinator`;
* **global tables and DDL** — broadcast to every group (reads of a
  global table go to group 0).

Every statement gets a ``shard.route`` span tagged with the table, the
routing kind, the target groups and the map version; commits add
``shard.2pc.*`` spans.  The current map version is folded into each
group session's result-cache keys (``MiddlewareSession.cache_salt``), so
the instant a reshard flips the map, every cache entry filled under the
old placement becomes unreachable — a moved key can never be served
stale.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set

from ..core.admission import AdmissionGate
from ..core.analysis import StatementInfo, analyze
from ..core.errors import MiddlewareDown, UnsupportedStatementError
from ..core.middleware import MiddlewareSession, ReplicationMiddleware
from ..core.partitioning import _key_values_from_where, _literal_value
from ..obs.tracing import Tracer
from ..sqlengine import ast_nodes as ast
from ..sqlengine.executor import Result
from ..sqlengine.parser import parse_script
from .merge import plan_scatter
from .shardmap import ShardMap, ShardMapLog, Sharder, ShardSpec
from .twopc import TwoPCCoordinator


class ForwardingRule:
    """One in-flight key movement (installed by ``repro.shard.reshard``
    for the dual-write window): writes for matching keys go to *both*
    src and dst, reads stay at src, and unpinned scatter reads skip dst
    so the moving rows are counted exactly once until the flip."""

    __slots__ = ("table", "contains", "src", "dst")

    def __init__(self, table: str, contains, src: int, dst: int):
        self.table = table.lower()
        self.contains = contains
        self.src = src
        self.dst = dst

    def matches(self, table: str, value: Any) -> bool:
        return table == self.table and self.contains(value)


class ShardedCluster:
    """The shard tier: N replication groups behind one versioned map."""

    def __init__(self, groups: Sequence[ReplicationMiddleware],
                 shard_map: Optional[ShardMap] = None,
                 name: str = "sharded",
                 admission: Optional[AdmissionGate] = None,
                 tracing: bool = True):
        if not groups:
            raise ValueError("a sharded cluster needs at least one group")
        for group in groups:
            if group.config.replication != "writeset":
                raise ValueError(
                    f"group {group.name!r} uses "
                    f"{group.config.replication!r} replication; the shard "
                    "tier's 2PC prepares against per-group writeset "
                    "certification and requires replication='writeset'")
        self.name = name
        self.groups: List[ReplicationMiddleware] = list(groups)
        self.map = shard_map or ShardMap(len(groups))
        if self.map.shards != len(groups):
            raise ValueError(
                f"map has {self.map.shards} shards but {len(groups)} "
                "groups were provided")
        self.map_log = ShardMapLog()
        self.map_log.append("map_install", version=self.map.version,
                            shards=self.map.shards)
        self.tracer = Tracer(clock=groups[0].monitor.peek, enabled=tracing)
        self.twopc = TwoPCCoordinator(self)
        self.admission = admission
        self.forwarding: List[ForwardingRule] = []
        self.sessions: List["ShardedSession"] = []
        self._session_counter = 0
        self.stats: Dict[str, int] = {
            "single_shard": 0, "scatter_reads": 0, "multi_shard_writes": 0,
            "broadcast": 0, "single_shard_commits": 0, "twopc_commits": 0,
            "admission_rejected": 0,
        }

    # -- map management -------------------------------------------------

    def register_table(self, table: str, key_column: str,
                       sharder: Sharder) -> ShardSpec:
        spec = self.map.register_table(table, key_column, sharder)
        self.map_log.append("table_registered", table=spec.table,
                            key_column=spec.key_column,
                            sharder=sharder.kind,
                            version=self.map.version)
        return spec

    def install_map(self, new_map: ShardMap) -> None:
        """The atomic flip: one assignment changes what every subsequent
        statement routes by *and* salts every cache key."""
        if new_map.version <= self.map.version:
            raise ValueError(
                f"map version must advance (have {self.map.version}, "
                f"got {new_map.version})")
        if new_map.shards != len(self.groups):
            raise ValueError("new map shard count must match the groups")
        self.map = new_map
        self.map_log.append("map_install", version=new_map.version,
                            shards=new_map.shards)

    def rules_for(self, table: str) -> List[ForwardingRule]:
        return [r for r in self.forwarding if r.table == table]

    # -- sessions / cluster plumbing ------------------------------------

    def connect(self, user: str = "admin", password: str = "",
                database: Optional[str] = None) -> "ShardedSession":
        self._session_counter += 1
        session = ShardedSession(self, self._session_counter, user,
                                 password, database)
        self.sessions.append(session)
        return session

    def open_write_transactions(self) -> int:
        """In-flight transactions that have written somewhere — the
        pre-flip epoch a reshard must drain before moving ownership."""
        return sum(1 for s in self.sessions
                   if not s.closed and s.in_transaction
                   and s._txn_write_groups)

    def pump(self) -> int:
        return sum(g.pump() for g in self.groups)

    def drain_all(self) -> int:
        return sum(g.drain_all() for g in self.groups)

    def check_convergence(self) -> bool:
        return all(g.check_convergence() for g in self.groups)


class ShardedSession:
    """A client session over the shard tier."""

    def __init__(self, cluster: ShardedCluster, session_id: int, user: str,
                 password: str, database: Optional[str]):
        self.cluster = cluster
        self.id = session_id
        self.user = user
        self.password = password
        self.database = database
        self.closed = False
        self._sessions: Dict[int, MiddlewareSession] = {}
        self.in_transaction = False
        self._txn_groups: Set[int] = set()
        self._txn_write_groups: Set[int] = set()
        # Routing trace of the last statement, consumed by the timed
        # driver to charge simulated costs on the groups that did work.
        self.last_route: Optional[Dict[str, Any]] = None

    # -- public API -----------------------------------------------------

    def execute(self, sql: str,
                params: Optional[List[Any]] = None) -> Result:
        self._check_open()
        statements = parse_script(sql)
        ticket = self._admit(statements)
        ok = False
        try:
            result = Result()
            for statement in statements:
                result = self._execute_one(statement, sql,
                                           list(params or []))
            ok = True
            return result
        finally:
            if ticket is not None:
                if ok and ticket.kind == "commit":
                    ticket.ack()
                ticket.finish(ok)

    def execute_one_parsed(self, statement: ast.Statement, sql_text: str,
                           params: Optional[List[Any]] = None) -> Result:
        """Execute one pre-parsed statement (timed-driver fast path —
        admission, when used, is held by the driver)."""
        self._check_open()
        return self._execute_one(statement, sql_text, list(params or []))

    def begin(self) -> None:
        self._execute_one(ast.BeginStatement(), "BEGIN", [])

    def commit(self) -> None:
        self._execute_one(ast.CommitStatement(), "COMMIT", [])

    def rollback(self) -> None:
        self._execute_one(ast.RollbackStatement(), "ROLLBACK", [])

    def close(self) -> None:
        for session in self._sessions.values():
            session.close()
        self.closed = True

    def __enter__(self) -> "ShardedSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- admission ------------------------------------------------------

    def _admit(self, statements):
        gate = self.cluster.admission
        if gate is None:
            return None
        is_write = any(
            not isinstance(s, (ast.SelectStatement, ast.BeginStatement,
                               ast.RollbackStatement))
            for s in statements)
        try:
            return gate.admit("commit" if is_write else "read")
        except Exception:
            self.cluster.stats["admission_rejected"] += 1
            raise

    # -- per-group sessions ---------------------------------------------

    def group_session(self, index: int) -> MiddlewareSession:
        session = self._sessions.get(index)
        if session is None:
            session = self.cluster.groups[index].connect(
                self.user, self.password, self.database)
            self._sessions[index] = session
        # the map version salts this group's result-cache keys, so a
        # reshard flip instantly orphans entries filled under the old
        # placement (tentpole: no stale reads of moved keys)
        session.cache_salt = self.cluster.map.version
        return session

    def _txn_session(self, index: int) -> MiddlewareSession:
        session = self.group_session(index)
        if self.in_transaction:
            if not session.in_transaction:
                session.begin()
            self._txn_groups.add(index)
        return session

    # -- statement execution --------------------------------------------

    def _execute_one(self, statement: ast.Statement, sql_text: str,
                     params: List[Any]) -> Result:
        if isinstance(statement, ast.BeginStatement):
            return self._begin()
        if isinstance(statement, ast.CommitStatement):
            return self._commit()
        if isinstance(statement, ast.RollbackStatement):
            return self._rollback()

        cluster = self.cluster
        info = analyze(statement)
        span = cluster.tracer.start_span(
            "shard.route", session=self.id, sql=sql_text[:80],
            map_version=cluster.map.version)
        try:
            table, spec = self._sharded_table_of(info)
            if info.is_ddl or spec is None:
                return self._dispatch_global(statement, sql_text, params,
                                             info, span)
            span.set_tag("table", spec.table)
            targets = self._resolve_targets(statement, spec, params, info)
            span.set_tag("targets", len(targets))
            if len(targets) == 1:
                span.set_tag("kind", "single")
                cluster.stats["single_shard"] += 1
                target = next(iter(targets))
                self._note_route("single", (target,), info.is_write)
                result = self._txn_session(target).execute_one_parsed(
                    statement, sql_text, params)
                if info.is_write and self.in_transaction:
                    self._txn_write_groups.add(target)
                return result
            if info.is_write:
                span.set_tag("kind", "multi_write")
                return self._dispatch_multi_write(statement, sql_text,
                                                  params, info, spec,
                                                  sorted(targets))
            span.set_tag("kind", "scatter")
            return self._dispatch_scatter(statement, sql_text, params,
                                          sorted(targets))
        finally:
            span.end()

    def _sharded_table_of(self, info: StatementInfo):
        for table in info.all_tables():
            spec = self.cluster.map.spec_of(table)
            if spec is not None:
                return spec.table, spec
        return None, None

    # -- target resolution ----------------------------------------------

    def _resolve_targets(self, statement: ast.Statement, spec: ShardSpec,
                         params: List[Any],
                         info: StatementInfo) -> Set[int]:
        cluster = self.cluster
        rules = cluster.rules_for(spec.table)
        if isinstance(statement, ast.InsertStatement):
            keys = self._insert_key_values(statement, spec, params)
        else:
            where = getattr(statement, "where", None)
            keys = _key_values_from_where(where, spec.key_column, params)
        if keys is None:
            # unpinned: every owning group.  Reads skip a dual-write
            # destination (it holds the moving rows too — counting them
            # there *and* at the still-owning src would double them).
            targets = set(range(len(cluster.groups)))
            if not info.is_write:
                for rule in rules:
                    targets.discard(rule.dst)
            return targets
        targets: Set[int] = set()
        for value in keys:
            owner = spec.shard_for(value)
            targets.add(owner)
            if info.is_write:
                for rule in rules:
                    if rule.matches(spec.table, value):
                        targets.add(rule.dst)
                        cluster.stats.setdefault("dual_writes", 0)
                        cluster.stats["dual_writes"] += 1
        return targets

    def _insert_key_values(self, statement: ast.InsertStatement,
                           spec: ShardSpec,
                           params: List[Any]) -> Optional[List[Any]]:
        if statement.columns is None or statement.rows is None:
            raise UnsupportedStatementError(
                f"INSERT into sharded table {spec.table!r} must list its "
                f"columns including the shard key {spec.key_column!r}")
        lowered = [c.lower() for c in statement.columns]
        if spec.key_column not in lowered:
            raise UnsupportedStatementError(
                f"INSERT into sharded table {spec.table!r} without the "
                f"shard key {spec.key_column!r}: the row cannot be placed")
        key_index = lowered.index(spec.key_column)
        values = []
        for row in statement.rows:
            expr = row[key_index]
            value = _literal_value(expr, params)
            if value is None and not isinstance(expr, ast.Literal):
                raise UnsupportedStatementError(
                    "INSERT shard-key values must be literals or bound "
                    "parameters")
            values.append(value)
        return values

    # -- dispatch paths --------------------------------------------------

    def _note_route(self, kind: str, targets, is_write: bool,
                    commit=None) -> None:
        self.last_route = {"kind": kind, "targets": tuple(targets),
                           "write": is_write, "commit": commit}

    def _dispatch_global(self, statement: ast.Statement, sql_text: str,
                         params: List[Any], info: StatementInfo,
                         span) -> Result:
        cluster = self.cluster
        if info.is_write or info.is_ddl:
            span.set_tag("kind", "broadcast")
            cluster.stats["broadcast"] += 1
            every = tuple(range(len(cluster.groups)))
            self._note_route("broadcast", every, True)
            result = Result()
            for index in every:
                result = self._txn_session(index).execute_one_parsed(
                    statement, sql_text, params)
                if self.in_transaction:
                    self._txn_write_groups.add(index)
            return result
        span.set_tag("kind", "global_read")
        self._note_route("global_read", (0,), False)
        return self._txn_session(0).execute_one_parsed(
            statement, sql_text, params)

    def _dispatch_scatter(self, statement: ast.Statement, sql_text: str,
                          params: List[Any],
                          targets: Sequence[int]) -> Result:
        cluster = self.cluster
        cluster.stats["scatter_reads"] += 1
        self._note_route("scatter", targets, False)
        plan = plan_scatter(statement, sql_text, params)
        results = [
            self._txn_session(index).execute_one_parsed(
                plan.statement, plan.sql_text, params)
            for index in targets
        ]
        return plan.merge(results)

    def _dispatch_multi_write(self, statement: ast.Statement,
                              sql_text: str, params: List[Any],
                              info: StatementInfo, spec: ShardSpec,
                              targets: Sequence[int]) -> Result:
        cluster = self.cluster
        cluster.stats["multi_shard_writes"] += 1
        implicit = not self.in_transaction
        if implicit:
            self._begin()
        try:
            if isinstance(statement, ast.InsertStatement):
                result = self._split_insert(statement, sql_text, params,
                                            spec)
            else:
                # predicate write: each group touches only its own rows
                result = Result()
                rowcount = 0
                for index in targets:
                    partial = self._txn_session(index).execute_one_parsed(
                        statement, sql_text, params)
                    self._txn_write_groups.add(index)
                    rowcount += partial.rowcount
                result = Result(rowcount=rowcount)
            self._note_route("multi_write", targets, True)
            if implicit:
                self._commit()
            return result
        except Exception:
            if implicit and self.in_transaction:
                self._rollback()
            raise

    def _split_insert(self, statement: ast.InsertStatement, sql_text: str,
                      params: List[Any], spec: ShardSpec) -> Result:
        """Per-shard row subsets: each group gets exactly the rows it
        owns (plus dual-write copies during a reshard window)."""
        lowered = [c.lower() for c in statement.columns]
        key_index = lowered.index(spec.key_column)
        rules = self.cluster.rules_for(spec.table)
        by_group: Dict[int, list] = {}
        for row in statement.rows:
            value = _literal_value(row[key_index], params)
            owner = spec.shard_for(value)
            by_group.setdefault(owner, []).append(row)
            for rule in rules:
                if rule.matches(spec.table, value):
                    by_group.setdefault(rule.dst, []).append(row)
        rowcount = 0
        for index, rows in sorted(by_group.items()):
            shard_statement = ast.InsertStatement(
                statement.table, statement.columns, rows=rows)
            partial = self._txn_session(index).execute_one_parsed(
                shard_statement, f"{sql_text} /*shard:{index}*/", params)
            self._txn_write_groups.add(index)
            rowcount += partial.rowcount
        return Result(rowcount=rowcount, lastrowid=None)

    # -- transaction control ---------------------------------------------

    def _begin(self) -> Result:
        if self.in_transaction:
            raise UnsupportedStatementError(
                "transaction already in progress")
        self.in_transaction = True
        self._txn_groups = set()
        self._txn_write_groups = set()
        self._note_route("begin", (), False)
        return Result()

    def _commit(self) -> Result:
        if not self.in_transaction:
            return Result()
        cluster = self.cluster
        write_groups = set(self._txn_write_groups)
        read_groups = self._txn_groups - write_groups
        mode = "fast" if len(write_groups) <= 1 else "2pc"
        self._note_route("commit", sorted(write_groups), True,
                         commit={"mode": mode,
                                 "groups": sorted(write_groups)})
        try:
            for index in sorted(read_groups):
                self._sessions[index].commit()
            if mode == "fast":
                # single-shard fast path: the one group's ordinary
                # certify/group-commit pipeline — no 2PC anywhere
                for index in sorted(write_groups):
                    self._sessions[index].commit()
                cluster.stats["single_shard_commits"] += 1
            else:
                span = cluster.tracer.start_span(
                    "shard.2pc", session=self.id,
                    participants=len(write_groups),
                    map_version=cluster.map.version)
                try:
                    cluster.twopc.commit(self, write_groups,
                                         parent_span=span)
                finally:
                    span.end()
                cluster.stats["twopc_commits"] += 1
        except Exception:
            self._abort_open_groups()
            raise
        finally:
            self._reset_txn()
        return Result()

    def _rollback(self) -> Result:
        if not self.in_transaction:
            return Result()
        self._note_route("rollback", sorted(self._txn_groups), False)
        self._abort_open_groups()
        self._reset_txn()
        return Result()

    def _abort_open_groups(self) -> None:
        for session in self._sessions.values():
            if session.in_transaction:
                session.rollback()

    def _reset_txn(self) -> None:
        self.in_transaction = False
        self._txn_groups = set()
        self._txn_write_groups = set()

    def _check_open(self) -> None:
        if self.closed:
            raise MiddlewareDown("session is closed")
