"""Horizontal shard tier: middleware-owned shard maps, cross-shard 2PC
commits, and online no-quiesce resharding (see ``docs/SHARDING.md``).
"""

from .merge import ScatterPlan, plan_scatter
from .reshard import OnlineReshard, ReshardError
from .router import ForwardingRule, ShardedCluster, ShardedSession
from .shardmap import (HashSharder, MapLogRecord, RangeSharder, ShardMap,
                       ShardMapLog, ShardSpec, Sharder, stable_hash)
from .twopc import TwoPCCoordinator, install_unit

__all__ = [
    "ScatterPlan", "plan_scatter",
    "OnlineReshard", "ReshardError",
    "ForwardingRule", "ShardedCluster", "ShardedSession",
    "HashSharder", "MapLogRecord", "RangeSharder", "ShardMap",
    "ShardMapLog", "ShardSpec", "Sharder", "stable_hash",
    "TwoPCCoordinator", "install_unit",
]
