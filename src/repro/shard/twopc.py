"""Cross-shard atomic commit, layered on each group's certifier and
group-commit pipeline.

The shard tier never invents a second commit protocol for the common
case: a transaction whose writes land on one shard commits through that
group's ordinary writeset pipeline (the documented fast path — see
``docs/SHARDING.md``).  Only a transaction that wrote on two or more
groups pays two-phase commit:

**Prepare**, per participant group in deterministic (index) order:
extract the local writeset, run the group's own SI certification
(first-committer-wins, exactly the check a single-group commit would
run) and ship the entry to the group's HA standby.  A prepared
transaction holds a certified sequence number but has not committed.

**Decide**: one record in the shard-map log
(``{"kind": "2pc_decision", "txn": ..., "decision": ...}``).  The log is
the coordinator's durable state, so recovery is deterministic: decision
record present -> replay it; absent -> presumed abort.

**Commit**, per prepared group: the rest of the group's own pipeline —
prefix drain, local commit, recovery-log append, propagation frame, HA
ack, cache publish — via ``GroupCommitCoordinator.commit_prepared``.

**Abort** (some participant failed certification): prepared groups
*rescind* their certifier entries (the footprint becomes empty so it can
never abort a later transaction against a write that never happened) and
the consumed sequence number is filled with an **empty no-op commit** so
replica watermarks stay gapless; the HA standby's PENDING entry is
rewritten to the same no-op before the ack, so a promotion can never
resurrect the aborted writeset.

Because each group certifies with its own certifier against its own
local writeset, per-group outcomes are bit-identical to what a
single-group commit of the same writeset would decide — that equivalence
is asserted by E29 (seeded replay) and a hypothesis property in
``tests/shard``.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

from ..core.errors import FencedOut, MiddlewareDown
from ..core.writesets import invalidation_keys
from ..sqlengine import SerializationError


class TwoPCCoordinator:
    """Coordinates cross-shard commits for one :class:`ShardedCluster`."""

    def __init__(self, cluster):
        self.cluster = cluster
        self._txn_counter = itertools.count(1)
        self.stats: Dict[str, int] = {
            "commits": 0, "aborts": 0, "prepares": 0, "rescinds": 0,
        }
        # E29 audit hook: every per-group prepare certification decision,
        # in coordinator order, for equivalence replay against a fresh
        # per-group certifier.
        self.equivalence_log: Optional[List[Dict[str, Any]]] = None

    # ------------------------------------------------------------------

    def commit(self, shard_session, write_groups, parent_span=None) -> None:
        """Atomically commit ``shard_session``'s open transaction across
        ``write_groups`` (group indices with writes).  Raises
        :class:`SerializationError` when any participant fails
        certification — in that case every participant rolled back."""
        cluster = self.cluster
        tracer = cluster.tracer
        txn_id = f"{cluster.name}-2pc-{next(self._txn_counter)}"

        prepared = []   # (index, middleware, group_session, request, seq)
        plain = []      # (index, group_session) with nothing to certify
        conflict = None
        participant_down = None
        for index in sorted(write_groups):
            middleware = cluster.groups[index]
            try:
                group_session = shard_session.group_session(index)
                request = group_session.stage_commit_request()
                if request is None:
                    # the writes matched zero rows here: nothing global
                    # to decide for this group, a plain local commit
                    # suffices
                    plain.append((index, group_session))
                    continue
                span = tracer.child_span(
                    "shard.2pc.prepare", parent_span, txn=txn_id,
                    shard=middleware.name, keys=len(request.keys),
                    start_seq=request.start_seq)
                outcome = middleware.certifier.certify(request.start_seq,
                                                       request.keys)
                self.stats["prepares"] += 1
                if self.equivalence_log is not None:
                    self.equivalence_log.append({
                        "shard": middleware.name, "txn": txn_id,
                        "start_seq": request.start_seq,
                        "keys": request.keys,
                        "ok": outcome.ok, "seq": outcome.seq,
                        "conflict_seq": outcome.conflict_seq,
                    })
                span.set_tag("ok", outcome.ok)
                if not outcome.ok:
                    span.set_tag("conflict_seq", outcome.conflict_seq)
                    span.end()
                    conflict = (middleware, outcome)
                    break
                span.set_tag("seq", outcome.seq)
                span.end()
                # a certified-but-unshipped entry must be resolvable, so
                # record the prepare *before* the ship call can fail
                prepared.append((index, middleware, group_session,
                                 request, outcome.seq))
                # prepare = certify + ship: the standby learns about the
                # in-doubt entry before any group commits it
                middleware._ship_prepare(group_session, outcome.seq,
                                         request.keys, "writeset",
                                         request.entries, request.tables)
            except MiddlewareDown as exc:
                # this participant's middleware died (or was fenced out)
                # mid-prepare: presumed abort.  Its own in-doubt state is
                # settled at promotion (a PENDING prepare above the
                # replica watermark is dropped and its seq reused); the
                # surviving participants' prepared entries are rescinded
                # below so a leaked certified slot can never block later
                # transactions against a write that never happened.
                participant_down = (index, middleware, exc)
                break

        decision = "abort" if conflict is not None \
            or participant_down is not None else "commit"
        record = cluster.map_log.append(
            "2pc_decision", txn=txn_id, decision=decision,
            shards=[cluster.groups[i].name
                    for i, *_ in prepared] if prepared else [],
            seqs={middleware.name: seq
                  for _, middleware, _, _, seq in prepared},
            reason=("participant_down" if participant_down is not None
                    else "conflict" if conflict is not None else None))
        decide_span = tracer.child_span(
            "shard.2pc.decide", parent_span, txn=txn_id,
            decision=decision, record_seq=record.seq,
            participants=len(prepared) + len(plain))
        decide_span.end()

        if decision == "commit":
            for index, middleware, group_session, request, seq in prepared:
                if middleware.failed \
                        or middleware is not cluster.groups[index]:
                    # this participant died (or was deposed) between its
                    # prepare and this commit round.  The decision record
                    # is durable and says COMMIT, so the transaction must
                    # not half-apply: replay the decided writeset on the
                    # group's promoted leader.
                    self._replay_decision(index, middleware, request,
                                          txn_id, parent_span=parent_span)
                    continue
                span = tracer.child_span(
                    "shard.2pc.commit", parent_span, txn=txn_id,
                    shard=middleware.name, seq=seq)
                with span:
                    middleware.group_commit.commit_prepared(request, seq)
                middleware.stats["commits"] += 1
                group_session._end_transaction()
            for index, group_session in plain:
                group_session.commit()
            self.stats["commits"] += 1
            return

        # presumed abort: resolve the prepared groups' certified entries
        for index, middleware, group_session, request, seq in prepared:
            if middleware.failed or middleware is not cluster.groups[index]:
                # the dead instance's prepared entry resolves at
                # promotion: a PENDING prepare above the replicas'
                # applied watermark is dropped and its seq reused.
                # Resolving it here would apply a no-op at that seq to
                # the *shared* replicas, advancing the watermark and
                # making promotion resurrect the aborted txn as
                # committed — so leave it to the promotion path.
                continue
            span = tracer.child_span(
                "shard.2pc.abort", parent_span, txn=txn_id,
                shard=middleware.name, seq=seq)
            with span:
                self._resolve_abort(middleware, group_session, seq)
            if not group_session.closed:
                group_session._rollback_transaction()
        for index, group_session in plain:
            if not group_session.closed:
                group_session.rollback()
        self.stats["aborts"] += 1
        if participant_down is not None:
            down_index, down_middleware, exc = participant_down
            if isinstance(exc, FencedOut) \
                    or cluster.pairs[down_index] is not None:
                exc.retry_after_failover = True
            raise exc
        conflicted_mw, outcome = conflict
        raise SerializationError(
            f"2pc certification failed on shard {conflicted_mw.name!r}: "
            f"conflicts with its seq {outcome.conflict_seq} "
            "(first-committer-wins)")

    # ------------------------------------------------------------------

    def _replay_decision(self, index: int, dead_middleware, request,
                         txn_id: str, parent_span=None) -> int:
        """Honour a durable COMMIT decision on a participant whose
        middleware died between prepare and commit: install the decided
        writeset on the group's promoted leader as one ordered unit (the
        promoted standby dropped the dead instance's PENDING prepare at
        promotion, so this is the first and only application), and mark
        the client transaction COMMITTED in the leader's ledger so a
        client-side replay dedups instead of double-applying."""
        cluster = self.cluster
        leader = cluster.groups[index]
        if leader is dead_middleware or leader.failed or leader.standby_mode:
            exc = MiddlewareDown(
                f"group {index} has no live leader to honour 2PC "
                f"decision for {txn_id!r}; the decision record in the "
                "shard-map log replays it at recovery")
            if cluster.pairs[index] is not None:
                exc.retry_after_failover = True
            raise exc
        session = request.session
        seq = install_unit(leader, request.entries, tables=request.tables,
                           user=session.user, database=session.database)
        client_txn = getattr(session, "client_txn_id", None)
        if leader.commit_ledger is not None and client_txn is not None:
            leader.commit_ledger.mark_committed(client_txn, seq)
        self.stats.setdefault("decision_replays", 0)
        self.stats["decision_replays"] += 1
        span = cluster.tracer.child_span(
            "shard.2pc.commit", parent_span, txn=txn_id,
            shard=leader.name, seq=seq, replayed=True)
        span.end()
        return seq

    # ------------------------------------------------------------------

    def _resolve_abort(self, middleware, group_session, seq: int) -> None:
        """Turn a prepared-but-aborted entry into a no-op commit at the
        same seq: empty certifier footprint, empty recovery-log entry,
        empty apply unit to every replica, no-op resolution shipped to
        the standby.  Watermarks stay gapless; the write disappears."""
        middleware.certifier.rescind(seq)
        self.stats["rescinds"] += 1
        middleware.recovery_log.append(
            seq, "writeset", [], tables=[], user=group_session.user,
            database=group_session.database)
        self._fill_noop(middleware, seq)
        if middleware.state_shipper is not None:
            middleware.state_shipper.ship_resolve_noop(group_session, seq)
        # empty-footprint publish: advances the cache invalidator's
        # freshness watermark past the consumed seq (invalidates nothing)
        middleware.publish_certified(
            seq, keys=frozenset(), tables=set(), kind="writeset",
            database=group_session.database, entries=[])

    @staticmethod
    def _fill_noop(middleware, seq: int) -> None:
        from ..core.replica import ApplyItem
        now = middleware.monitor.peek()
        for replica in middleware.replicas:
            if not replica.is_online:
                continue  # it resynchronizes from the recovery log
            item = ApplyItem(seq, "writeset", [], (), enqueued_at=now)
            if middleware.config.propagation == "sync":
                middleware._apply_item(replica, item)
            else:
                replica.enqueue(item)
                if middleware.on_apply_enqueued is not None:
                    middleware.on_apply_enqueued(replica, item)


def install_unit(middleware, entries, tables=None, user: str = "reshard",
                 database: Optional[str] = None) -> int:
    """Install already-committed facts (a reshard's snapshot copy or
    recovery-log join batch) into ``middleware`` as one ordered writeset
    unit: a certifier sequence, a recovery-log entry, a synchronous
    apply on every online replica, and a cache publish.  Returns the
    assigned seq.

    Order-only sequencing (``assign_seq``) is correct here because the
    router never sends client writes for the moving keys to the
    destination group before the dual-write window, so nothing can race
    these installs on the same rows.
    """
    from ..core.replica import ApplyItem
    from ..core.writesets import conflict_keys
    keys = conflict_keys(entries)
    seq = middleware.certifier.assign_seq(keys)
    tables = sorted(tables if tables is not None
                    else {e["table"] for e in entries})
    middleware.recovery_log.append(seq, "writeset", entries, tables=tables,
                                   user=user, database=database)
    now = middleware.monitor.peek()
    for replica in middleware.replicas:
        if not replica.is_online:
            continue
        middleware._apply_item(
            replica, ApplyItem(seq, "writeset", entries, tuple(tables),
                               enqueued_at=now))
    origin = middleware.online_replicas()[0] \
        if middleware.online_replicas() else None
    middleware.publish_certified(
        seq,
        keys=invalidation_keys(entries, origin.engine) if origin
        else frozenset(),
        tables={(e["database"], e["table"]) for e in entries},
        kind="writeset", database=database, entries=entries)
    return seq
