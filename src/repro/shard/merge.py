"""Scatter-gather planning and merge for cross-shard (and legacy
cross-partition) reads.

A statement that cannot be pinned to one shard executes on every target
group and the partial results are merged at the middleware.  Most merges
are mechanical (concatenate, sum rowcounts); the interesting cases are
the ones the paper's section 5.1 files under "intra-query parallelism":

* aggregates — COUNT/SUM/MIN/MAX merge directly; AVG is *not*
  decomposable, so the scattered statement is rewritten to ship
  SUM + COUNT per shard and the coordinator computes the weighted
  average (the classic two-step aggregation rewrite);
* GROUP BY — partial groups are re-grouped by the grouping columns and
  their aggregates merged per group;
* ORDER BY — each shard returns locally sorted rows; the union is
  re-sorted on the output columns at the coordinator;
* LIMIT/OFFSET — each shard is asked for the first ``limit + offset``
  rows (a shard cannot know which of its rows survive the global sort),
  and the coordinator re-applies OFFSET and LIMIT after the re-sort.

:func:`plan_scatter` builds a :class:`ScatterPlan` — the (possibly
rewritten) statement to run per shard plus the merge function — and
raises :class:`~repro.core.errors.UnsupportedStatementError` for shapes
that cannot be merged correctly (DISTINCT aggregates, HAVING,
expression-valued LIMIT without bound parameters): a wrong answer is
worse than an explicit limitation.

This module is deliberately free of middleware imports so both
``repro.core.partitioning`` (the legacy Figure-2 path) and
``repro.shard.router`` share it without an import cycle.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from ..core.errors import UnsupportedStatementError
from ..sqlengine import ast_nodes as ast
from ..sqlengine.executor import Result
from ..sqlengine.expressions import sort_key

MERGEABLE_AGGREGATES = ("COUNT", "SUM", "MIN", "MAX", "AVG")


def literal_value(expr, params: Sequence[Any]) -> Optional[Any]:
    """The Python value of a literal or bound parameter, else None."""
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Param) and expr.index < len(params):
        return params[expr.index]
    return None


def _is_aggregate(expr) -> bool:
    return (isinstance(expr, ast.FunctionCall)
            and expr.name in MERGEABLE_AGGREGATES)


class _AggColumn:
    """One output column that is a mergeable aggregate.  ``count_index``
    points at the companion COUNT column appended for AVG."""

    __slots__ = ("index", "func", "count_index")

    def __init__(self, index: int, func: str,
                 count_index: Optional[int] = None):
        self.index = index
        self.func = func
        self.count_index = count_index


class ScatterPlan:
    """How to execute one statement on every target shard and merge the
    partial results into the client-visible answer."""

    __slots__ = ("statement", "sql_text", "rewritten", "mode", "_aggs",
                 "_group_indices", "_order_by", "_limit", "_offset",
                 "_distinct", "_arity", "_order_hidden")

    def __init__(self, statement, sql_text: str, mode: str,
                 rewritten: bool = False,
                 aggs: Optional[List[_AggColumn]] = None,
                 group_indices: Optional[List[int]] = None,
                 order_by=None, limit: Optional[int] = None,
                 offset: Optional[int] = None, distinct: bool = False,
                 arity: Optional[int] = None,
                 order_hidden: Optional[dict] = None):
        self.statement = statement
        self.sql_text = sql_text
        self.mode = mode          # rows | aggregate | grouped | write
        self.rewritten = rewritten
        self._aggs = aggs or []
        self._group_indices = group_indices or []
        self._order_by = order_by or []
        self._limit = limit
        self._offset = offset
        self._distinct = distinct
        self._arity = arity
        # ORDER BY column name -> appended hidden-column index, for sort
        # keys that are not part of the client-visible select list
        self._order_hidden = order_hidden or {}

    # ------------------------------------------------------------------

    def merge(self, results: List[Result]) -> Result:
        if not results:
            return Result()
        if self.mode == "write":
            return Result(rowcount=sum(r.rowcount for r in results))
        if self.mode == "aggregate":
            return self._merge_aggregate(results)
        if self.mode == "grouped":
            return self._merge_grouped(results)
        return self._merge_rows(results)

    # -- plain row union ------------------------------------------------

    def _merge_rows(self, results: List[Result]) -> Result:
        rows: List[tuple] = []
        rowcount = 0
        for result in results:
            rows.extend(result.rows)
            rowcount += result.rowcount
        if self._distinct:
            seen = set()
            unique = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    unique.append(row)
            rows = unique
        rows = self._resorted(rows, results[0].columns)
        rows = self._sliced(rows)
        columns = results[0].columns
        if self._order_hidden and self._arity is not None:
            # project the hidden sort-key columns back out
            rows = [row[:self._arity] for row in rows]
            columns = columns[:self._arity]
        return Result(columns=columns, rows=rows, rowcount=len(rows))

    def _resorted(self, rows: List[tuple],
                  columns: List[str]) -> List[tuple]:
        """Re-sort the union on ORDER BY output columns (stable, applied
        minor-key-first so major keys win).  Sort keys outside the select
        list ride along as appended hidden columns."""
        if not self._order_by:
            return rows
        lowered = [c.lower() for c in columns]
        for expr, ascending in reversed(self._order_by):
            if not isinstance(expr, ast.ColumnRef):
                continue
            name = expr.name.lower()
            if name in lowered:
                index = lowered.index(name)
            elif name in self._order_hidden:
                index = self._order_hidden[name]
            else:
                continue
            rows = sorted(rows, key=lambda r: sort_key(r[index]),
                          reverse=not ascending)
        return rows

    def _sliced(self, rows: List[tuple]) -> List[tuple]:
        if self._offset:
            rows = rows[self._offset:]
        if self._limit is not None:
            rows = rows[:self._limit]
        return rows

    # -- single-row aggregates ------------------------------------------

    def _merge_aggregate(self, results: List[Result]) -> Result:
        partials = [r.rows[0] for r in results if r.rows]
        merged = tuple(self._merge_agg_value(agg, partials)
                       for agg in self._aggs)
        columns = results[0].columns[:self._arity]
        return Result(columns=columns, rows=[merged], rowcount=1)

    @staticmethod
    def _merge_agg_value(agg: _AggColumn, partials: List[tuple]) -> Any:
        values = [row[agg.index] for row in partials]
        values = [v for v in values if v is not None]
        if agg.func == "COUNT":
            return sum(values) if values else 0
        if agg.func == "SUM":
            return sum(values) if values else None
        if agg.func == "MIN":
            return min(values) if values else None
        if agg.func == "MAX":
            return max(values) if values else None
        # AVG: weighted by the companion per-shard COUNT column
        total = 0
        count = 0
        for row in partials:
            shard_count = row[agg.count_index]
            if shard_count:
                total += row[agg.index] if row[agg.index] is not None else 0
                count += shard_count
        return total / count if count else None

    # -- GROUP BY regrouping --------------------------------------------

    def _merge_grouped(self, results: List[Result]) -> Result:
        groups = {}
        order: List[tuple] = []
        for result in results:
            for row in result.rows:
                key = tuple(sort_key(row[i]) for i in self._group_indices)
                bucket = groups.get(key)
                if bucket is None:
                    groups[key] = [row]
                    order.append(key)
                else:
                    bucket.append(row)
        agg_by_index = {agg.index: agg for agg in self._aggs}
        rows = []
        for key in order:
            bucket = groups[key]
            merged = []
            for index in range(self._arity):
                agg = agg_by_index.get(index)
                if agg is None:
                    merged.append(bucket[0][index])   # grouping column
                else:
                    merged.append(self._merge_agg_value(agg, bucket))
            rows.append(tuple(merged))
        columns = results[0].columns[:self._arity]
        rows = self._resorted(rows, columns)
        rows = self._sliced(rows)
        return Result(columns=columns, rows=rows, rowcount=len(rows))


# ---------------------------------------------------------------------------
# planning
# ---------------------------------------------------------------------------

def plan_scatter(statement: ast.Statement, sql_text: str,
                 params: Optional[Sequence[Any]] = None) -> ScatterPlan:
    """Build the scatter plan for ``statement``.

    Raises :class:`UnsupportedStatementError` when the partials cannot be
    merged into a correct global answer.
    """
    params = params or []
    if not isinstance(statement, ast.SelectStatement):
        return ScatterPlan(statement, sql_text, "write")

    has_aggregate = any(_is_aggregate(expr)
                        for expr, _alias in statement.columns)
    if not has_aggregate and not statement.group_by:
        return _plan_row_scatter(statement, sql_text, params)
    return _plan_aggregate_scatter(statement, sql_text, params,
                                   has_aggregate)


def _limit_offset(statement: ast.SelectStatement,
                  params: Sequence[Any]) -> Tuple[Optional[int],
                                                  Optional[int]]:
    limit = offset = None
    if statement.limit is not None:
        limit = literal_value(statement.limit, params)
        if not isinstance(limit, int) or limit < 0:
            raise UnsupportedStatementError(
                "cannot scatter a LIMIT whose value is not a bound "
                "non-negative integer")
    if statement.offset is not None:
        offset = literal_value(statement.offset, params)
        if not isinstance(offset, int) or offset < 0:
            raise UnsupportedStatementError(
                "cannot scatter an OFFSET whose value is not a bound "
                "non-negative integer")
    return limit, offset


def _shard_select(statement: ast.SelectStatement, columns,
                  limit: Optional[int],
                  offset: Optional[int]) -> ast.SelectStatement:
    """The per-shard variant: possibly rewritten columns, and LIMIT
    widened to ``limit + offset`` rows with OFFSET dropped (a shard
    cannot know which of its rows the global sort will skip)."""
    shard_limit = statement.limit
    if offset is not None and limit is not None:
        shard_limit = ast.Literal(limit + offset)
    return ast.SelectStatement(
        columns=columns, source=statement.source, where=statement.where,
        group_by=list(statement.group_by), having=statement.having,
        order_by=list(statement.order_by), limit=shard_limit,
        offset=None if offset is not None else statement.offset,
        distinct=statement.distinct, for_update=statement.for_update)


def _plan_row_scatter(statement: ast.SelectStatement, sql_text: str,
                      params: Sequence[Any]) -> ScatterPlan:
    limit, offset = _limit_offset(statement, params)
    visible = set()
    has_star = False
    for expr, alias in statement.columns:
        if isinstance(expr, ast.Star):
            has_star = True
        if alias:
            visible.add(alias.lower())
        elif isinstance(expr, ast.ColumnRef):
            visible.add(expr.name.lower())
    # a sort key outside the select list must ride along per shard as a
    # hidden column, or the coordinator cannot re-sort the union
    missing: List[str] = []
    if not has_star:
        for expr, _ascending in statement.order_by:
            if isinstance(expr, ast.ColumnRef) \
                    and expr.name.lower() not in visible \
                    and expr.name.lower() not in missing:
                missing.append(expr.name.lower())
    order_hidden = {}
    extra_columns: List[tuple] = []
    if missing:
        if statement.distinct:
            raise UnsupportedStatementError(
                "cannot scatter SELECT DISTINCT ordered by a column "
                "outside the select list (the hidden sort key would "
                "change what DISTINCT deduplicates)")
        arity = len(statement.columns)
        for index, name in enumerate(missing):
            order_hidden[name] = arity + index
            extra_columns.append(
                (ast.ColumnRef(name), f"__scatter_order_{index}"))
    rewritten = bool(extra_columns) or bool(offset)
    if rewritten:
        shard_statement = _shard_select(
            statement, list(statement.columns) + extra_columns, limit,
            offset)
    else:
        shard_statement = statement
    text = sql_text + " /*scatter:wide*/" if rewritten else sql_text
    return ScatterPlan(shard_statement, text, "rows", rewritten=rewritten,
                       order_by=statement.order_by, limit=limit,
                       offset=offset, distinct=statement.distinct,
                       arity=len(statement.columns),
                       order_hidden=order_hidden)


def _plan_aggregate_scatter(statement: ast.SelectStatement, sql_text: str,
                            params: Sequence[Any],
                            has_aggregate: bool) -> ScatterPlan:
    if statement.having is not None:
        raise UnsupportedStatementError(
            "cannot scatter HAVING: shard-local groups are partial, so a "
            "local HAVING filter would discard rows the merged group needs")
    if statement.distinct:
        raise UnsupportedStatementError(
            "cannot scatter SELECT DISTINCT with aggregates")
    group_names = []
    for expr in statement.group_by:
        if not isinstance(expr, ast.ColumnRef):
            raise UnsupportedStatementError(
                "cannot scatter GROUP BY on a non-column expression")
        group_names.append(expr.name.lower())

    arity = len(statement.columns)
    aggs: List[_AggColumn] = []
    group_indices: List[int] = []
    new_columns: List[tuple] = []
    extra_columns: List[tuple] = []
    for index, (expr, alias) in enumerate(statement.columns):
        if _is_aggregate(expr):
            if expr.distinct:
                raise UnsupportedStatementError(
                    f"cannot merge {expr.name}(DISTINCT ...) across "
                    "shards: shard-local distinct sets may overlap")
            if expr.name == "AVG":
                # two-step aggregation: ship SUM + COUNT, divide at the
                # coordinator.  The alias pins the original column name.
                label = alias or "avg"
                new_columns.append(
                    (ast.FunctionCall("SUM", expr.args), label))
                count_index = arity + len(extra_columns)
                extra_columns.append(
                    (ast.FunctionCall("COUNT", expr.args),
                     f"__scatter_count_{index}"))
                aggs.append(_AggColumn(index, "AVG", count_index))
            else:
                new_columns.append((expr, alias))
                aggs.append(_AggColumn(index, expr.name))
        elif isinstance(expr, ast.ColumnRef) \
                and expr.name.lower() in group_names:
            new_columns.append((expr, alias))
            group_indices.append(index)
        else:
            raise UnsupportedStatementError(
                "cannot scatter a select mixing aggregates with "
                "non-grouped columns")

    rewritten = bool(extra_columns)
    limit, offset = _limit_offset(statement, params)
    if statement.group_by:
        mode = "grouped"
        if len(group_indices) != len(group_names):
            raise UnsupportedStatementError(
                "cannot scatter GROUP BY unless every grouping column "
                "appears in the select list (regrouping needs the keys)")
        # A shard-local LIMIT could drop a partial group whose merged
        # total belongs in the answer, so shards always return every
        # group; OFFSET/LIMIT are applied after the regroup + re-sort.
        needs_shard_rewrite = rewritten or limit is not None \
            or offset is not None
        if needs_shard_rewrite:
            rewritten = True
            shard_statement = ast.SelectStatement(
                columns=new_columns + extra_columns,
                source=statement.source, where=statement.where,
                group_by=list(statement.group_by),
                order_by=list(statement.order_by))
        else:
            shard_statement = statement
    else:
        mode = "aggregate"
        shard_statement = statement
        if rewritten:
            shard_statement = ast.SelectStatement(
                columns=new_columns + extra_columns,
                source=statement.source, where=statement.where)
    text = sql_text + " /*scatter:avg*/" if rewritten else sql_text
    return ScatterPlan(shard_statement, text, mode, rewritten=rewritten,
                       aggs=aggs, group_indices=group_indices,
                       order_by=statement.order_by, limit=limit,
                       offset=offset, arity=arity)
