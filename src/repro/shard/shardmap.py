"""Versioned shard maps and the shard-map log.

The shard map is the middleware-owned source of truth for data
placement: per-table shard keys, a hash or range sharder per table, and
a monotonically increasing **version**.  Routing, the result cache
(which folds the version into its keys) and resharding all hang off the
version: installing a new map is the atomic "flip" that moves ownership,
and any state derived from an older version is unreachable afterwards.

The :class:`ShardMapLog` is the coordinator's durable record: every map
installation and every cross-shard 2PC decision is appended here.  That
makes recovery deterministic — a 2PC transaction with no decision record
is presumed aborted; one with a record replays the recorded decision
(see ``repro.shard.twopc``), and the current map is always the last
``map_install`` record.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Sequence

from ..core.errors import MiddlewareError


def stable_hash(value: Any) -> int:
    """Deterministic across runs for ints and strings (no
    PYTHONHASHSEED dependence), mirroring the legacy partitioner."""
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        acc = 0
        for ch in value:
            acc = (acc * 131 + ord(ch)) % 1000000007
        return acc
    return abs(hash(value))


class Sharder:
    """Maps a shard-key value to a shard (replication-group) index."""

    kind = "base"

    def __init__(self, shards: int):
        self.shards = shards

    def shard_for(self, value: Any) -> int:
        raise NotImplementedError

    def clone(self) -> "Sharder":
        raise NotImplementedError


class HashSharder(Sharder):
    """Stable hash placement.  NULL keys are legal rows and must live
    somewhere deterministic: they hash to shard 0."""

    kind = "hash"

    def shard_for(self, value: Any) -> int:
        if value is None:
            return 0
        return stable_hash(value) % self.shards

    def clone(self) -> "HashSharder":
        return HashSharder(self.shards)


class RangeSharder(Sharder):
    """Range placement as an ordered list of segments.

    ``bounds`` are the inclusive upper bounds of the first N-1 segments
    (``bounds=[100, 200]`` -> ``(..100], (100..200], (200..)``), and
    ``assignments`` maps each segment to a shard index — by default the
    identity, but a split inserts a bound and assigns the new segment
    elsewhere, which is exactly how online resharding changes ownership
    without touching any other segment.  NULL keys sort below every
    bound and land in the first segment's shard.
    """

    kind = "range"

    def __init__(self, bounds: Sequence[Any],
                 assignments: Optional[Sequence[int]] = None):
        self.bounds = list(bounds)
        if assignments is None:
            assignments = list(range(len(self.bounds) + 1))
        if len(assignments) != len(self.bounds) + 1:
            raise ValueError(
                f"{len(self.bounds)} bounds need {len(self.bounds) + 1} "
                f"segment assignments, got {len(assignments)}")
        self.assignments = list(assignments)
        super().__init__(max(self.assignments) + 1)

    def segment_for(self, value: Any) -> int:
        if value is None:
            return 0
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                return index
        return len(self.bounds)

    def shard_for(self, value: Any) -> int:
        return self.assignments[self.segment_for(value)]

    def split(self, bound: Any, new_shard: int) -> None:
        """Cut the segment containing ``bound`` at ``bound`` and assign
        the *lower* half to ``new_shard`` (keys <= bound move)."""
        segment = self.segment_for(bound)
        if segment < len(self.bounds) and self.bounds[segment] == bound:
            # bound already a boundary: just reassign its segment
            self.assignments[segment] = new_shard
        else:
            self.bounds.insert(segment, bound)
            self.assignments.insert(segment, new_shard)
        self.shards = max(self.shards, new_shard + 1)

    def clone(self) -> "RangeSharder":
        return RangeSharder(list(self.bounds), list(self.assignments))


class ShardSpec:
    """Per-table placement: the shard-key column, the sharder, and
    explicit per-key overrides (how a hash-sharded table moves
    individual keys during a rebalance)."""

    __slots__ = ("table", "key_column", "sharder", "overrides")

    def __init__(self, table: str, key_column: str, sharder: Sharder,
                 overrides: Optional[Dict[Any, int]] = None):
        self.table = table.lower()
        self.key_column = key_column.lower()
        self.sharder = sharder
        self.overrides = dict(overrides or {})

    def shard_for(self, value: Any) -> int:
        if value in self.overrides:
            return self.overrides[value]
        return self.sharder.shard_for(value)

    def clone(self) -> "ShardSpec":
        return ShardSpec(self.table, self.key_column,
                         self.sharder.clone(), dict(self.overrides))


class ShardMap:
    """One immutable-in-spirit placement version.  Mutations go through
    :meth:`clone` + ``ShardedCluster.install_map`` so every change is a
    version flip with a log record, never an in-place edit a concurrent
    reader could half-see."""

    def __init__(self, shards: int, version: int = 1,
                 tables: Optional[Dict[str, ShardSpec]] = None):
        if shards < 1:
            raise ValueError("a shard map needs at least one shard")
        self.shards = shards
        self.version = version
        self.tables: Dict[str, ShardSpec] = dict(tables or {})

    def register_table(self, table: str, key_column: str,
                       sharder: Sharder) -> ShardSpec:
        if sharder.shards > self.shards:
            raise ValueError(
                f"sharder places keys on {sharder.shards} shards but the "
                f"map has {self.shards}")
        spec = ShardSpec(table, key_column, sharder)
        self.tables[spec.table] = spec
        return spec

    def spec_of(self, table: str) -> Optional[ShardSpec]:
        return self.tables.get(table.split(".")[-1].lower())

    def shard_of(self, table: str, value: Any) -> int:
        spec = self.spec_of(table)
        if spec is None:
            raise MiddlewareError(f"table {table!r} is not sharded")
        return spec.shard_for(value)

    def clone(self, shards: Optional[int] = None) -> "ShardMap":
        """A deep copy with ``version + 1`` — the draft a reshard edits
        before installing it atomically."""
        return ShardMap(shards or self.shards, self.version + 1,
                        {name: spec.clone()
                         for name, spec in self.tables.items()})


class MapLogRecord:
    __slots__ = ("seq", "kind", "payload")

    def __init__(self, seq: int, kind: str, payload: Dict[str, Any]):
        self.seq = seq
        self.kind = kind
        self.payload = payload

    def __repr__(self) -> str:
        return f"MapLogRecord({self.seq}, {self.kind!r}, {self.payload!r})"


class ShardMapLog:
    """Append-only coordinator log: map installs, reshard phase marks
    and 2PC decisions.  One log, one order — recovery replays it front
    to back and ends with the same map and the same commit/abort
    outcomes every time."""

    def __init__(self):
        self.records: List[MapLogRecord] = []
        self._seq = itertools.count(1)

    def append(self, kind: str, **payload: Any) -> MapLogRecord:
        record = MapLogRecord(next(self._seq), kind, payload)
        self.records.append(record)
        return record

    def decision_of(self, txn_id: str) -> Optional[str]:
        """The recorded 2PC decision for ``txn_id`` — None means no
        decision record was written, which recovery reads as presumed
        abort."""
        for record in reversed(self.records):
            if record.kind == "2pc_decision" \
                    and record.payload.get("txn") == txn_id:
                return record.payload.get("decision")
        return None

    def of_kind(self, kind: str) -> List[MapLogRecord]:
        return [r for r in self.records if r.kind == kind]

    def __len__(self) -> int:
        return len(self.records)
