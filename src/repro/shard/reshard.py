"""Online shard split / merge / rebalance — no quiesce.

A reshard moves one set of keys (a range segment, or an explicit key
set) from a source group to a destination group while writes keep
flowing.  The protocol is the E12 recovery-log join wrapped in a
dual-write window, phase by phase:

1. **snapshot + join point** (:meth:`OnlineReshard.start`, atomic):
   record the source certifier's current seq and read the moving rows
   from a source replica in the same instant — every later change is,
   by construction, in the source recovery log after the join point.
2. **copy** (:meth:`copy_chunk`, resumable): install the snapshot rows
   into the destination group in bounded chunks, each an ordered
   writeset unit (certifier seq + recovery-log entry + apply on every
   destination replica), so the destination stays internally convergent
   and could itself recover mid-copy.
3. **catch-up** (:meth:`catch_up`, repeatable): replay the source
   recovery-log tail since the join point, filtered to the moving keys,
   onto the destination — the same join a new replica uses in E12 —
   and advance the join point.  Repeat until the tail is small.
4. **dual-write window** (:meth:`enter_dual_write`, atomic): one final
   catch-up and the installation of a
   :class:`~repro.shard.router.ForwardingRule` happen in the same
   instant, so from this moment every client write to a moving key is
   a cross-shard 2PC transaction against *both* groups.  Reads still go
   to the source (it stays the owner), and unpinned scatter reads skip
   the destination so moving rows are never counted twice.
5. **flip** (:meth:`flip`, atomic): install the successor shard map
   (version + 1) — instantly re-routing reads and writes to the
   destination and salting every result-cache key — then delete the
   moved rows from the source as one writeset unit and drop the
   forwarding rule.  The flip refuses to run while a write transaction
   opened under the old map is still in flight (the epoch drain): those
   are the only writes that could resurrect a moved row on the source.

At no point is a write rejected because of the reshard, and an
acknowledged commit is never lost: before the window the source owns
the keys outright, inside the window 2PC makes both copies durable, and
after the flip the destination owns them outright.  E29 drives this
under sustained open-loop load and gates on exactly those invariants.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from ..core.errors import MiddlewareError
from .router import ForwardingRule, ShardedCluster
from .shardmap import RangeSharder
from .twopc import install_unit


class ReshardError(MiddlewareError):
    """A reshard phase was invoked out of order or cannot proceed."""


class OnlineReshard:
    """One live key movement on a :class:`ShardedCluster`.

    Use the factories :meth:`split_range` / :meth:`move_keys`; drive the
    phases yourself (the timed driver interleaves them with load) or
    call :meth:`run` to execute the whole protocol synchronously.
    """

    def __init__(self, cluster: ShardedCluster, table: str,
                 contains: Callable[[Any], bool], src: int, dst: int,
                 database: str,
                 mutate_map: Callable[[Any], None],
                 batch_rows: int = 256, user: str = "admin"):
        if src == dst:
            raise ReshardError("source and destination shard are the same")
        self.cluster = cluster
        spec = cluster.map.spec_of(table)
        if spec is None:
            raise ReshardError(f"table {table!r} is not sharded")
        self.spec = spec
        self.table = spec.table
        self.contains = contains
        self.src = src
        self.dst = dst
        self.database = database
        self.mutate_map = mutate_map
        self.batch_rows = batch_rows
        self.user = user
        self.state = "init"
        self._join_seq = 0
        self._pending: List[Dict[str, Any]] = []
        self._rule: Optional[ForwardingRule] = None
        self.stats: Dict[str, int] = {
            "rows_snapshot": 0, "rows_copied": 0, "entries_joined": 0,
            "catchup_rounds": 0, "entries_in_window": 0, "rows_deleted": 0,
            "flip_version": 0,
        }

    # -- factories ------------------------------------------------------

    @classmethod
    def split_range(cls, cluster: ShardedCluster, table: str, bound: Any,
                    dst: int, database: str,
                    **kwargs) -> "OnlineReshard":
        """Split the range segment containing ``bound`` at ``bound`` and
        move the lower half (keys <= bound within the segment) to shard
        ``dst``."""
        spec = cluster.map.spec_of(table)
        if spec is None or not isinstance(spec.sharder, RangeSharder):
            raise ReshardError(
                f"split_range needs a range-sharded table, got {table!r}")
        sharder = spec.sharder
        segment = sharder.segment_for(bound)
        src = sharder.assignments[segment]
        lower = sharder.bounds[segment - 1] if segment > 0 else None

        def contains(value: Any) -> bool:
            if value is None:
                return segment == 0
            if lower is not None and value <= lower:
                return False
            return value <= bound

        def mutate(new_map) -> None:
            new_map.spec_of(table).sharder.split(bound, dst)

        return cls(cluster, table, contains, src, dst, database, mutate,
                   **kwargs)

    @classmethod
    def move_keys(cls, cluster: ShardedCluster, table: str,
                  keys: Sequence[Any], dst: int, database: str,
                  **kwargs) -> "OnlineReshard":
        """Rebalance an explicit key set (hash-sharded tables move keys
        through per-key overrides).  All keys must currently live on one
        source shard."""
        spec = cluster.map.spec_of(table)
        if spec is None:
            raise ReshardError(f"table {table!r} is not sharded")
        owners = {spec.shard_for(k) for k in keys}
        if len(owners) != 1:
            raise ReshardError(
                f"keys span source shards {sorted(owners)}; move one "
                "source at a time")
        key_set = set(keys)

        def contains(value: Any) -> bool:
            return value in key_set

        def mutate(new_map) -> None:
            new_spec = new_map.spec_of(table)
            for key in key_set:
                new_spec.overrides[key] = dst

        return cls(cluster, table, contains, next(iter(owners)), dst,
                   database, mutate, **kwargs)

    # -- phase 1: snapshot + join point ---------------------------------

    def start(self) -> int:
        """Atomic: capture the recovery-log join point and the snapshot
        of moving rows in the same instant.  Returns the snapshot size."""
        self._require_state("init")
        cluster = self.cluster
        span = cluster.tracer.start_span(
            "reshard.begin", table=self.table, src=self.src, dst=self.dst)
        source = cluster.groups[self.src]
        self._join_seq = source.certifier.current_seq
        rows, columns = self._read_source_rows()
        pk_columns = self._pk_columns(source)
        key_index = [c.lower() for c in columns].index(self.spec.key_column)
        for row in rows:
            if not self.contains(row[key_index]):
                continue
            values = dict(zip([c.lower() for c in columns], row))
            self._pending.append({
                "database": self.database, "table": self.table,
                "op": "INSERT",
                "primary_key": tuple(values.get(c) for c in pk_columns),
                "old_values": None, "new_values": values,
            })
        self.stats["rows_snapshot"] = len(self._pending)
        cluster.map_log.append(
            "reshard_begin", table=self.table, src=self.src, dst=self.dst,
            join_seq=self._join_seq, rows=len(self._pending))
        span.set_tag("rows", len(self._pending))
        span.set_tag("join_seq", self._join_seq)
        span.end()
        self.state = "copying"
        return len(self._pending)

    # -- phase 2: chunked copy ------------------------------------------

    def copy_chunk(self, max_rows: Optional[int] = None) -> int:
        """Install the next snapshot chunk on the destination.  Returns
        the rows installed; 0 means the copy is complete."""
        self._require_state("copying")
        if not self._pending:
            self.state = "copied"
            return 0
        count = max_rows or self.batch_rows
        chunk, self._pending = self._pending[:count], self._pending[count:]
        span = self.cluster.tracer.start_span(
            "reshard.copy", table=self.table, rows=len(chunk),
            remaining=len(self._pending))
        install_unit(self.cluster.groups[self.dst], chunk,
                     tables=[self.table], user=self.user,
                     database=self.database)
        span.end()
        self.stats["rows_copied"] += len(chunk)
        if not self._pending:
            self.state = "copied"
        return len(chunk)

    # -- phase 3: recovery-log join -------------------------------------

    def catch_up(self) -> int:
        """Replay the source recovery-log tail (since the join point,
        filtered to moving keys) onto the destination; advance the join
        point.  Returns the entries applied this round."""
        self._require_state("copied")
        entries, tail_seq = self._tail_entries()
        if entries:
            span = self.cluster.tracer.start_span(
                "reshard.catchup", table=self.table, entries=len(entries),
                from_seq=self._join_seq, to_seq=tail_seq)
            install_unit(self.cluster.groups[self.dst], entries,
                         tables=[self.table], user=self.user,
                         database=self.database)
            span.end()
        self._join_seq = tail_seq
        self.stats["entries_joined"] += len(entries)
        self.stats["catchup_rounds"] += 1
        return len(entries)

    def _tail_entries(self):
        source = self.cluster.groups[self.src]
        key_column = self.spec.key_column
        filtered: List[Dict[str, Any]] = []
        tail_seq = self._join_seq
        for entry in source.recovery_log.entries_since(self._join_seq):
            tail_seq = max(tail_seq, entry.seq)
            if entry.kind != "writeset":
                continue  # DDL broadcasts reached every group directly
            for change in entry.payload:
                if change["table"] != self.table:
                    continue
                values = change.get("new_values") \
                    or change.get("old_values") or {}
                if self.contains(values.get(key_column)):
                    filtered.append(change)
        return filtered, tail_seq

    # -- phase 4: dual-write window -------------------------------------

    def enter_dual_write(self) -> int:
        """Atomic: final catch-up + forwarding-rule installation in one
        instant.  From here on, every client write to a moving key is
        2PC'd to both groups, so the destination can never fall behind
        again."""
        self._require_state("copied")
        final = self.catch_up()
        self._rule = ForwardingRule(self.table, self.contains, self.src,
                                    self.dst)
        self.cluster.forwarding.append(self._rule)
        self.cluster.map_log.append(
            "reshard_dual_write", table=self.table, src=self.src,
            dst=self.dst, join_seq=self._join_seq)
        span = self.cluster.tracer.start_span(
            "reshard.dualwrite", table=self.table, final_catchup=final)
        span.end()
        self.state = "dual_write"
        return final

    # -- phase 5: the flip ----------------------------------------------

    def flip(self) -> int:
        """Atomic ownership transfer: install the successor map (the
        version bump that re-routes *and* re-salts the caches), delete
        the moved rows from the source as one writeset unit, drop the
        forwarding rule.  Returns the new map version.

        Refuses while a write transaction opened under the old routing
        is still in flight — its commit could land a moved row back on
        the source after the delete.  Callers under load retry until
        the pre-flip write epoch has drained (new writes keep flowing
        through the dual-write rule in the meantime)."""
        self._require_state("dual_write")
        cluster = self.cluster
        inflight = cluster.open_write_transactions()
        if inflight:
            raise ReshardError(
                f"{inflight} in-flight write transaction(s) from the "
                "pre-flip epoch; retry the flip after they drain")
        # audit only: entries since the join point were dual-written by
        # the clients themselves, so they are already on the destination
        window_entries, _ = self._tail_entries()
        self.stats["entries_in_window"] = len(window_entries)

        span = cluster.tracer.start_span(
            "reshard.flip", table=self.table, src=self.src, dst=self.dst,
            window_entries=len(window_entries))
        new_map = cluster.map.clone()
        self.mutate_map(new_map)
        cluster.install_map(new_map)
        deletes = self._source_delete_entries()
        if deletes:
            install_unit(cluster.groups[self.src], deletes,
                         tables=[self.table], user=self.user,
                         database=self.database)
        self.stats["rows_deleted"] = len(deletes)
        if self._rule in cluster.forwarding:
            cluster.forwarding.remove(self._rule)
        cluster.map_log.append(
            "reshard_flip", table=self.table, src=self.src, dst=self.dst,
            version=new_map.version, rows_deleted=len(deletes))
        span.set_tag("version", new_map.version)
        span.end()
        self.stats["flip_version"] = new_map.version
        self.state = "done"
        return new_map.version

    # -- convenience ----------------------------------------------------

    def run(self) -> Dict[str, int]:
        """The whole protocol, synchronously (tests and small moves)."""
        self.start()
        while self.state == "copying":
            self.copy_chunk()
        self.catch_up()
        self.enter_dual_write()
        self.flip()
        return dict(self.stats)

    # -- helpers --------------------------------------------------------

    def _require_state(self, expected: str) -> None:
        if self.state != expected:
            raise ReshardError(
                f"phase requires state {expected!r}, but the reshard is "
                f"in state {self.state!r}")

    def _read_source_rows(self):
        source = self.cluster.groups[self.src]
        session = source.connect(user=self.user, database=self.database)
        try:
            result = session.execute(f"SELECT * FROM {self.table}")
            return result.rows, result.columns
        finally:
            session.close()

    def _pk_columns(self, source) -> List[str]:
        engine = source.online_replicas()[0].engine
        table = engine.database(self.database).table(self.table)
        return [c.name.lower() for c in table.primary_key_columns]

    def _source_delete_entries(self) -> List[Dict[str, Any]]:
        rows, columns = self._read_source_rows()
        source = self.cluster.groups[self.src]
        pk_columns = self._pk_columns(source)
        lowered = [c.lower() for c in columns]
        key_index = lowered.index(self.spec.key_column)
        entries = []
        for row in rows:
            if not self.contains(row[key_index]):
                continue
            values = dict(zip(lowered, row))
            entries.append({
                "database": self.database, "table": self.table,
                "op": "DELETE",
                "primary_key": tuple(values.get(c) for c in pk_columns),
                "old_values": values, "new_values": None,
            })
        return entries
