"""Observability subsystem: per-request tracing for the middleware.

See ``docs/OBSERVABILITY.md`` for the user guide and
:mod:`repro.obs.tracing` for the design rationale (paper section 5.1,
Dapper, gray failures).
"""

from .export import (export_tracer, group_by_trace, read_jsonl,
                     spans_to_jsonl, write_jsonl)
from .tracing import NULL_SPAN, Span, Tracer

__all__ = [
    "NULL_SPAN",
    "Span",
    "Tracer",
    "export_tracer",
    "group_by_trace",
    "read_jsonl",
    "spans_to_jsonl",
    "write_jsonl",
]
