"""Trace export/import as JSON lines — one span per line.

Traces must leave the process to be useful: CI uploads them next to the
``BENCH_*.json`` artifacts, and a human (or the E25 benchmark) reads
them back to reconstruct a fault timeline.  JSON lines is the format of
choice because it needs no framing, appends cheaply, greps cleanly, and
the standard library covers it — no dependency, per the repo rule.

Round-trip contract (tested in ``tests/obs/test_tracing.py``): for any
finished span, ``from_dict(json.loads(json.dumps(to_dict(s))))``
preserves ids, parentage, timestamps, tags and events exactly, module
floats' usual caveats aside (we only ever produce floats from the
simulated clock, which are round-trip-exact in IEEE-754).
"""

from __future__ import annotations

import io
import json
from typing import Dict, Iterable, List, TextIO, Union

from .tracing import Span, Tracer


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """Serialize spans to a JSON-lines string (one span per line)."""
    out = io.StringIO()
    write_jsonl(spans, out)
    return out.getvalue()


def write_jsonl(spans: Iterable[Span], fp: TextIO) -> int:
    """Write spans to a text file object; returns the span count."""
    count = 0
    for span in spans:
        fp.write(json.dumps(span.to_dict(), sort_keys=True))
        fp.write("\n")
        count += 1
    return count


def read_jsonl(source: Union[str, TextIO]) -> List[Span]:
    """Parse JSON lines (string or file object) back into detached
    spans, in file order.  Blank lines are skipped."""
    if isinstance(source, str):
        lines: Iterable[str] = source.splitlines()
    else:
        lines = source
    spans: List[Span] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        spans.append(Span.from_dict(json.loads(line)))
    return spans


def group_by_trace(spans: Iterable[Span]) -> Dict[int, List[Span]]:
    """Bucket spans by trace id, preserving input order per trace."""
    traces: Dict[int, List[Span]] = {}
    for span in spans:
        traces.setdefault(span.trace_id, []).append(span)
    return traces


def export_tracer(tracer: Tracer) -> str:
    """All retained finished spans of a tracer, as JSON lines."""
    return spans_to_jsonl(tracer.finished_spans())
