"""Zero-dependency request tracing: spans, traces, bounded retention.

The paper's evaluation agenda (section 5.1) judges replicated middleware
by what happens *inside* a request — "performance in the presence of
failures, performance of degraded modes" — not by aggregate percentiles
alone.  Aggregates cannot explain a single slow request: was it a
freshness wait, a retry backoff while a master was promoted, a breaker
ejection, a stale degraded read?  Per-request span traces (the Dapper
design; see PAPERS.md, and the gray-failure literature that motivates
them) are the standard tool for exactly that analysis, so this module
provides them with the repo's conventions: injected clocks (simulated
time), deterministic ids, no wall-clock reads, no dependencies.

* :class:`Span` — one timed operation: trace id, parent link, start/end
  on the injected clock, tags (key → value) and point-in-time events.
* :class:`Tracer` — creates spans, keeps finished ones grouped by trace
  in a bounded FIFO store (old traces are evicted whole), and exposes
  counters for :meth:`~repro.core.middleware.ReplicationMiddleware.trace_snapshot`.
* :data:`NULL_SPAN` — the no-op span a disabled tracer hands out, so
  instrumentation sites never need an ``if tracing:`` guard.

Span-name conventions (documented in ``docs/OBSERVABILITY.md``):
``request`` (timed-driver root), ``timed.statement`` (simulated service
time for one SQL string), ``mw.statement`` (synchronous middleware
dispatch), ``balancer.choose``, ``replica.execute``, ``certify``,
``propagate`` and ``replica.apply`` (cross-node, linked into the
originating trace so propagation lag is visible in one timeline).
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

Clock = Callable[[], float]

EventTuple = Tuple[float, str, Dict[str, Any]]


class _NullSpan:
    """A no-op span: every operation succeeds and does nothing.

    Falsy, so ``parent or fallback`` chains skip it and
    ``if span:`` guards read naturally at instrumentation sites.
    """

    __slots__ = ()

    trace_id = 0
    span_id = 0
    parent_id: Optional[int] = None
    name = ""
    start = 0.0
    end_time: Optional[float] = 0.0
    tags: Dict[str, Any] = {}
    events: List[EventTuple] = []

    def __bool__(self) -> bool:
        return False

    def set_tag(self, key: str, value: Any) -> "_NullSpan":
        return self

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def end(self, end_time: Optional[float] = None) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def __repr__(self) -> str:
        return "NULL_SPAN"


#: The shared no-op span (singleton; all instances are interchangeable).
NULL_SPAN = _NullSpan()


class Span:
    """One timed operation within a trace."""

    __slots__ = ("tracer", "trace_id", "span_id", "parent_id", "name",
                 "start", "end_time", "tags", "events")

    def __init__(self, tracer: Optional["Tracer"], trace_id: int,
                 span_id: int, parent_id: Optional[int], name: str,
                 start: float, tags: Optional[Dict[str, Any]] = None):
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end_time: Optional[float] = None
        self.tags: Dict[str, Any] = dict(tags or {})
        self.events: List[EventTuple] = []

    # -- recording ----------------------------------------------------------

    def set_tag(self, key: str, value: Any) -> "Span":
        self.tags[key] = value
        return self

    def event(self, name: str, **attrs: Any) -> None:
        """A point-in-time annotation (retry, backoff, breaker rejection,
        degraded read...).  An attr named ``duration`` (seconds) marks a
        *timed* event: latency-breakdown aggregation charges it as its
        own stage (see :mod:`repro.metrics.breakdown`)."""
        time = self.tracer.now() if self.tracer is not None else self.start
        self.events.append((max(time, self.start), name, attrs))

    def end(self, end_time: Optional[float] = None) -> None:
        """Finish the span (idempotent).  End never precedes start, even
        if the injected clock misbehaves."""
        if self.end_time is not None:
            return
        if end_time is None:
            end_time = self.tracer.now() if self.tracer is not None \
                else self.start
        self.end_time = max(float(end_time), self.start)
        if self.tracer is not None:
            self.tracer._finish(self)

    # -- views --------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.end_time is not None

    @property
    def duration(self) -> float:
        if self.end_time is None:
            return 0.0
        return self.end_time - self.start

    def is_root(self) -> bool:
        return self.parent_id is None

    # -- (de)serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end_time,
            "tags": dict(self.tags),
            "events": [[time, name, dict(attrs)]
                       for time, name, attrs in self.events],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        """Rebuild a detached span (no tracer) from :meth:`to_dict`."""
        span = cls(None, payload["trace"], payload["span"],
                   payload.get("parent"), payload["name"],
                   payload["start"], payload.get("tags"))
        span.end_time = payload.get("end")
        span.events = [(time, name, dict(attrs))
                       for time, name, attrs in payload.get("events", [])]
        return span

    def __bool__(self) -> bool:
        return True

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.set_tag("error", exc_type.__name__)
        self.end()

    def __repr__(self) -> str:
        state = f"{self.duration:.6f}s" if self.finished else "open"
        return (f"Span({self.name!r}, trace={self.trace_id}, "
                f"span={self.span_id}, parent={self.parent_id}, {state})")


class Tracer:
    """Creates spans and retains finished ones, grouped by trace.

    * ``clock`` is injected (the repo convention): simulations pass the
      simulated clock, unit tests a manual one; the default never moves.
      :meth:`now` additionally clamps to be monotonically non-decreasing,
      so a misbehaving source can never produce a span that ends before
      it starts or events that run backwards.
    * Retention is bounded *by trace*: the store keeps the most recent
      ``max_traces`` traces (FIFO by trace start) and evicts old ones
      whole; spans finishing into an evicted trace are counted in
      ``stats["spans_dropped"]`` and discarded.
    * Ids are deterministic counters — two seeded runs produce identical
      traces, which is what lets benchmarks assert on them.
    * ``sample_interval`` batches per-request bookkeeping: only every
      Nth *root* span is recorded (the rest return :data:`NULL_SPAN`,
      counted in ``stats["spans_sampled_out"]``), and every child of a
      sampled-out root is free too.  ``1`` (the default) records
      everything; million-session drivers raise it so tracing overhead
      stays flat while a deterministic 1-in-N slice of full request
      timelines is still retained.
    """

    def __init__(self, clock: Optional[Clock] = None, enabled: bool = True,
                 max_traces: int = 512, sample_interval: int = 1):
        if max_traces < 1:
            raise ValueError("max_traces must be >= 1")
        if sample_interval < 1:
            raise ValueError("sample_interval must be >= 1")
        self.clock: Clock = clock or (lambda: 0.0)
        self.enabled = enabled
        self.max_traces = max_traces
        self.sample_interval = sample_interval
        self._roots_seen = 0
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self._last_time = float("-inf")
        self._traces: "OrderedDict[int, List[Span]]" = OrderedDict()
        self.stats: Dict[str, int] = {
            "spans_started": 0, "spans_finished": 0, "spans_dropped": 0,
            "traces_started": 0, "traces_evicted": 0,
            "spans_sampled_out": 0,
        }

    # -- clock --------------------------------------------------------------

    def now(self) -> float:
        time = float(self.clock())
        if time < self._last_time:
            return self._last_time
        self._last_time = time
        return time

    # -- span creation ------------------------------------------------------

    def start_span(self, name: str, parent: Optional[Span] = None,
                   **tags: Any) -> Span:
        """Start a span.  With a (real) ``parent`` the span joins its
        trace; without one it becomes the root of a new trace."""
        if not self.enabled:
            return NULL_SPAN
        if parent is not None and parent:
            trace_id: int = parent.trace_id
            parent_id: Optional[int] = parent.span_id
        else:
            if parent is not None:
                # caller is *inside* a sampled-out trace (its context is
                # the null span): stay dark instead of opening a fresh
                # root mid-request
                return NULL_SPAN
            self._roots_seen += 1
            interval = self.sample_interval
            if interval > 1 and (self._roots_seen - 1) % interval:
                self.stats["spans_sampled_out"] += 1
                return NULL_SPAN
            trace_id = next(self._trace_ids)
            parent_id = None
            self._open_trace(trace_id)
        return self._make(name, trace_id, parent_id, tags)

    def child_span(self, name: str, parent: Optional[Span],
                   **tags: Any) -> Span:
        """A span only if there is a live parent — child-only
        instrumentation sites (balancer, replica execution...) never
        create root-level noise when called outside a request."""
        if not self.enabled or parent is None or not parent:
            return NULL_SPAN
        return self.start_span(name, parent=parent, **tags)

    def start_linked(self, name: str, trace_id: int,
                     parent_id: Optional[int], **tags: Any) -> Span:
        """A span attached to an existing trace by reference — used for
        cross-node work (asynchronous writeset apply) whose parent span
        has long since finished."""
        if not self.enabled:
            return NULL_SPAN
        return self._make(name, trace_id, parent_id, tags)

    def _make(self, name: str, trace_id: int, parent_id: Optional[int],
              tags: Dict[str, Any]) -> Span:
        span = Span(self, trace_id, next(self._span_ids), parent_id, name,
                    self.now(), tags)
        self.stats["spans_started"] += 1
        return span

    # -- retention ----------------------------------------------------------

    def _open_trace(self, trace_id: int) -> None:
        self._traces[trace_id] = []
        self.stats["traces_started"] += 1
        while len(self._traces) > self.max_traces:
            _evicted_id, spans = self._traces.popitem(last=False)
            self.stats["traces_evicted"] += 1
            self.stats["spans_dropped"] += len(spans)

    def _finish(self, span: Span) -> None:
        self.stats["spans_finished"] += 1
        bucket = self._traces.get(span.trace_id)
        if bucket is None:
            # the trace was evicted (or never opened here) — drop late
            # arrivals instead of resurrecting unbounded state
            self.stats["spans_dropped"] += 1
            return
        bucket.append(span)

    # -- views --------------------------------------------------------------

    def trace(self, trace_id: int) -> List[Span]:
        """Finished spans of one retained trace (empty if evicted)."""
        return list(self._traces.get(trace_id, ()))

    def traces(self) -> List[List[Span]]:
        """All retained traces, oldest first, skipping empty ones."""
        return [list(spans) for spans in self._traces.values() if spans]

    def finished_spans(self) -> List[Span]:
        """Every retained finished span, in trace order."""
        spans: List[Span] = []
        for bucket in self._traces.values():
            spans.extend(bucket)
        return spans

    def roots(self) -> List[Span]:
        return [s for s in self.finished_spans() if s.is_root()]

    def snapshot(self) -> Dict[str, int]:
        """Counters + current retention occupancy."""
        snapshot = dict(self.stats)
        snapshot["retained_traces"] = len(self._traces)
        snapshot["retained_spans"] = sum(
            len(b) for b in self._traces.values())
        return snapshot

    def clear(self) -> None:
        """Drop retained traces (counters survive; ids keep counting)."""
        self._traces.clear()
