#!/usr/bin/env python3
"""Compare fresh BENCH_*.json results against committed baselines.

Each perf-smoke benchmark writes a ``BENCH_<exp>.json`` artifact.  This
tool reads ``tools/bench_baselines.json`` — a list of checks per
artifact — and fails (exit 1) when any gated metric regresses past its
tolerance band.  Only robust metrics are gated: ratios between arms
measured in the same process, deterministic simulation outputs, and
invariant counters.  Absolute wall-clock throughput is deliberately NOT
gated — CI runners vary too much for that to be signal.

Check forms (entries in a baseline's ``checks`` list):

  {"metric": "a.b.c", "op": "gte", "value": 1.3}
      fresh value at dotted path ``a.b.c`` must be >= 1.3 (after the
      optional ``rel_tol`` slack: value * (1 - rel_tol)).

  {"metric": "a.b", "op": "lte", "value": 10, "rel_tol": 0.1}
      fresh value must be <= 10 * 1.1.

  {"metric": "a.b", "op": "eq", "value": 0}
      exact match for ints/bools, ``math.isclose`` for floats.

  {"metric_ratio": ["fast.ops", "slow.ops"], "op": "gte", "value": 2.0}
      the ratio of two fresh values is gated instead of either one.

Dotted paths descend dicts by key and lists by integer index.  A path
that does not resolve is itself a failure — a benchmark silently
dropping a gated metric must not pass.

Usage:
  python tools/bench_gate.py                 # gate every baselined file
  python tools/bench_gate.py --only BENCH_e28.json
  python tools/bench_gate.py --allow-missing # skip absent artifacts
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINES = Path(__file__).resolve().parent / "bench_baselines.json"


def resolve(doc, path: str):
    """Walk ``doc`` along a dotted path; integer segments index lists."""
    node = doc
    for segment in path.split("."):
        if isinstance(node, list):
            node = node[int(segment)]
        elif isinstance(node, dict):
            node = node[segment]
        else:
            raise KeyError(segment)
    return node


def _values_equal(fresh, expected) -> bool:
    if isinstance(expected, bool) or isinstance(fresh, bool):
        return fresh is expected
    if isinstance(expected, float) or isinstance(fresh, float):
        return math.isclose(float(fresh), float(expected),
                            rel_tol=1e-9, abs_tol=1e-9)
    return fresh == expected


def evaluate_check(doc, check: dict):
    """Return (ok, label, detail) for one check against one document."""
    rel_tol = float(check.get("rel_tol", 0.0))
    op = check["op"]
    if "metric_ratio" in check:
        num_path, den_path = check["metric_ratio"]
        label = "{} / {}".format(num_path, den_path)
        num = float(resolve(doc, num_path))
        den = float(resolve(doc, den_path))
        if den == 0.0:
            return False, label, "denominator is zero"
        fresh = num / den
    else:
        label = check["metric"]
        fresh = resolve(doc, label)

    expected = check["value"]
    if op == "gte":
        floor = float(expected) * (1.0 - rel_tol)
        ok = float(fresh) >= floor
        detail = "{:.6g} >= {:.6g}".format(float(fresh), floor)
    elif op == "lte":
        ceiling = float(expected) * (1.0 + rel_tol)
        ok = float(fresh) <= ceiling
        detail = "{:.6g} <= {:.6g}".format(float(fresh), ceiling)
    elif op == "eq":
        ok = _values_equal(fresh, expected)
        detail = "{!r} == {!r}".format(fresh, expected)
    else:
        raise ValueError("unknown op: {!r}".format(op))
    return ok, label, detail


def gate_file(bench_path: Path, checks: list) -> list:
    """Evaluate every check for one artifact; returns result rows."""
    doc = json.loads(bench_path.read_text())
    rows = []
    for check in checks:
        try:
            ok, label, detail = evaluate_check(doc, check)
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            label = check.get("metric") or " / ".join(
                check.get("metric_ratio", ["?"]))
            rows.append((False, label, "unresolvable: {!r}".format(exc)))
            continue
        rows.append((ok, label, detail))
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate fresh BENCH_*.json files against baselines.")
    parser.add_argument("--baselines", type=Path, default=DEFAULT_BASELINES,
                        help="baseline spec (default: %(default)s)")
    parser.add_argument("--root", type=Path, default=REPO_ROOT,
                        help="directory holding fresh BENCH_*.json files")
    parser.add_argument("--only", action="append", default=None,
                        metavar="FILE", help="gate only these artifacts "
                        "(repeatable, e.g. --only BENCH_e28.json)")
    parser.add_argument("--allow-missing", action="store_true",
                        help="skip artifacts that were not produced "
                        "instead of failing")
    args = parser.parse_args(argv)

    baselines = json.loads(args.baselines.read_text())
    selected = args.only or sorted(baselines)
    failures = 0
    checked = 0
    for name in selected:
        if name not in baselines:
            print("FAIL {}: no baseline entry".format(name))
            failures += 1
            continue
        bench_path = args.root / name
        if not bench_path.exists():
            if args.allow_missing:
                print("SKIP {}: artifact not present".format(name))
                continue
            print("FAIL {}: artifact not present (run the benchmark "
                  "first)".format(name))
            failures += 1
            continue
        for ok, label, detail in gate_file(
                bench_path, baselines[name]["checks"]):
            checked += 1
            status = "PASS" if ok else "FAIL"
            if not ok:
                failures += 1
            print("{} {}: {}  [{}]".format(status, name, label, detail))

    print("-" * 60)
    print("{} checks, {} failures".format(checked, failures))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
