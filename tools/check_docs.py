#!/usr/bin/env python3
"""Documentation consistency checks, run as a CI job.

Three guarantees, all stdlib:

1. every relative Markdown link in the repo's ``*.md`` files resolves
   to an existing file or directory (external ``http(s)``/``mailto``
   links and pure ``#anchor`` links are skipped);
2. ``docs/ARCHITECTURE.md`` references every package under
   ``src/repro/`` — including nested ones like ``repro.core.consistency``
   — so the architecture guide may not silently fall behind the tree;
   the expected set is derived from the tree at runtime, never from a
   hand-maintained list;
3. every experiment ``benchmarks/test_eNN_*.py`` has a ``| ENN |``
   row in both ``EXPERIMENTS.md`` and ``DESIGN.md``'s per-experiment
   index — the drift E24 once exhibited;
4. every span name the docs advertise exists in the code: inside any
   ``docs/*.md`` section whose heading mentions "span", each backticked
   lowercase dotted token (``mw.statement``, ``shard.2pc.prepare``, …)
   must appear as literal text somewhere under ``src/repro/``.  Module
   paths (``repro.*``) and class attributes (leading capital) are
   exempt.  This is what keeps TOPOLOGY.md's vocabulary honest.

Exit code 0 = all green; 1 = problems, printed one per line.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: [text](target) — good enough for this repo's plain Markdown; code
#: spans are stripped first so `dict[str](x)` examples don't trip it
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_SPAN = re.compile(r"`[^`]*`")
FENCE = re.compile(r"^(```|~~~)")
EXPERIMENT = re.compile(r"test_(e\d{2})_\w+\.py$")

SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules"}
#: machine-generated inputs (paper digests, the PR driver's task file) —
#: they carry extraction artifacts we don't maintain
SKIP_FILES = {"PAPERS.md", "SNIPPETS.md", "ISSUE.md"}


def markdown_files():
    for path in sorted(REPO.rglob("*.md")):
        if path.name in SKIP_FILES:
            continue
        if not SKIP_DIRS.intersection(p.name for p in path.parents):
            yield path


def check_links(problems):
    for path in markdown_files():
        in_fence = False
        for number, line in enumerate(
                path.read_text().splitlines(), start=1):
            if FENCE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in LINK.findall(CODE_SPAN.sub("", line)):
                if target.startswith(("http://", "https://", "mailto:",
                                      "#")):
                    continue
                resolved = (path.parent / target.split("#")[0]).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{path.relative_to(REPO)}:{number}: "
                        f"broken link -> {target}")


def check_architecture_coverage(problems):
    guide = REPO / "docs" / "ARCHITECTURE.md"
    if not guide.exists():
        problems.append("docs/ARCHITECTURE.md is missing")
        return
    text = guide.read_text()
    root = REPO / "src" / "repro"
    packages = sorted(
        ".".join(("repro",) + init.parent.relative_to(root).parts)
        for init in root.rglob("__init__.py")
        if init.parent != root
        and not SKIP_DIRS.intersection(p.name for p in init.parents))
    for package in packages:
        if package not in text:
            problems.append(
                f"docs/ARCHITECTURE.md: package {package} "
                f"is never referenced")


def check_experiment_rows(problems):
    experiments = sorted(
        match.group(1).upper()
        for path in (REPO / "benchmarks").glob("test_e*.py")
        if (match := EXPERIMENT.match(path.name)))
    for doc in ("EXPERIMENTS.md", "DESIGN.md"):
        text = (REPO / doc).read_text()
        for experiment in experiments:
            if f"| {experiment} |" not in text:
                problems.append(
                    f"{doc}: no table row for experiment {experiment}")


#: a span/event name: lowercase dotted identifier inside a code span.
#: One dot minimum — plain words (`retry`, `certify` is referenced
#: dotted nowhere) and snake_case tags don't qualify; `repro.*` module
#: paths are filtered at the call site.
SPAN_TOKEN = re.compile(r"`([a-z][a-z0-9_]*(?:\.[a-z0-9_*]+)+)`")
HEADING = re.compile(r"^#+\s*(.*)")


def check_span_vocabulary(problems):
    root = REPO / "src" / "repro"
    sources = "\n".join(
        path.read_text()
        for path in sorted(root.rglob("*.py"))
        if not SKIP_DIRS.intersection(p.name for p in path.parents))
    for path in sorted((REPO / "docs").glob("*.md")):
        in_span_section = False
        in_fence = False
        for number, line in enumerate(
                path.read_text().splitlines(), start=1):
            if FENCE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            heading = HEADING.match(line)
            if heading:
                in_span_section = "span" in heading.group(1).lower()
                continue
            if not in_span_section:
                continue
            for token in SPAN_TOKEN.findall(line):
                if token.startswith("repro."):
                    continue
                # `reshard.*`-style families check their prefix
                literal = token.rstrip("*").rstrip(".")
                if literal not in sources:
                    problems.append(
                        f"{path.relative_to(REPO)}:{number}: span "
                        f"`{token}` is not emitted anywhere in "
                        f"src/repro/")


def main() -> int:
    problems: list = []
    check_links(problems)
    check_architecture_coverage(problems)
    check_experiment_rows(problems)
    check_span_vocabulary(problems)
    for problem in problems:
        print(problem)
    count = len(problems)
    print(f"check_docs: {count} problem(s)"
          if count else "check_docs: all green")
    return 1 if count else 0


if __name__ == "__main__":
    sys.exit(main())
