"""Timed simulation driver tests."""


from repro.bench import (
    ClosedLoopDriver, LagProbe, OpenLoopDriver, TimedCluster, build_cluster,
    load_workload,
)
from repro.cluster import Environment
from repro.core import CostModel
from repro.workloads import MicroWorkload


def timed_setup(replication="writeset", propagation="async", n=3,
                consistency="gsi", **kwargs):
    env = Environment()
    middleware = build_cluster(
        n, replication=replication, propagation=propagation,
        consistency=consistency, env=env)
    workload = MicroWorkload(rows=60, read_fraction=0.8)
    load_workload(middleware, workload)
    cluster = TimedCluster(env, middleware, **kwargs)
    return env, middleware, workload, cluster


def test_closed_loop_produces_throughput_and_latency():
    env, middleware, workload, cluster = timed_setup()
    driver = ClosedLoopDriver(cluster, workload, clients=4)
    driver.start(duration=3.0)
    env.run(until=3.0)
    cluster.stop()
    metrics = driver.metrics
    assert metrics.throughput.completed > 100
    assert metrics.latency.percentile(50) > 0
    middleware.pump()
    assert middleware.check_convergence()


def test_latency_includes_middleware_overhead():
    env, middleware, workload, cluster = timed_setup(
        cost_model=CostModel(middleware_overhead=0.01))
    driver = ClosedLoopDriver(cluster, workload, clients=1)
    driver.start(duration=2.0)
    env.run(until=2.0)
    cluster.stop()
    # every txn pays at least the configured overhead
    assert driver.metrics.latency.percentile(50) >= 0.01


def test_open_loop_rate_respected_when_underloaded():
    env, middleware, workload, cluster = timed_setup()
    driver = OpenLoopDriver(cluster, workload, rate_tps=100.0)
    driver.start(duration=4.0)
    env.run(until=5.0)
    cluster.stop()
    completed = driver.metrics.throughput.completed
    assert 300 <= completed <= 500  # ~100 tps for 4 s


def test_open_loop_overload_grows_latency():
    """Open-loop overload: latency climbs instead of the generator
    slowing down (section 5.1)."""
    def p95_at(rate):
        env, middleware, workload, cluster = timed_setup(n=1)
        driver = OpenLoopDriver(cluster, workload, rate_tps=rate, seed=3)
        driver.start(duration=3.0)
        env.run(until=3.5)
        cluster.stop()
        return driver.metrics.latency.percentile(95)

    assert p95_at(2000.0) > p95_at(50.0) * 3


def test_serial_apply_lags_parallel_apply():
    """E07 mechanism: one apply worker cannot keep up with a parallel
    master; more workers shrink the lag."""
    def max_lag(parallelism):
        # master/slave: satellites only see the apply stream (section 2.2);
        # apply cost set so a serial applier cannot match the parallel
        # master's commit rate
        from repro.core import CostModel
        env, middleware, workload, cluster = timed_setup(
            apply_parallelism=parallelism, consistency="rsi-pc",
            cost_model=CostModel(writeset_apply=0.004))
        heavy = MicroWorkload(rows=60, read_fraction=0.0)
        driver = ClosedLoopDriver(cluster, heavy, clients=8)
        probe = LagProbe(env, middleware, interval=0.25)
        driver.start(duration=3.0)
        env.run(until=3.0)
        cluster.stop()
        probe.stop()
        return max(series.max() for series in probe.series.values())

    assert max_lag(1) > max_lag(8)


def test_statement_mode_timed_run_converges():
    env, middleware, workload, cluster = timed_setup(
        replication="statement", propagation="sync", consistency=None)
    driver = ClosedLoopDriver(cluster, workload, clients=4)
    driver.start(duration=2.0)
    env.run(until=2.0)
    cluster.stop()
    assert middleware.check_convergence()
    assert driver.metrics.throughput.completed > 50


def test_crash_during_run_counts_errors_not_hang():
    env, middleware, workload, cluster = timed_setup(
        replication="statement", propagation="sync", consistency=None)
    driver = ClosedLoopDriver(cluster, workload, clients=4)

    def fault():
        yield env.timeout(1.0)
        replica = middleware.replicas[0]
        replica.node.crash()
        replica.engine.crash()
        replica.mark_failed()

    env.process(fault())
    driver.start(duration=3.0)
    env.run(until=3.0)
    cluster.stop()
    # survivors keep serving; the run completes without deadlock
    assert driver.metrics.throughput.completed > 50
    survivors = [r for r in middleware.replicas if r.is_online]
    assert len({r.engine.content_signature() for r in survivors}) == 1


def test_run_metrics_split_read_write():
    env, middleware, workload, cluster = timed_setup()
    driver = ClosedLoopDriver(cluster, workload, clients=2)
    driver.start(duration=2.0)
    env.run(until=2.0)
    cluster.stop()
    metrics = driver.metrics
    assert metrics.read_latency.count() > 0
    assert metrics.write_latency.count() > 0
    assert (metrics.read_latency.count() + metrics.write_latency.count()
            == metrics.latency.count())
