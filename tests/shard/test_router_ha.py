"""Router x HA composition: the shard router in front of per-group
active/standby pairs (PR 10, docs/TOPOLOGY.md).

Covers the composed failure matrix's router-side cells: stale-session
re-resolution after a fenced promotion, the retry-after-failover tag on
mid-transaction deaths, presumed abort when a 2PC participant dies
before the decision, decision replay when it dies after, and the
Hypothesis property that overlapping resharding and promotions never
lose an acked autocommit write."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.harness import build_cluster, build_composed_cluster
from repro.core.errors import FencedOut, MiddlewareDown
from repro.ha import HAPair
from repro.shard import (
    HashSharder, OnlineReshard, RangeSharder, ShardedCluster,
)


def make_composed_kv(shards=2, rows=0, replicas=2, sharder=None, **kwargs):
    """A composed ``kv`` cluster: every group behind an HA pair,
    optionally pre-seeded with ``rows`` rows (k, k * 10)."""
    cluster = build_composed_cluster(shards=shards, replicas=replicas,
                                     **kwargs)
    for group in cluster.groups:
        session = group.connect(database="shop")
        session.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
        session.close()
    cluster.register_table("kv", "k", sharder or HashSharder(shards))
    if rows:
        session = cluster.connect(database="shop")
        for k in range(rows):
            session.execute(f"INSERT INTO kv (k, v) VALUES ({k}, {k * 10})")
        session.close()
    return cluster


def _value(cluster, key):
    session = cluster.connect(database="shop")
    try:
        return session.execute(
            f"SELECT v FROM kv WHERE k = {key}").rows[0][0]
    finally:
        session.close()


# ---------------------------------------------------------------------------
# re-resolution after promotion
# ---------------------------------------------------------------------------

def test_cached_session_rebinds_to_promoted_leader():
    """A fenced switchover repoints the router's group registry; a
    session holding a cached connection to the deposed leader must
    transparently rebind, not fail the next statement."""
    cluster = make_composed_kv(rows=4)
    session = cluster.connect(database="shop")
    assert session.execute("SELECT v FROM kv WHERE k = 0").rows[0][0] == 0
    old_leader = cluster.groups[0]
    cluster.pairs[0].promote()
    assert cluster.groups[0] is not old_leader
    assert cluster.stats["group_promotions"] == 1
    # same session, same statement — now answered by the new leader
    assert session.execute("SELECT v FROM kv WHERE k = 0").rows[0][0] == 0
    assert session.execute("UPDATE kv SET v = 5 WHERE k = 0").rowcount == 1
    assert _value(cluster, 0) == 5


def test_kill_then_promote_keeps_autocommit_traffic_flowing():
    cluster = make_composed_kv(rows=4)
    session = cluster.connect(database="shop")
    session.execute("UPDATE kv SET v = 1 WHERE k = 0")
    cluster.pairs[0].kill_active()
    cluster.pairs[0].promote()
    # the cached group session died with the leader; autocommit traffic
    # reconnects without surfacing the failover
    assert session.execute("SELECT v FROM kv WHERE k = 0").rows[0][0] == 1
    # scatter reads span the promoted group too
    total = session.execute("SELECT SUM(v) FROM kv").rows[0][0]
    assert total == 1 + 10 + 20 + 30
    assert cluster.check_convergence()


def test_unwatched_fencedout_is_tagged_retry_after_failover():
    """A bare (pair-less) registry entry whose leader got fenced by an
    external promotion: the router cannot reroute on its own, but the
    error it surfaces must carry the retry-after-failover contract, and
    ``attach_pair`` must restore service."""
    groups = [build_cluster(2, replication="writeset", consistency="gsi",
                            name=f"bare{i}") for i in range(2)]
    cluster = ShardedCluster(groups, name="bare")
    for group in cluster.groups:
        s = group.connect(database="shop")
        s.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
        s.close()
    cluster.register_table("kv", "k", HashSharder(2))
    session = cluster.connect(database="shop")
    session.execute("INSERT INTO kv (k, v) VALUES (0, 0)")
    pair = HAPair(groups[0])        # built behind the router's back
    pair.promote()                   # fences the registered leader
    with pytest.raises(FencedOut) as info:
        session.execute("SELECT v FROM kv WHERE k = 0")
    assert getattr(info.value, "retry_after_failover", False)
    cluster.attach_pair(0, pair)     # operator hands the router the pair
    assert session.execute("SELECT v FROM kv WHERE k = 0").rows[0][0] == 0
    assert cluster.stats["group_promotions"] == 0  # promoted before watch


def test_midtxn_failover_raises_retryable_and_loses_nothing():
    cluster = make_composed_kv(rows=4)
    session = cluster.connect(database="shop")
    session.execute("BEGIN")
    session.execute("UPDATE kv SET v = 99 WHERE k = 0")
    cluster.pairs[0].kill_active()
    cluster.pairs[0].promote()
    with pytest.raises(MiddlewareDown) as info:
        session.execute("UPDATE kv SET v = 98 WHERE k = 0")
    assert getattr(info.value, "retry_after_failover", False)
    session.rollback()
    # the uncommitted write died with the leader's soft state
    assert _value(cluster, 0) == 0
    assert cluster.check_convergence()


# ---------------------------------------------------------------------------
# 2PC participant death: presumed abort before the decision...
# ---------------------------------------------------------------------------

def test_participant_death_before_decision_aborts_everywhere():
    cluster = make_composed_kv(rows=4)
    session = cluster.connect(database="shop")
    session.execute("BEGIN")
    session.execute("UPDATE kv SET v = 1 WHERE k = 0")   # group 0
    session.execute("UPDATE kv SET v = 1 WHERE k = 1")   # group 1
    cluster.pairs[1].kill_active()   # dies before COMMIT reaches it
    with pytest.raises(MiddlewareDown) as info:
        session.execute("COMMIT")
    assert getattr(info.value, "retry_after_failover", False)
    assert not session.in_transaction
    assert cluster.twopc.stats["aborts"] == 1
    cluster.pairs[1].promote()
    # presumed abort: NEITHER side kept the write — the survivor's
    # prepared entry was rescinded, the dead group's pending prepare
    # was dropped at promotion
    assert _value(cluster, 0) == 0
    assert _value(cluster, 1) == 10
    assert cluster.check_convergence()
    # the client replays the whole transaction and it commits once
    retry = cluster.connect(database="shop")
    retry.execute("BEGIN")
    retry.execute("UPDATE kv SET v = 1 WHERE k = 0")
    retry.execute("UPDATE kv SET v = 1 WHERE k = 1")
    retry.execute("COMMIT")
    assert _value(cluster, 0) == 1
    assert _value(cluster, 1) == 1
    assert cluster.check_convergence()


# ---------------------------------------------------------------------------
# ...and decision replay after it
# ---------------------------------------------------------------------------

def test_participant_death_after_decision_replays_commit():
    """The coordinator decided commit, group 0 committed, then group 1's
    middleware died before committing its prepared entry.  The durable
    decision record replays onto the promoted leader — both sides end
    committed exactly once, never one-sided."""
    cluster = make_composed_kv(rows=4)
    session = cluster.connect(database="shop")
    session.execute("BEGIN")
    session.execute("UPDATE kv SET v = 1 WHERE k = 0")   # group 0
    session.execute("UPDATE kv SET v = 1 WHERE k = 1")   # group 1

    group0 = cluster.groups[0]
    original = group0.group_commit.commit_prepared

    def commit_then_kill_other(request, seq):
        result = original(request, seq)
        cluster.pairs[1].kill_active()
        cluster.pairs[1].promote()
        return result

    group0.group_commit.commit_prepared = commit_then_kill_other
    try:
        session.execute("COMMIT")    # must succeed, not raise
    finally:
        group0.group_commit.commit_prepared = original

    assert cluster.twopc.stats["decision_replays"] == 1
    assert cluster.stats["twopc_commits"] == 1
    assert _value(cluster, 0) == 1
    assert _value(cluster, 1) == 1
    assert cluster.check_convergence()


# ---------------------------------------------------------------------------
# property: overlapping reshard + promotions never lose an acked commit
# ---------------------------------------------------------------------------

PROP_KEYS = 8


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_overlap_of_reshard_and_promotion_never_loses_acked_writes(data):
    """Random interleavings of autocommit writes, per-group
    kill+promote cycles, and the online-reshard phase machine: every
    acknowledged write must appear in the final table exactly once,
    whatever overlapped with what."""
    cluster = make_composed_kv(
        shards=2, sharder=RangeSharder([999], [0, 1]))
    seed = cluster.connect(database="shop")
    for k in range(PROP_KEYS):
        seed.execute(f"INSERT INTO kv (k, v) VALUES ({k}, 0)")
    seed.close()
    session = cluster.connect(database="shop")

    move = None
    phase = "idle"

    def reshard_step():
        nonlocal move, phase
        if phase == "idle":
            move = OnlineReshard.split_range(
                cluster, "kv", PROP_KEYS // 2 - 1, dst=1, database="shop")
            move.start()
            phase = "copying"
        elif phase == "copying":
            move.copy_chunk(2)
            if move.state != "copying":
                phase = "copied"
        elif phase == "copied":
            if move.catch_up() == 0:
                move.enter_dual_write()
                phase = "dual"
        elif phase == "dual":
            move.flip()     # autocommit-only load: the epoch is drained
            phase = "done"

    events = data.draw(st.lists(
        st.sampled_from(["write", "promote0", "promote1", "reshard"]),
        min_size=5, max_size=40))
    acked = 0
    for event in events:
        if event == "write":
            key = data.draw(st.integers(0, PROP_KEYS - 1))
            session.execute(f"UPDATE kv SET v = v + 1 WHERE k = {key}")
            acked += 1
        elif event == "reshard":
            reshard_step()
        else:
            index = int(event[-1])
            pair = cluster.pairs[index]
            pair.kill_active()
            pair.promote()
            cluster.attach_pair(index, HAPair(cluster.groups[index]))
    while phase != "done":     # finish the move so ownership is settled
        reshard_step()

    total = session.execute("SELECT SUM(v) FROM kv").rows[0][0] or 0
    count = session.execute("SELECT COUNT(*) FROM kv").rows[0][0]
    assert count == PROP_KEYS
    assert total == acked, \
        f"acked {acked} writes but the table sums to {total}"
    assert cluster.map.version == 2
    assert cluster.check_convergence()
