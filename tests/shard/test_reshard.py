"""Online resharding: range splits and key moves under interleaved
writes, the dual-write window, the epoch-drained flip, and cache
freshness across the map version bump."""

import pytest

from repro.cache import ResultCacheConfig
from repro.shard import OnlineReshard, ReshardError

from .conftest import make_kv_cluster
from repro.shard import RangeSharder


def _kv(cluster, group):
    session = cluster.groups[group].connect(database="shop")
    try:
        return dict(session.execute("SELECT k, v FROM kv").rows)
    finally:
        session.close()


def test_split_range_with_interleaved_writes(range_cluster):
    cluster = range_cluster
    session = cluster.connect(database="shop")
    move = OnlineReshard.split_range(cluster, "kv", 9, dst=1,
                                     database="shop")
    assert move.start() == 10  # keys 0..9 move
    # writes keep flowing during the copy — they land in the recovery
    # log after the join point and arrive via catch-up
    session.execute("UPDATE kv SET v = v + 1 WHERE k = 3")
    while move.state == "copying":
        move.copy_chunk(4)
    move.catch_up()
    move.enter_dual_write()
    # a write inside the window is dual-written by the client itself
    session.execute("UPDATE kv SET v = v + 1 WHERE k = 5")
    version = move.flip()
    assert cluster.map.version == version == 2
    assert move.stats["rows_copied"] == 10
    assert move.stats["entries_joined"] >= 1
    assert move.stats["rows_deleted"] == 10
    # nothing lost, nothing duplicated, every value current
    assert session.execute("SELECT COUNT(*) FROM kv").rows == [(20,)]
    assert session.execute("SELECT v FROM kv WHERE k = 3").rows == [(31,)]
    assert session.execute("SELECT v FROM kv WHERE k = 5").rows == [(51,)]
    # ownership really moved: ten rows on each group, none shared
    assert set(_kv(cluster, 0)) == {k for k in range(10, 20)}
    assert set(_kv(cluster, 1)) == {k for k in range(10)}
    assert cluster.map.shard_of("kv", 5) == 1
    assert cluster.map.shard_of("kv", 15) == 0
    assert cluster.check_convergence()
    assert not cluster.forwarding


def test_move_keys_rebalances_hash_shards():
    cluster = make_kv_cluster(shards=2, rows=10)
    # keys 0, 2, 4 live on hash shard 0; move 0 and 2 to shard 1
    move = OnlineReshard.move_keys(cluster, "kv", [0, 2], dst=1,
                                   database="shop")
    stats = move.run()
    assert stats["rows_snapshot"] == 2
    assert cluster.map.shard_of("kv", 0) == 1
    assert cluster.map.shard_of("kv", 2) == 1
    assert cluster.map.shard_of("kv", 4) == 0  # untouched
    session = cluster.connect(database="shop")
    assert session.execute("SELECT COUNT(*) FROM kv").rows == [(10,)]
    assert session.execute("SELECT v FROM kv WHERE k = 0").rows == [(0,)]
    assert 0 in _kv(cluster, 1) and 0 not in _kv(cluster, 0)
    assert cluster.check_convergence()


def test_move_keys_requires_single_source(hash_cluster):
    with pytest.raises(ReshardError, match="span"):
        OnlineReshard.move_keys(hash_cluster, "kv", [0, 1], dst=1,
                                database="shop")


def test_phases_enforce_order(range_cluster):
    move = OnlineReshard.split_range(range_cluster, "kv", 9, dst=1,
                                     database="shop")
    with pytest.raises(ReshardError, match="state 'copying'"):
        move.copy_chunk()
    with pytest.raises(ReshardError, match="state 'copied'"):
        move.catch_up()
    with pytest.raises(ReshardError, match="state 'dual_write'"):
        move.flip()
    move.start()
    with pytest.raises(ReshardError, match="state 'init'"):
        move.start()


def test_dual_write_window_counts_rows_once(range_cluster):
    cluster = range_cluster
    session = cluster.connect(database="shop")
    move = OnlineReshard.split_range(cluster, "kv", 9, dst=1,
                                     database="shop")
    move.start()
    while move.state == "copying":
        move.copy_chunk()
    move.catch_up()
    move.enter_dual_write()
    # moving rows exist on BOTH groups now, but scatter reads skip the
    # dual-write destination, so aggregates stay exact
    assert session.execute("SELECT COUNT(*) FROM kv").rows == [(20,)]
    # pinned reads still go to the source (the owner until the flip)
    before = cluster.stats["single_shard"]
    assert session.execute("SELECT v FROM kv WHERE k = 5").rows == [(50,)]
    assert cluster.stats["single_shard"] == before + 1
    # a write in the window is a 2PC to both copies
    twopc_before = cluster.stats["twopc_commits"]
    session.execute("UPDATE kv SET v = 1 WHERE k = 5")
    assert cluster.stats["twopc_commits"] == twopc_before + 1
    assert cluster.stats["dual_writes"] >= 1
    assert _kv(cluster, 0)[5] == _kv(cluster, 1)[5] == 1
    move.flip()
    assert cluster.check_convergence()


def test_flip_waits_for_write_epoch_to_drain(range_cluster):
    cluster = range_cluster
    move = OnlineReshard.split_range(cluster, "kv", 9, dst=1,
                                     database="shop")
    move.start()
    while move.state == "copying":
        move.copy_chunk()
    move.catch_up()
    move.enter_dual_write()
    writer = cluster.connect(database="shop")
    writer.execute("BEGIN")
    writer.execute("UPDATE kv SET v = 99 WHERE k = 15")
    with pytest.raises(ReshardError, match="in-flight write"):
        move.flip()
    # readers do not hold up the flip
    reader = cluster.connect(database="shop")
    reader.execute("BEGIN")
    reader.execute("SELECT v FROM kv WHERE k = 15")
    writer.execute("COMMIT")
    version = move.flip()
    assert cluster.map.version == version
    assert _kv(cluster, 0)[15] == 99
    assert cluster.check_convergence()


def test_no_stale_reads_of_moved_keys_through_cache():
    cluster = make_kv_cluster(
        shards=2, sharder=RangeSharder([999], [0, 1]), rows=20,
        result_cache=ResultCacheConfig(capacity=64))
    session = cluster.connect(database="shop")
    # warm the source group's cache for a moving key under version 1
    assert session.execute("SELECT v FROM kv WHERE k = 5").rows == [(50,)]
    assert session.execute("SELECT v FROM kv WHERE k = 5").rows == [(50,)]
    assert cluster.groups[0].result_cache.stats["hits"] >= 1
    move = OnlineReshard.split_range(cluster, "kv", 9, dst=1,
                                     database="shop")
    move.start()
    while move.state == "copying":
        move.copy_chunk()
    move.catch_up()
    move.enter_dual_write()
    session.execute("UPDATE kv SET v = 51 WHERE k = 5")
    move.flip()
    # post-flip the key routes to the destination AND the old cache
    # entry (keyed under map version 1 on the source) is unreachable
    assert session.execute("SELECT v FROM kv WHERE k = 5").rows == [(51,)]
    # repeated reads refill under the new version and stay fresh
    assert session.execute("SELECT v FROM kv WHERE k = 5").rows == [(51,)]


def test_reshard_map_log_trail(range_cluster):
    move = OnlineReshard.split_range(range_cluster, "kv", 9, dst=1,
                                     database="shop")
    move.run()
    kinds = [r.kind for r in range_cluster.map_log.records]
    for expected in ("reshard_begin", "reshard_dual_write",
                     "reshard_flip", "map_install"):
        assert expected in kinds
    flip = range_cluster.map_log.of_kind("reshard_flip")[-1]
    assert flip.payload["version"] == 2
    assert flip.payload["rows_deleted"] == 10
    spans = {s.name for s in range_cluster.tracer.finished_spans()}
    assert {"reshard.begin", "reshard.copy", "reshard.dualwrite",
            "reshard.flip"} <= spans
