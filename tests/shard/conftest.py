"""Shared builders for the shard-tier tests."""

import pytest

from repro.bench.harness import build_sharded_cluster
from repro.shard import HashSharder, RangeSharder


def make_kv_cluster(shards=2, sharder=None, rows=0, replicas=2, **kwargs):
    """A sharded ``kv (k INT PRIMARY KEY, v INT)`` cluster, optionally
    pre-seeded with ``rows`` rows (k, k * 10) routed through the tier."""
    cluster = build_sharded_cluster(shards=shards, replicas=replicas,
                                    **kwargs)
    for group in cluster.groups:
        session = group.connect(database="shop")
        session.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
        session.close()
    cluster.register_table("kv", "k", sharder or HashSharder(shards))
    if rows:
        session = cluster.connect(database="shop")
        for k in range(rows):
            session.execute(
                f"INSERT INTO kv (k, v) VALUES ({k}, {k * 10})")
        session.close()
    return cluster


@pytest.fixture
def hash_cluster():
    """Two hash shards, ten seeded rows."""
    return make_kv_cluster(shards=2, rows=10)


@pytest.fixture
def range_cluster():
    """Two range shards — one live segment on shard 0, so splits have
    somewhere to move keys to."""
    return make_kv_cluster(
        shards=2, sharder=RangeSharder([999], [0, 1]), rows=20)
