"""Shard-aware routing: key pinning, scatter-gather merges, NULL and
parameterized shard keys, and the map-version flip (routing + cache)."""

import pytest

from repro.cache import ResultCacheConfig
from repro.core.errors import MiddlewareDown, UnsupportedStatementError
from repro.shard import HashSharder

from .conftest import make_kv_cluster


# ---------------------------------------------------------------------------
# key pinning
# ---------------------------------------------------------------------------

def test_point_read_pins_one_shard(hash_cluster):
    session = hash_cluster.connect(database="shop")
    before = hash_cluster.stats["single_shard"]
    assert session.execute("SELECT v FROM kv WHERE k = 3").rows == [(30,)]
    assert hash_cluster.stats["single_shard"] == before + 1


def test_in_list_spanning_shards_scatters_only_owners():
    # 4 shards: keys 0 and 4 share shard 0, key 1 lives on shard 1 —
    # the IN-list pins exactly two of the four groups
    cluster = make_kv_cluster(shards=4, rows=8)
    session = cluster.connect(database="shop")
    before = dict(cluster.stats)
    result = session.execute(
        "SELECT v FROM kv WHERE k IN (0, 4, 1) ORDER BY v")
    assert result.rows == [(0,), (10,), (40,)]
    assert cluster.stats["scatter_reads"] == before["scatter_reads"] + 1
    # only the owning groups were touched: groups 2 and 3 never got a
    # session
    assert set(session._sessions) == {0, 1}


def test_in_list_on_one_shard_stays_single():
    cluster = make_kv_cluster(shards=2, rows=10)
    session = cluster.connect(database="shop")
    before = cluster.stats["single_shard"]
    # 0, 2, 4 all hash to shard 0
    result = session.execute("SELECT SUM(v) FROM kv WHERE k IN (0, 2, 4)")
    assert result.rows == [(60,)]
    assert cluster.stats["single_shard"] == before + 1


def test_unpinned_read_scatters_everywhere(hash_cluster):
    session = hash_cluster.connect(database="shop")
    assert session.execute("SELECT COUNT(*) FROM kv").rows == [(10,)]
    assert hash_cluster.stats["scatter_reads"] == 1
    assert set(session._sessions) == {0, 1}


# ---------------------------------------------------------------------------
# scatter-gather merge semantics
# ---------------------------------------------------------------------------

def test_avg_is_rewritten_not_averaged(hash_cluster):
    session = hash_cluster.connect(database="shop")
    # naive avg-of-averages would weight each shard equally regardless
    # of row counts; the planner rewrites AVG to SUM + COUNT
    assert session.execute("SELECT AVG(v) FROM kv").rows == [(45.0,)]


def test_limit_reapplied_after_global_resort(hash_cluster):
    session = hash_cluster.connect(database="shop")
    result = session.execute("SELECT k FROM kv ORDER BY v DESC LIMIT 3")
    assert [row[0] for row in result.rows] == [9, 8, 7]


def test_order_by_unselected_column(hash_cluster):
    # the sort key is not in the select list: the planner ships it as a
    # hidden column and projects it back out after the merge
    session = hash_cluster.connect(database="shop")
    result = session.execute("SELECT k FROM kv ORDER BY v ASC LIMIT 2")
    assert result.rows == [(0,), (1,)]
    assert len(result.rows[0]) == 1


def test_grouped_aggregate_merges_across_shards():
    cluster = make_kv_cluster(shards=2)
    session = cluster.connect(database="shop")
    for k in range(10):
        session.execute(
            f"INSERT INTO kv (k, v) VALUES ({k}, {k % 2})")
    result = session.execute(
        "SELECT v, COUNT(*), SUM(v) FROM kv GROUP BY v ORDER BY v")
    # each group's partial rows span both shards and regroup globally
    assert result.rows == [(0, 5, 0), (1, 5, 5)]


# ---------------------------------------------------------------------------
# NULL / absent / parameterized shard keys
# ---------------------------------------------------------------------------

def test_null_shard_key_lands_on_shard_zero(hash_cluster):
    # shard key that is not the primary key, so NULL is a legal value
    for group in hash_cluster.groups:
        direct = group.connect(database="shop")
        direct.execute("CREATE TABLE ev "
                       "(id INT PRIMARY KEY, region VARCHAR(10), n INT)")
        direct.close()
    hash_cluster.register_table("ev", "region", HashSharder(2))
    session = hash_cluster.connect(database="shop")
    session.execute("INSERT INTO ev (id, region, n) VALUES (1, NULL, 777)")
    # NULL hashes to shard 0 deterministically — never an error, never
    # a random shard
    group0 = hash_cluster.groups[0].connect(database="shop")
    assert group0.execute(
        "SELECT n FROM ev WHERE region IS NULL").rows == [(777,)]
    group1 = hash_cluster.groups[1].connect(database="shop")
    assert group1.execute(
        "SELECT n FROM ev WHERE region IS NULL").rows == []
    # and the tier still finds it via scatter
    assert session.execute("SELECT n FROM ev").rows == [(777,)]


def test_insert_without_shard_key_column_is_rejected(hash_cluster):
    session = hash_cluster.connect(database="shop")
    with pytest.raises(UnsupportedStatementError, match="shard key"):
        session.execute("INSERT INTO kv (v) VALUES (1)")
    with pytest.raises(UnsupportedStatementError, match="columns"):
        session.execute("INSERT INTO kv VALUES (99, 1)")


def test_parameterized_shard_key_routes_like_literal():
    cluster = make_kv_cluster(shards=2, rows=10)
    session = cluster.connect(database="shop")
    assert session.execute(
        "SELECT v FROM kv WHERE k = ?", [3]).rows == [(30,)]
    assert cluster.stats["single_shard"] >= 1
    assert cluster.stats["scatter_reads"] == 0
    session.execute("UPDATE kv SET v = ? WHERE k = ?", [31, 3])
    assert session.execute(
        "SELECT v FROM kv WHERE k = ?", [3]).rows == [(31,)]
    session.execute("INSERT INTO kv (k, v) VALUES (?, ?)", [100, 1])
    owner = cluster.map.shard_of("kv", 100)
    direct = cluster.groups[owner].connect(database="shop")
    assert direct.execute(
        "SELECT v FROM kv WHERE k = 100").rows == [(1,)]


def test_multi_row_insert_splits_rows_by_owner(hash_cluster):
    session = hash_cluster.connect(database="shop")
    result = session.execute(
        "INSERT INTO kv (k, v) VALUES (20, 1), (21, 1), (22, 1)")
    assert result.rowcount == 3
    for key in (20, 21, 22):
        owner = hash_cluster.map.shard_of("kv", key)
        other = hash_cluster.groups[1 - owner].connect(database="shop")
        assert other.execute(
            f"SELECT v FROM kv WHERE k = {key}").rows == []
    assert hash_cluster.check_convergence()


# ---------------------------------------------------------------------------
# global tables, DDL, session lifecycle
# ---------------------------------------------------------------------------

def test_unsharded_table_broadcasts_writes_and_reads_one(hash_cluster):
    session = hash_cluster.connect(database="shop")
    session.execute("CREATE TABLE cfg (id INT PRIMARY KEY, x INT)")
    session.execute("INSERT INTO cfg (id, x) VALUES (1, 5)")
    for group in hash_cluster.groups:
        direct = group.connect(database="shop")
        assert direct.execute("SELECT x FROM cfg").rows == [(5,)]
    before = dict(hash_cluster.stats)
    assert session.execute("SELECT x FROM cfg WHERE id = 1").rows == [(5,)]
    assert hash_cluster.stats["scatter_reads"] == before["scatter_reads"]


def test_closed_session_raises(hash_cluster):
    session = hash_cluster.connect(database="shop")
    session.close()
    with pytest.raises(MiddlewareDown):
        session.execute("SELECT 1")


# ---------------------------------------------------------------------------
# map-version flips
# ---------------------------------------------------------------------------

def test_map_version_bump_redirects_open_session():
    cluster = make_kv_cluster(shards=2, rows=0)
    session = cluster.connect(database="shop")
    session.execute("INSERT INTO kv (k, v) VALUES (3, 30)")
    old_owner = cluster.map.shard_of("kv", 3)
    new_owner = 1 - old_owner
    # move key 3 by override in a cloned map (what a rebalance installs)
    new_map = cluster.map.clone()
    new_map.spec_of("kv").overrides[3] = new_owner
    cluster.install_map(new_map)
    assert cluster.map.version == 2
    # the already-open session routes by the *new* map immediately
    session.execute("INSERT INTO kv (k, v) VALUES (?, ?)", [300, 1])
    assert cluster.map.shard_of("kv", 3) == new_owner
    before = cluster.stats["single_shard"]
    session.execute("SELECT v FROM kv WHERE k = 3")
    assert cluster.stats["single_shard"] == before + 1
    assert session._sessions[new_owner] is not None


def test_map_flip_salts_result_cache_keys():
    cluster = make_kv_cluster(
        shards=2, rows=10, result_cache=ResultCacheConfig(capacity=64))
    session = cluster.connect(database="shop")
    owner = cluster.map.shard_of("kv", 3)
    cache = cluster.groups[owner].result_cache
    session.execute("SELECT v FROM kv WHERE k = 3")
    hits = cache.stats["hits"]
    session.execute("SELECT v FROM kv WHERE k = 3")
    assert cache.stats["hits"] == hits + 1  # warm under version 1
    cluster.install_map(cluster.map.clone())  # flip to version 2
    fills = cache.stats["fills"]
    session.execute("SELECT v FROM kv WHERE k = 3")
    # the old entry is unreachable: same SQL now misses and refills
    assert cache.stats["hits"] == hits + 1
    assert cache.stats["fills"] == fills + 1


def test_install_map_must_advance_version(hash_cluster):
    with pytest.raises(ValueError, match="version"):
        hash_cluster.install_map(hash_cluster.map)


def test_map_log_records_installs_and_registrations(hash_cluster):
    kinds = [record.kind for record in hash_cluster.map_log.records]
    assert kinds[0] == "map_install"
    assert "table_registered" in kinds
    hash_cluster.install_map(hash_cluster.map.clone())
    assert hash_cluster.map_log.of_kind("map_install")[-1].payload[
        "version"] == 2


def test_route_spans_emitted(hash_cluster):
    session = hash_cluster.connect(database="shop")
    session.execute("SELECT v FROM kv WHERE k = 3")
    session.execute("SELECT COUNT(*) FROM kv")
    spans = [span for span in hash_cluster.tracer.finished_spans()
             if span.name == "shard.route"]
    kinds = {span.tags.get("kind") for span in spans}
    assert {"single", "scatter"} <= kinds
    assert all(span.tags.get("map_version") == 1 for span in spans)


def test_rejects_non_writeset_groups():
    from repro.bench.harness import build_cluster
    from repro.shard import ShardedCluster
    groups = [build_cluster(2, replication="statement", name="stmt")]
    with pytest.raises(ValueError, match="writeset"):
        ShardedCluster(groups)


def test_hash_sharder_spreads_keys():
    sharder = HashSharder(4)
    owners = {sharder.shard_for(k) for k in range(32)}
    assert owners == {0, 1, 2, 3}
    assert sharder.shard_for(None) == 0
    assert sharder.shard_for("alice") == sharder.shard_for("alice")
