"""Cross-shard 2PC: atomicity, decision records, presumed abort, the
rescind/no-op resolution path, and the certification-equivalence
property (2PC on one shard decides exactly what that group's ordinary
pipeline would)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.harness import build_cluster
from repro.ha import HAPair
from repro.sqlengine import LockConflict, SerializationError

from .conftest import make_kv_cluster


def _values(cluster, group, keys):
    session = cluster.groups[group].connect(database="shop")
    try:
        return {
            k: session.execute(
                f"SELECT v FROM kv WHERE k = {k}").rows[0][0]
            for k in keys
        }
    finally:
        session.close()


# ---------------------------------------------------------------------------
# commit / abort atomicity
# ---------------------------------------------------------------------------

def test_cross_shard_commit_is_atomic(hash_cluster):
    session = hash_cluster.connect(database="shop")
    session.execute("BEGIN")
    session.execute("UPDATE kv SET v = 1 WHERE k = 0")  # shard 0
    session.execute("UPDATE kv SET v = 1 WHERE k = 1")  # shard 1
    session.execute("COMMIT")
    assert hash_cluster.stats["twopc_commits"] == 1
    assert hash_cluster.twopc.stats["commits"] == 1
    assert hash_cluster.twopc.stats["prepares"] == 2
    assert _values(hash_cluster, 0, [0]) == {0: 1}
    assert _values(hash_cluster, 1, [1]) == {1: 1}
    assert hash_cluster.check_convergence()
    record = hash_cluster.map_log.of_kind("2pc_decision")[-1]
    assert record.payload["decision"] == "commit"
    assert len(record.payload["seqs"]) == 2


def test_conflict_aborts_all_participants(hash_cluster):
    a = hash_cluster.connect(database="shop")
    b = hash_cluster.connect(database="shop")
    a.execute("BEGIN")
    a.execute("UPDATE kv SET v = 100 WHERE k = 0")
    a.execute("UPDATE kv SET v = 100 WHERE k = 1")
    # b commits k=0 first: first-committer-wins aborts a's 2PC
    b.execute("UPDATE kv SET v = 7 WHERE k = 0")
    with pytest.raises(SerializationError, match="2pc"):
        a.execute("COMMIT")
    assert not a.in_transaction
    # neither shard kept a's writes — including the one that certified
    # fine on its own shard
    assert _values(hash_cluster, 0, [0]) == {0: 7}
    assert _values(hash_cluster, 1, [1]) == {1: 10}
    assert hash_cluster.twopc.stats["aborts"] == 1
    assert hash_cluster.map_log.of_kind("2pc_decision")[-1].payload[
        "decision"] == "abort"
    assert hash_cluster.check_convergence()
    # the aborted session is reusable
    a.execute("UPDATE kv SET v = 8 WHERE k = 0")
    assert _values(hash_cluster, 0, [0]) == {0: 8}


def test_single_shard_transaction_skips_2pc(hash_cluster):
    session = hash_cluster.connect(database="shop")
    session.execute("BEGIN")
    session.execute("UPDATE kv SET v = 5 WHERE k = 0")
    session.execute("UPDATE kv SET v = 5 WHERE k = 2")  # same shard
    session.execute("COMMIT")
    assert hash_cluster.stats["single_shard_commits"] == 1
    assert hash_cluster.stats["twopc_commits"] == 0
    assert hash_cluster.twopc.stats["prepares"] == 0
    assert hash_cluster.map_log.of_kind("2pc_decision") == []


def test_read_only_groups_never_prepare(hash_cluster):
    session = hash_cluster.connect(database="shop")
    session.execute("BEGIN")
    session.execute("SELECT v FROM kv WHERE k = 1")     # read on shard 1
    session.execute("UPDATE kv SET v = 9 WHERE k = 0")  # write on shard 0
    session.execute("COMMIT")
    # the read-only participant commits locally, no 2PC involved
    assert hash_cluster.stats["single_shard_commits"] == 1
    assert hash_cluster.twopc.stats["prepares"] == 0


def test_presumed_abort_without_decision_record(hash_cluster):
    assert hash_cluster.map_log.decision_of("never-started") is None


# ---------------------------------------------------------------------------
# rescind: the consumed seq becomes a harmless no-op
# ---------------------------------------------------------------------------

def test_rescinded_prepare_cannot_abort_later_writers(hash_cluster):
    # c snapshots group 0 *before* a's doomed prepare consumes a seq
    c = hash_cluster.connect(database="shop")
    c.execute("BEGIN")
    c.execute("SELECT v FROM kv WHERE k = 0")
    a = hash_cluster.connect(database="shop")
    b = hash_cluster.connect(database="shop")
    a.execute("BEGIN")
    a.execute("UPDATE kv SET v = 50 WHERE k = 0")  # shard 0: prepares OK
    a.execute("UPDATE kv SET v = 50 WHERE k = 1")  # shard 1: will conflict
    b.execute("UPDATE kv SET v = 6 WHERE k = 1")
    with pytest.raises(SerializationError):
        a.execute("COMMIT")
    assert hash_cluster.twopc.stats["rescinds"] == 1
    # c writes the same key a's rescinded prepare covered; with the
    # footprint emptied there is no first-committer conflict left
    c.execute("UPDATE kv SET v = 60 WHERE k = 0")
    c.execute("COMMIT")
    assert _values(hash_cluster, 0, [0]) == {0: 60}
    assert hash_cluster.check_convergence()


def test_abort_leaves_gapless_recovery_log(hash_cluster):
    group0 = hash_cluster.groups[0]
    a = hash_cluster.connect(database="shop")
    b = hash_cluster.connect(database="shop")
    a.execute("BEGIN")
    a.execute("UPDATE kv SET v = 50 WHERE k = 0")
    a.execute("UPDATE kv SET v = 50 WHERE k = 1")
    b.execute("UPDATE kv SET v = 6 WHERE k = 1")
    with pytest.raises(SerializationError):
        a.execute("COMMIT")
    # the seq the prepare consumed exists in the log as an empty entry
    seqs = [entry.seq for entry in group0.recovery_log.entries_since(0)]
    assert seqs == sorted(seqs)
    empty = [entry for entry in group0.recovery_log.entries_since(0)
             if entry.kind == "writeset" and not entry.payload]
    assert len(empty) == 1
    # and ordinary traffic continues past it
    b.execute("UPDATE kv SET v = 7 WHERE k = 0")
    assert hash_cluster.check_convergence()


def test_promotion_does_not_resurrect_aborted_2pc():
    cluster = make_kv_cluster(shards=2, rows=10, replicas=3)
    pair = HAPair(cluster.groups[0])
    a = cluster.connect(database="shop")
    b = cluster.connect(database="shop")
    a.execute("BEGIN")
    a.execute("UPDATE kv SET v = 50 WHERE k = 0")  # shard 0 (HA-paired)
    a.execute("UPDATE kv SET v = 50 WHERE k = 1")
    # a reconnect-capable client ships its txn id with the prepare; the
    # aborted id must not survive as a dedup-able ledger record
    a.group_session(0).client_id = "client-a"
    a.group_session(0).client_txn_id = "client-a-txn-1"
    b.execute("UPDATE kv SET v = 6 WHERE k = 1")
    with pytest.raises(SerializationError):
        a.execute("COMMIT")
    # the standby saw the prepare; the no-op resolution must have
    # cleared it from the ledger so promotion cannot replay it
    assert pair.state.ledger.stats["dropped_pending"] == 1
    assert pair.state.ledger.pending_records() == []
    pair.promote()
    promoted = pair.active
    connection = promoted.replicas[0].engine.connect(
        "admin", "", database="shop")
    assert connection.execute(
        "SELECT v FROM kv WHERE k = 0").rows == [(0,)]
    assert promoted.check_convergence()


# ---------------------------------------------------------------------------
# equivalence: per-group 2PC certification == single-group certification
# ---------------------------------------------------------------------------

def _seed_single_group():
    middleware = build_cluster(2, replication="writeset",
                               consistency="gsi", name="solo")
    session = middleware.connect(database="shop")
    session.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
    for key in range(0, 16, 2):
        session.execute(f"INSERT INTO kv (k, v) VALUES ({key}, 0)")
    session.close()
    return middleware


def _seed_sharded():
    cluster = make_kv_cluster(shards=2, replicas=2)
    session = cluster.connect(database="shop")
    for key in range(0, 16, 2):  # even keys only: all on hash shard 0
        session.execute(f"INSERT INTO kv (k, v) VALUES ({key}, 0)")
    session.close()
    return cluster


def _run_round(connect, keys_a, keys_b, force_2pc, tag):
    """Two concurrent txns with interleaved writes; returns their
    commit outcomes.  ``force_2pc`` widens every predicate with key 15
    (odd -> shard 1, row absent) so the sharded run takes the 2PC path
    with a zero-row second participant."""
    outcomes = []
    a, b = connect(), connect()
    dead = set()
    a.execute("BEGIN")
    b.execute("BEGIN")
    for session, keys in ((a, keys_a), (b, keys_b)):
        for key in keys:
            try:
                if force_2pc:
                    session.execute(
                        f"UPDATE kv SET v = v + 1 WHERE k IN ({key}, 15)")
                else:
                    session.execute(
                        f"UPDATE kv SET v = v + 1 WHERE k = {key}")
            except (LockConflict, SerializationError):
                session.rollback()
                dead.add(id(session))
                break
    for session in (a, b):
        if id(session) in dead:
            outcomes.append("abort")
            continue
        try:
            session.execute("COMMIT")
            outcomes.append("commit")
        except SerializationError:
            outcomes.append("abort")
    a.close()
    b.close()
    return outcomes


_keys = st.lists(st.sampled_from(range(0, 16, 2)), min_size=1, max_size=3,
                 unique=True)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(_keys, _keys, st.booleans()),
                min_size=1, max_size=4))
def test_2pc_outcomes_equal_single_group_certification(rounds):
    """All shard keys land on one shard: commit/abort decisions and
    final values through the shard tier (fast path or forced 2PC) must
    be exactly what one standalone group decides for the same
    schedule."""
    solo = _seed_single_group()
    sharded = _seed_sharded()
    for keys_a, keys_b, force_2pc in rounds:
        solo_outcome = _run_round(
            lambda: solo.connect(database="shop"),
            keys_a, keys_b, force_2pc, "solo")
        shard_outcome = _run_round(
            lambda: sharded.connect(database="shop"),
            keys_a, keys_b, force_2pc, "shard")
        assert shard_outcome == solo_outcome, (keys_a, keys_b, force_2pc)
    solo_session = solo.connect(database="shop")
    solo_rows = solo_session.execute(
        "SELECT k, v FROM kv ORDER BY k").rows
    shard_session = sharded.connect(database="shop")
    shard_rows = shard_session.execute(
        "SELECT k, v FROM kv ORDER BY k").rows
    assert shard_rows == solo_rows
    assert sharded.check_convergence()
    if any(force for _, _, force in rounds):
        # the widened predicates really exercised the 2PC machinery
        assert sharded.twopc.stats["prepares"] > 0
