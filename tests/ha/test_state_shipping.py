"""Synchronous state shipping: bootstrap transfer, the two-phase
per-commit path, and consistency-token shipping."""

from repro.ha import COMMITTED, HAPair
from tests.ha.util import DATABASE, make_leader


def test_bootstrap_copies_existing_state():
    middleware = make_leader(rows=4)
    pair = HAPair(middleware)
    state = pair.state
    assert state.certifier_log == middleware.certifier.export_log()
    assert state.seq == middleware.certifier.current_seq
    assert len(state.commits) == len(middleware.recovery_log.entries)
    assert state.master_name == middleware._master_name
    assert middleware.state_shipper is pair.shipper
    assert middleware.failover_target == pair.standby.name
    assert pair.standby.standby_mode


def test_commit_ships_two_phases_and_ledger():
    pair = HAPair(make_leader())
    before = len(pair.state.certifier_log)
    session = pair.connect(database=DATABASE, client_id="alice")
    session.client_txn_id = "alice:1"
    session.execute("BEGIN")
    session.execute("UPDATE kv SET v = v + 1 WHERE k = 0")
    session.execute("COMMIT")
    session.close()
    assert pair.shipper.stats["prepares"] == 1
    assert pair.shipper.stats["acks"] == 1
    assert len(pair.state.certifier_log) == before + 1
    record = pair.state.ledger.outcome("alice:1")
    assert record is not None and record.status == COMMITTED
    # the ack shipped the session's consistency token
    assert "alice" in pair.state.session_tokens
    token = pair.state.session_tokens["alice"]
    assert token[0] >= record.seq or token[1] >= record.seq


def test_autocommit_write_is_shipped():
    pair = HAPair(make_leader())
    session = pair.connect(database=DATABASE, client_id="bob")
    session.execute("UPDATE kv SET v = v + 1 WHERE k = 1")
    session.close()
    assert pair.shipper.stats["prepares"] == 1
    assert pair.shipper.stats["acks"] == 1


def test_ddl_is_shipped():
    pair = HAPair(make_leader())
    session = pair.connect(database=DATABASE)
    session.execute("CREATE TABLE extra (id INT PRIMARY KEY)")
    session.close()
    assert any(c.kind == "statements" and "extra" in c.tables
               for c in pair.state.commits)


def test_reads_ship_nothing():
    pair = HAPair(make_leader())
    session = pair.connect(database=DATABASE)
    session.execute("SELECT v FROM kv WHERE k = 0")
    session.close()
    assert pair.shipper.stats["prepares"] == 0


def test_session_token_restores_read_your_writes():
    pair = HAPair(make_leader())
    session = pair.connect(database=DATABASE, client_id="carol")
    session.client_txn_id = "carol:1"
    session.execute("UPDATE kv SET v = v + 1 WHERE k = 2")
    committed_seq = session.view.last_commit_seq
    session.close()
    # a reconnect under the same client_id restores the shipped token
    fresh = pair.connect(database=DATABASE, client_id="carol")
    assert fresh.view.last_commit_seq >= committed_seq
    fresh.close()
