"""Shared helpers for the HA test suite: cluster building and
deterministic crash injection into the commit path's danger windows."""

from repro.bench.harness import build_cluster
from repro.core.errors import MiddlewareDown
from repro.ha import HAPair

DATABASE = "shop"

#: the four danger windows of one commit, in commit-path order
PHASES = ("before_prepare", "after_prepare", "before_ack", "after_ack")


def make_leader(rows: int = 5, replicas: int = 3):
    """A writeset/sync cluster with a seeded kv table."""
    middleware = build_cluster(replicas, replication="writeset",
                               propagation="sync", consistency="gsi")
    session = middleware.connect(database=DATABASE)
    session.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
    for key in range(rows):
        session.execute(f"INSERT INTO kv (k, v) VALUES ({key}, 0)")
    session.close()
    return middleware


def install_crash(pair: HAPair, phase: str) -> None:
    """Arm the active leader to die at ``phase`` of its next commit.

    The injected failure models the full detection-and-promotion cycle
    happening while the client reconnects: the leader is killed, the
    standby promoted, and ``MiddlewareDown`` raised into the commit
    path.  Phases map to the commit's danger windows:

    * ``before_prepare`` — nothing shipped, nothing applied;
    * ``after_prepare``  — shipped PENDING, no replica committed
      (promotion must *drop* it, replay applies fresh);
    * ``before_ack``     — replicas committed, ack never shipped
      (promotion must *resolve* the PENDING entry, replay dedups);
    * ``after_ack``      — shipped COMMITTED, client ack lost
      (replay dedups directly).
    """
    assert phase in PHASES, phase
    middleware = pair.active
    orig_prepare = middleware._ship_prepare
    orig_ack = middleware._ship_ack

    def crash():
        pair.kill_active()
        pair.promote()
        raise MiddlewareDown(f"injected crash at {phase}")

    if phase == "before_prepare":
        def prep(session, seq, keys, kind, payload, tables):
            crash()
        middleware._ship_prepare = prep
    elif phase == "after_prepare":
        def prep(session, seq, keys, kind, payload, tables):
            orig_prepare(session, seq, keys, kind, payload, tables)
            crash()
        middleware._ship_prepare = prep
    elif phase == "before_ack":
        def ack(session, seq):
            crash()
        middleware._ship_ack = ack
    else:  # after_ack
        def ack(session, seq):
            orig_ack(session, seq)
            crash()
        middleware._ship_ack = ack


def kv_values(middleware, database: str = DATABASE):
    """``{k: v}`` as replica 0 sees it."""
    connection = middleware.replicas[0].engine.connect(
        "admin", "", database=database)
    try:
        result = connection.execute("SELECT k, v FROM kv")
        return {row[0]: row[1] for row in result.rows}
    finally:
        connection.close()


def all_replicas_agree(middleware) -> bool:
    return len(set(middleware.content_signatures().values())) == 1
