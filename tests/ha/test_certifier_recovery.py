"""``Certifier.recover(rebuild_from_replicas=...)`` unit tests, the
export/import state-shipping surface, and the Hypothesis property that
commits stay exactly-once visible across a mid-transaction middleware
crash plus promotion."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.certifier import Certifier, CertifierDown
from repro.ha import HAClient, HAPair
from tests.ha.util import (
    DATABASE, PHASES, all_replicas_agree, install_crash, kv_values,
    make_leader,
)
import pytest

ROWS = 5


# -- recover() unit tests ----------------------------------------------------

def certify_n(certifier: Certifier, n: int) -> None:
    for i in range(n):
        certifier.certify(certifier.current_seq,
                          frozenset({("shop", "kv", i)}))


def test_centralized_failure_loses_log_and_refuses():
    certifier = Certifier()
    certify_n(certifier, 3)
    certifier.fail()
    with pytest.raises(CertifierDown):
        certifier.certify(0, frozenset())
    assert certifier.log_length() == 0  # soft state died with it


def test_recover_rebuilds_sequence_from_replica_watermark():
    certifier = Certifier()
    certify_n(certifier, 3)
    certifier.fail()
    certifier.recover(rebuild_from_replicas=3)
    assert not certifier.failed
    assert certifier.current_seq == 3
    assert certifier.log_length() == 0  # conflict history unrecoverable
    outcome = certifier.certify(3, frozenset({("shop", "kv", 9)}))
    assert outcome.ok and outcome.seq == 4  # no sequence reuse


def test_recover_never_runs_the_sequence_backwards():
    certifier = Certifier()
    certify_n(certifier, 5)
    certifier.fail()
    certifier.recover(rebuild_from_replicas=2)  # a lagging watermark
    assert certifier.current_seq == 5


def test_replicated_certifier_recovers_from_standby_copy():
    certifier = Certifier(replicated=True)
    certify_n(certifier, 4)
    certifier.fail()
    certifier.recover()
    assert certifier.log_length() == 4  # conflict history preserved
    assert certifier.current_seq == 4


def test_export_import_round_trip():
    source = Certifier()
    certify_n(source, 3)
    target = Certifier()
    target.import_log(source.export_log(), seq=source.current_seq)
    assert target.export_log() == source.export_log()
    assert target.current_seq == source.current_seq
    # the import clamps: a stale floor cannot run the sequence backwards
    target.import_log(source.export_log()[:1], seq=1)
    assert target.current_seq == 3


def test_import_log_restores_conflict_detection():
    source = Certifier()
    certify_n(source, 2)
    target = Certifier()
    target.import_log(source.export_log(), seq=source.current_seq)
    # a transaction that snapshotted before seq 2 conflicts on key 1
    outcome = target.certify(1, frozenset({("shop", "kv", 1)}))
    assert not outcome.ok and outcome.conflict_seq == 2


# -- the exactly-once property ----------------------------------------------

@settings(max_examples=25, deadline=None)
@given(
    targets=st.lists(st.integers(0, ROWS - 1), min_size=1, max_size=6),
    crash_index=st.integers(0, 5),
    phase=st.sampled_from(PHASES),
)
def test_exactly_once_visibility_across_crash_and_promotion(
        targets, crash_index, phase):
    """Run N increment transactions through an HA client; crash the
    middleware at an arbitrary danger window of an arbitrary
    transaction.  Afterwards every increment is visible exactly once on
    every replica — never zero times (RPO = 0 for acked work, replay for
    unacked), never twice (ledger dedup)."""
    pair = HAPair(make_leader(rows=ROWS))
    client = HAClient(pair, client_id="hyp", database=DATABASE)
    crash_at = crash_index % len(targets)
    for index, key in enumerate(targets):
        if index == crash_at:
            install_crash(pair, phase)
        client.run_transaction(
            [f"UPDATE kv SET v = v + 1 WHERE k = {key}"])
    client.close()
    expected = {key: targets.count(key) for key in range(ROWS)}
    middleware = pair.active
    values = kv_values(middleware)
    assert {k: values.get(k, 0) for k in range(ROWS)} == expected
    assert all_replicas_agree(middleware)
    # the crash deposed exactly one leader; the epoch moved exactly once
    assert pair.fence.epoch == 1
