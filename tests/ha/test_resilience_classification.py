"""`repro.core.resilience` classifies `MiddlewareDown` as
safe-to-retry-after-failover when an HA standby (or a promotion) gives
the retry somewhere to land."""

import pytest

from repro.bench.harness import build_cluster
from repro.core.errors import FencedOut, MiddlewareDown
from repro.core.resilience import ResiliencePolicy, RetryPolicy
from repro.ha import HAPair

DATABASE = "shop"


def make_resilient_leader():
    middleware = build_cluster(
        3, replication="writeset", propagation="sync", consistency="gsi",
        resilience=ResiliencePolicy(
            retry=RetryPolicy(max_attempts=2, base_backoff=0.01)))
    session = middleware.connect(database=DATABASE)
    session.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
    session.execute("INSERT INTO kv (k, v) VALUES (0, 0)")
    session.close()
    return middleware


def test_fenced_out_is_classified_retry_after_failover():
    middleware = make_resilient_leader()
    pair = HAPair(middleware)
    session = middleware.connect(database=DATABASE)
    pair.promote()  # false positive: the leader is alive but deposed
    with pytest.raises(FencedOut) as excinfo:
        session.execute("UPDATE kv SET v = v + 1 WHERE k = 0")
    assert excinfo.value.retry_after_failover is True
    assert middleware.resilience.stats.get("failover_retries", 0) == 1


def test_middleware_down_with_standby_is_retry_after_failover():
    middleware = make_resilient_leader()
    HAPair(middleware)  # attaches a failover target
    session = middleware.connect(database=DATABASE)
    middleware.failed = True  # process death mid-request
    with pytest.raises(MiddlewareDown) as excinfo:
        session.execute("UPDATE kv SET v = v + 1 WHERE k = 0")
    assert excinfo.value.retry_after_failover is True


def test_middleware_down_without_standby_is_terminal():
    middleware = make_resilient_leader()
    session = middleware.connect(database=DATABASE)
    middleware.failed = True
    with pytest.raises(MiddlewareDown) as excinfo:
        session.execute("UPDATE kv SET v = v + 1 WHERE k = 0")
    assert not getattr(excinfo.value, "retry_after_failover", False)
    assert middleware.resilience.stats.get("failover_retries", 0) == 0


def test_failover_retry_event_lands_on_the_statement_span():
    middleware = make_resilient_leader()
    middleware.tracer.enabled = True
    pair = HAPair(middleware)
    session = middleware.connect(database=DATABASE)
    pair.promote()
    with pytest.raises(FencedOut):
        session.execute("UPDATE kv SET v = v + 1 WHERE k = 0")
    names = [name for trace in middleware.tracer.traces()
             for span in trace for _, name, _ in span.events]
    assert "failover_retry" in names
