"""Fenced promotion: epoch monotonicity, split-brain refusal, state
carry-over, the four crash windows, and the cold-restart slow path."""

import pytest

from repro.core.errors import FencedOut, MiddlewareDown
from repro.ha import (
    HAClient, HAPair, cold_restart, cold_restart_duration,
)
from tests.ha.util import (
    DATABASE, all_replicas_agree, install_crash, kv_values, make_leader,
)


def test_promote_advances_epoch_and_fences_old_leader():
    middleware = make_leader()
    pair = HAPair(middleware)
    session = middleware.connect(database=DATABASE)
    report = pair.promote()
    assert report.epoch == 1
    assert pair.fence.epoch == 1
    assert pair.active is pair.standby
    assert pair.virtual_ip.target == pair.standby.name
    # the deposed leader is refused even though it never crashed
    # (false-positive detection must be safe)
    with pytest.raises(FencedOut):
        session.execute("UPDATE kv SET v = v + 1 WHERE k = 0")
    # and the refused write reached no replica — no split-brain
    assert kv_values(middleware)[0] == 0
    new_session = pair.connect(database=DATABASE)
    new_session.execute("UPDATE kv SET v = v + 1 WHERE k = 0")
    new_session.close()
    assert kv_values(middleware)[0] == 1
    assert all_replicas_agree(middleware)


def test_promotion_carries_certifier_recovery_and_affinity():
    middleware = make_leader()
    pair = HAPair(middleware)
    session = pair.connect(database=DATABASE, client_id="carol")
    session.client_txn_id = "carol:1"
    session.execute("UPDATE kv SET v = v + 1 WHERE k = 3")
    session.close()
    leader_log = middleware.certifier.export_log()
    leader_seq = middleware.certifier.current_seq
    recovery_entries = len(middleware.recovery_log.entries)
    pair.kill_active()
    report = pair.promote()
    standby = pair.active
    assert standby.certifier.export_log() == leader_log
    assert standby.certifier.current_seq >= leader_seq
    assert len(standby.recovery_log.entries) == recovery_entries
    assert standby.commit_ledger.committed("carol:1")
    assert report.session_tokens == 1
    assert not standby.standby_mode


def test_second_promotion_requires_new_standby():
    pair = HAPair(make_leader())
    pair.kill_active()
    pair.promote()
    with pytest.raises(RuntimeError):
        pair.promote()
    # an operator rebuilds a standby behind the new leader; the epoch
    # fence of the new pair starts fresh but the old fence still holds
    rebuilt = HAPair(pair.active)
    rebuilt.kill_active()
    report = rebuilt.promote()
    assert report.epoch == 1
    assert rebuilt.active is rebuilt.standby


@pytest.mark.parametrize("phase,expected_outcome,resolved,dropped", [
    ("before_prepare", "committed", 0, 0),
    ("after_prepare", "committed", 0, 1),
    ("before_ack", "deduped", 1, 0),
    ("after_ack", "deduped", 0, 0),
])
def test_crash_window_applies_exactly_once(phase, expected_outcome,
                                           resolved, dropped):
    """One commit, crashed at each danger window: whatever the window,
    the transaction's effects land exactly once and the promotion report
    accounts for the pending entry correctly."""
    pair = HAPair(make_leader())
    install_crash(pair, phase)
    client = HAClient(pair, client_id="alice", database=DATABASE)
    outcome = client.run_transaction(
        ["UPDATE kv SET v = v + 1 WHERE k = 0"])
    assert outcome == expected_outcome
    assert kv_values(pair.active)[0] == 1          # exactly once
    assert all_replicas_agree(pair.active)
    report = pair.promotions[-1]
    assert report.resolved_committed == resolved
    assert report.dropped_pending == dropped
    client.close()


def test_dropped_sequence_number_is_reusable():
    """A pending commit that reached no replica is dropped at promotion
    and its sequence number may be reused without ambiguity."""
    pair = HAPair(make_leader())
    install_crash(pair, "after_prepare")
    client = HAClient(pair, client_id="alice", database=DATABASE)
    client.run_transaction(["UPDATE kv SET v = v + 1 WHERE k = 0"])
    report = pair.promotions[-1]
    assert report.dropped_pending == 1
    # the replay's sequence is at most the dropped one — nothing skipped
    assert pair.active.certifier.current_seq <= report.watermark + 1
    client.close()


def test_cold_restart_rebuilds_from_replica_watermarks():
    middleware = make_leader()
    session = middleware.connect(database=DATABASE)
    session.execute("UPDATE kv SET v = v + 1 WHERE k = 1")
    session.close()
    seq_before = middleware.certifier.current_seq
    middleware.fail()
    report = cold_restart(middleware)
    assert report.replicas_queried == 3
    assert report.watermark == seq_before
    # conflict history is gone, but the sequence floor is preserved
    assert middleware.certifier.log_length() == 0
    assert middleware.certifier.current_seq >= seq_before
    assert not middleware.failed
    # the restarted instance serves again
    session = middleware.connect(database=DATABASE)
    session.execute("UPDATE kv SET v = v + 1 WHERE k = 1")
    session.close()
    assert kv_values(middleware)[1] == 2


def test_cold_restart_duration_grows_with_cluster_size():
    assert cold_restart_duration(0) == pytest.approx(0.5)
    assert cold_restart_duration(3) == pytest.approx(1.25)
    assert cold_restart_duration(6) > cold_restart_duration(3)


def test_standby_refuses_direct_connections():
    pair = HAPair(make_leader())
    with pytest.raises(MiddlewareDown):
        pair.standby.connect(database=DATABASE)
