"""Exactly-once client failover: virtual-IP re-resolution, ledger
dedup, replay, and consistency-token restoration."""

import pytest

from repro.core.errors import MiddlewareDown
from repro.ha import COMMITTED, DEDUPED, HAClient, HAPair
from tests.ha.util import (
    DATABASE, install_crash, kv_values, make_leader,
)


def test_client_survives_failover_between_transactions():
    pair = HAPair(make_leader())
    client = HAClient(pair, client_id="alice", database=DATABASE)
    assert client.run_transaction(
        ["UPDATE kv SET v = v + 1 WHERE k = 0"]) == COMMITTED
    pair.kill_active()
    pair.promote()
    assert client.run_transaction(
        ["UPDATE kv SET v = v + 1 WHERE k = 0"]) == COMMITTED
    assert kv_values(pair.active)[0] == 2
    assert client.stats["failovers"] == 0  # reconnect was silent
    client.close()


def test_client_dedups_commit_acked_to_standby_but_not_client():
    """Crash after the replicas committed and the ack shipped, before
    the client heard back: the replay must not re-apply."""
    pair = HAPair(make_leader())
    install_crash(pair, "after_ack")
    client = HAClient(pair, client_id="alice", database=DATABASE)
    outcome = client.run_transaction(
        ["UPDATE kv SET v = v + 1 WHERE k = 0"])
    assert outcome == DEDUPED
    assert client.stats["failovers"] == 1
    assert client.stats["dedup_hits"] == 1
    assert kv_values(pair.active)[0] == 1
    # the dedup is observable on the monitor
    assert any(event.kind == "ha_client_dedup"
               for event in pair.active.monitor.events)
    client.close()


def test_client_replays_commit_that_never_reached_replicas():
    pair = HAPair(make_leader())
    install_crash(pair, "after_prepare")
    client = HAClient(pair, client_id="alice", database=DATABASE)
    outcome = client.run_transaction(
        ["UPDATE kv SET v = v + 1 WHERE k = 0"])
    assert outcome == COMMITTED
    assert client.stats["replays"] == 1
    assert kv_values(pair.active)[0] == 1
    client.close()


def test_read_your_writes_survives_failover():
    pair = HAPair(make_leader())
    client = HAClient(pair, client_id="alice", database=DATABASE)
    client.run_transaction(["UPDATE kv SET v = v + 1 WHERE k = 2"])
    token_before = pair.session_token("alice")
    assert token_before is not None
    pair.kill_active()
    pair.promote()
    session = client._ensure_session()
    # the reconnected session's view is at least the shipped token
    assert session.view.last_commit_seq >= token_before[0]
    client.close()


def test_client_surfaces_outage_without_standby():
    pair = HAPair(make_leader())
    client = HAClient(pair, client_id="alice", database=DATABASE)
    pair.kill_active()  # dead, and nobody promoted the standby
    with pytest.raises(MiddlewareDown):
        client.run_transaction(["UPDATE kv SET v = v + 1 WHERE k = 0"])
    client.close()


def test_distinct_transactions_are_not_deduped():
    pair = HAPair(make_leader())
    client = HAClient(pair, client_id="alice", database=DATABASE)
    for _ in range(3):
        assert client.run_transaction(
            ["UPDATE kv SET v = v + 1 WHERE k = 4"]) == COMMITTED
    assert kv_values(pair.active)[4] == 3
    assert client.stats["dedup_hits"] == 0
    client.close()
