"""Availability and performance metric tests."""

import pytest

from repro.metrics import (
    AvailabilityTracker, FIVE_NINES_BUDGET_SECONDS, LatencyRecorder,
    SECONDS_PER_YEAR, ThroughputMeter, TimeSeries, availability_from_mtbf,
    downtime_budget, nines,
)


class TestFormulas:
    def test_paper_availability_formula(self):
        # A = MTTF / (MTTF + MTTR)
        assert availability_from_mtbf(99.0, 1.0) == pytest.approx(0.99)
        assert availability_from_mtbf(0, 10) == 0.0

    def test_nines(self):
        assert nines(0.999) == pytest.approx(3.0)
        assert nines(0.99999) == pytest.approx(5.0)
        assert nines(1.0) == 12.0

    def test_five_nines_budget_is_paper_number(self):
        """Section 5.1: 'no more than 5.26 minutes per year'."""
        assert FIVE_NINES_BUDGET_SECONDS == pytest.approx(5.26 * 60, rel=0.01)

    def test_downtime_budget(self):
        assert downtime_budget(3) == pytest.approx(SECONDS_PER_YEAR / 1000)


class TestAvailabilityTracker:
    def test_single_outage(self):
        tracker = AvailabilityTracker()
        tracker.service_down(100.0)
        tracker.service_up(110.0)
        tracker.finish(200.0)
        assert tracker.downtime == pytest.approx(10.0)
        assert tracker.uptime == pytest.approx(190.0)
        assert tracker.availability() == pytest.approx(0.95)
        assert tracker.mttr() == pytest.approx(10.0)
        assert tracker.mttf() == pytest.approx(100.0)

    def test_multiple_outages(self):
        tracker = AvailabilityTracker()
        tracker.service_down(10)
        tracker.service_up(12)
        tracker.service_down(50)
        tracker.service_up(58)
        tracker.finish(100)
        assert len(tracker.outages) == 2
        assert tracker.mttr() == pytest.approx(5.0)   # (2 + 8) / 2
        assert tracker.mttf() == pytest.approx(24.0)  # (10 + 38) / 2

    def test_open_outage_closed_at_finish(self):
        tracker = AvailabilityTracker()
        tracker.service_down(90)
        tracker.finish(100)
        assert tracker.downtime == pytest.approx(10.0)
        assert len(tracker.outages) == 1

    def test_double_down_ignored(self):
        tracker = AvailabilityTracker()
        tracker.service_down(10)
        tracker.service_down(20)
        tracker.service_up(30)
        tracker.finish(100)
        assert len(tracker.outages) == 1
        assert tracker.downtime == pytest.approx(20.0)

    def test_budget_check(self):
        tracker = AvailabilityTracker()
        tracker.service_down(100)
        tracker.service_up(100.5)
        tracker.finish(1000000)
        assert tracker.meets_budget(5, period_seconds=SECONDS_PER_YEAR)
        bad = AvailabilityTracker()
        bad.service_down(10)
        bad.service_up(5000)
        bad.finish(10000)
        assert not bad.meets_budget(5, period_seconds=SECONDS_PER_YEAR)

    def test_no_outage_perfect(self):
        tracker = AvailabilityTracker()
        tracker.finish(100)
        assert tracker.availability() == 1.0
        assert tracker.nines() == 12.0


class TestLatencyRecorder:
    def test_percentiles(self):
        recorder = LatencyRecorder()
        for value in range(1, 101):
            recorder.add(float(value))
        assert recorder.percentile(50) == 50.0
        assert recorder.percentile(95) == 95.0
        assert recorder.percentile(99) == 99.0
        assert recorder.percentile(0) == 1.0
        assert recorder.percentile(100) == 100.0
        assert recorder.mean() == pytest.approx(50.5)
        assert recorder.max() == 100.0

    def test_empty_recorder(self):
        recorder = LatencyRecorder()
        assert recorder.percentile(50) == 0.0
        assert recorder.mean() == 0.0

    def test_summary_keys(self):
        recorder = LatencyRecorder()
        recorder.add(1.0)
        summary = recorder.summary()
        assert set(summary) == {"count", "mean", "p50", "p95", "p99", "max"}


class TestThroughputMeter:
    def test_rate(self):
        meter = ThroughputMeter()
        meter.start(0.0)
        for t in (1.0, 2.0, 3.0, 4.0):
            meter.note_completion(t)
        assert meter.rate(4.0) == pytest.approx(1.0)
        assert meter.rate(8.0) == pytest.approx(0.5)

    def test_abort_rate(self):
        meter = ThroughputMeter()
        meter.start(0.0)
        meter.note_completion(1.0)
        meter.note_failure(2.0)
        assert meter.abort_rate() == pytest.approx(0.5)

    def test_empty_meter(self):
        meter = ThroughputMeter()
        assert meter.rate() == 0.0
        assert meter.abort_rate() == 0.0


class TestTimeSeries:
    def test_basic(self):
        series = TimeSeries()
        series.add(0.0, 1.0)
        series.add(1.0, 3.0)
        series.add(2.0, 2.0)
        assert series.max() == 3.0
        assert series.last() == 2.0
        assert series.mean() == pytest.approx(2.0)
