"""Load balancer and certifier unit tests."""

import pytest

from repro.core import (
    BalancingLevel, Certifier, CertifierDown, LeastPendingPolicy,
    LoadBalancer, MemoryAwarePolicy, NoReplicaAvailable, RandomPolicy,
    Replica, RoundRobinPolicy, RoutingContext, WeightedPolicy,
)
from repro.sqlengine import Engine


def make_replica(name, weight=1.0):
    engine = Engine(name)
    engine.create_database("shop")
    return Replica(name, engine, weight=weight)


@pytest.fixture
def replicas():
    return [make_replica(f"r{i}") for i in range(3)]


class TestPolicies:
    def test_round_robin_cycles(self, replicas):
        policy = RoundRobinPolicy()
        context = RoutingContext()
        picks = [policy.choose(replicas, context).name for _ in range(6)]
        assert picks == ["r0", "r1", "r2", "r0", "r1", "r2"]

    def test_random_deterministic_with_seed(self, replicas):
        context = RoutingContext()
        a = [RandomPolicy(seed=5).choose(replicas, context).name
             for _ in range(10)]
        b = [RandomPolicy(seed=5).choose(replicas, context).name
             for _ in range(10)]
        assert a == b

    def test_weighted_respects_weights(self):
        heavy = make_replica("heavy", weight=10.0)
        light = make_replica("light", weight=1.0)
        policy = WeightedPolicy(seed=3)
        context = RoutingContext()
        picks = [policy.choose([heavy, light], context).name
                 for _ in range(200)]
        assert picks.count("heavy") > picks.count("light") * 3

    def test_lprf_picks_least_loaded(self, replicas):
        from repro.core import ApplyItem
        replicas[0].enqueue(ApplyItem(1, "writeset", []))
        replicas[0].enqueue(ApplyItem(2, "writeset", []))
        replicas[1].enqueue(ApplyItem(1, "writeset", []))
        policy = LeastPendingPolicy()
        assert policy.choose(replicas, RoutingContext()).name == "r2"

    def test_memory_aware_prefers_hot_replica(self, replicas):
        policy = MemoryAwarePolicy()
        context_a = RoutingContext(tables=["shop.tenant_1"])
        first = policy.choose(replicas, context_a)
        # same tables again: must go back to the replica that is now hot
        again = policy.choose(replicas, context_a)
        assert again.name == first.name
        # different tables go elsewhere (spread working sets)
        context_b = RoutingContext(tables=["shop.tenant_2"])
        other = policy.choose(replicas, context_b)
        assert other.name != first.name or len(replicas) == 1


class TestLoadBalancer:
    def test_skips_failed_replicas(self, replicas):
        balancer = LoadBalancer(RoundRobinPolicy())
        replicas[0].mark_failed()
        picks = {balancer.choose(replicas, RoutingContext()).name
                 for _ in range(6)}
        assert "r0" not in picks

    def test_no_replica_available(self, replicas):
        balancer = LoadBalancer()
        for replica in replicas:
            replica.mark_failed()
        with pytest.raises(NoReplicaAvailable):
            balancer.choose(replicas, RoutingContext())

    def test_connection_level_sticky(self, replicas):
        balancer = LoadBalancer(RoundRobinPolicy(),
                                BalancingLevel.CONNECTION)
        context = RoutingContext(session_id=7)
        picks = {balancer.choose(replicas, context).name for _ in range(5)}
        assert len(picks) == 1

    def test_transaction_level_unsticks_at_commit(self, replicas):
        balancer = LoadBalancer(RoundRobinPolicy(),
                                BalancingLevel.TRANSACTION)
        context = RoutingContext(session_id=7)
        first = balancer.choose(replicas, context).name
        assert balancer.choose(replicas, context).name == first
        balancer.end_transaction(7)
        second = balancer.choose(replicas, context).name
        assert second != first

    def test_failover_forgets_sticky(self, replicas):
        balancer = LoadBalancer(RoundRobinPolicy(),
                                BalancingLevel.CONNECTION)
        context = RoutingContext(session_id=1)
        first = balancer.choose(replicas, context).name
        balancer.forget_replica(first)
        for replica in replicas:
            if replica.name == first:
                replica.mark_failed()
        assert balancer.choose(replicas, context).name != first

    def test_query_level_spreads(self, replicas):
        balancer = LoadBalancer(RoundRobinPolicy(), BalancingLevel.QUERY)
        context = RoutingContext(session_id=7)
        picks = {balancer.choose(replicas, context).name for _ in range(3)}
        assert len(picks) == 3


class TestCertifier:
    def test_assigns_increasing_seq(self):
        certifier = Certifier()
        outcome1 = certifier.certify(0, frozenset({("d", "t", (1,))}))
        outcome2 = certifier.certify(0, frozenset({("d", "t", (2,))}))
        assert outcome1.ok and outcome2.ok
        assert outcome2.seq == outcome1.seq + 1

    def test_first_committer_wins(self):
        certifier = Certifier()
        keys = frozenset({("d", "t", (1,))})
        first = certifier.certify(0, keys)
        second = certifier.certify(0, keys)  # same snapshot -> conflict
        assert first.ok and not second.ok
        assert second.conflict_seq == first.seq

    def test_non_overlapping_keys_pass(self):
        certifier = Certifier()
        certifier.certify(0, frozenset({("d", "t", (1,))}))
        outcome = certifier.certify(0, frozenset({("d", "t", (2,))}))
        assert outcome.ok

    def test_later_snapshot_sees_no_conflict(self):
        certifier = Certifier()
        keys = frozenset({("d", "t", (1,))})
        first = certifier.certify(0, keys)
        outcome = certifier.certify(first.seq, keys)
        assert outcome.ok

    def test_table_level_footprint_conflicts_with_rows(self):
        certifier = Certifier()
        certifier.certify(0, frozenset({("d", "t", (1,))}))
        outcome = certifier.certify(0, frozenset({("d", "t", None)}))
        assert not outcome.ok

    def test_first_committer_wins_disabled(self):
        certifier = Certifier(first_committer_wins=False)
        keys = frozenset({("d", "t", (1,))})
        assert certifier.certify(0, keys).ok
        assert certifier.certify(0, keys).ok  # lost update allowed

    def test_centralized_failure_loses_state(self):
        certifier = Certifier(replicated=False)
        certifier.certify(0, frozenset({("d", "t", (1,))}))
        certifier.fail()
        with pytest.raises(CertifierDown):
            certifier.certify(0, frozenset())
        certifier.recover(rebuild_from_replicas=1)
        # log was lost: the old conflict is no longer detectable
        outcome = certifier.certify(0, frozenset({("d", "t", (1,))}))
        assert outcome.ok

    def test_replicated_certifier_survives(self):
        certifier = Certifier(replicated=True)
        keys = frozenset({("d", "t", (1,))})
        certifier.certify(0, keys)
        certifier.fail()
        certifier.recover()
        outcome = certifier.certify(0, keys)
        assert not outcome.ok  # standby log preserved the conflict

    def test_prune(self):
        certifier = Certifier()
        for key in range(10):
            certifier.certify(0, frozenset({("d", "t", (key,))}))
        removed = certifier.prune(5)
        assert removed == 5
        assert certifier.log_length() == 5
