"""Unit tests for the consistency protocol classes themselves."""

import pytest

from repro.core import Replica, protocol_by_name
from repro.core.consistency import ClusterView, PROTOCOLS, SessionView
from repro.sqlengine import Engine


def replica_at(seq: int, name: str = "r") -> Replica:
    replica = Replica(name, Engine(name))
    replica.applied_seq = seq
    return replica


def session_view(commit=0, seen=0) -> SessionView:
    view = SessionView()
    view.last_commit_seq = commit
    view.last_seen_seq = seen
    return view


def test_registry_has_all_paper_protocols():
    assert set(PROTOCOLS) == {
        "1sr", "strong-si", "gsi", "pcsi", "strong-session-si", "rsi-pc",
        "read-committed", "eventual",
    }


def test_unknown_protocol_rejected():
    with pytest.raises(ValueError):
        protocol_by_name("quantum-consistency")


def test_write_modes():
    assert protocol_by_name("1sr").write_mode == "broadcast"
    assert protocol_by_name("strong-si").write_mode == "certify"
    assert protocol_by_name("rsi-pc").write_mode == "master"
    assert protocol_by_name("eventual").write_mode == "async"


def test_first_committer_wins_flags():
    assert protocol_by_name("gsi").first_committer_wins
    assert not protocol_by_name("read-committed").first_committer_wins
    assert not protocol_by_name("eventual").first_committer_wins


def test_strong_si_requires_full_freshness():
    protocol = protocol_by_name("strong-si")
    cluster = ClusterView(global_seq=10)
    assert protocol.read_eligible(replica_at(10), session_view(), cluster)
    assert not protocol.read_eligible(replica_at(9), session_view(), cluster)
    assert protocol.min_read_seq(session_view(), cluster) == 10


def test_gsi_reads_any_prefix():
    protocol = protocol_by_name("gsi")
    cluster = ClusterView(global_seq=10)
    assert protocol.read_eligible(replica_at(0), session_view(), cluster)


def test_pcsi_requires_own_commits():
    protocol = protocol_by_name("pcsi")
    cluster = ClusterView(global_seq=10)
    session = session_view(commit=5)
    assert not protocol.read_eligible(replica_at(4), session, cluster)
    assert protocol.read_eligible(replica_at(5), session, cluster)
    # other sessions' commits are irrelevant
    assert protocol.read_eligible(replica_at(5), session_view(commit=0),
                                  cluster)


def test_session_si_monotonic_over_reads_too():
    protocol = protocol_by_name("strong-session-si")
    cluster = ClusterView(global_seq=10)
    session = session_view()
    protocol.note_read(session, replica_seq=7)
    assert session.last_seen_seq == 7
    assert not protocol.read_eligible(replica_at(6), session, cluster)
    assert protocol.read_eligible(replica_at(7), session, cluster)


def test_note_commit_advances_both_watermarks():
    protocol = protocol_by_name("gsi")
    session = session_view()
    protocol.note_commit(session, 9)
    assert session.last_commit_seq == 9
    assert session.last_seen_seq == 9
    protocol.note_commit(session, 4)   # never regress
    assert session.last_commit_seq == 9


def test_rsi_pc_session_monotonic_toggle():
    from repro.core.consistency.rsi_pc import (
        ReplicatedSnapshotIsolationPrimaryCopy,
    )
    cluster = ClusterView(global_seq=10, master_name="m")
    strict = ReplicatedSnapshotIsolationPrimaryCopy(session_monotonic=True)
    loose = ReplicatedSnapshotIsolationPrimaryCopy(session_monotonic=False)
    session = session_view(commit=5)
    assert not strict.read_eligible(replica_at(3), session, cluster)
    assert loose.read_eligible(replica_at(3), session, cluster)


def test_describe_strings():
    for name in PROTOCOLS:
        protocol = protocol_by_name(name)
        text = protocol.describe()
        assert protocol.name in text and protocol.write_mode in text


def test_harness_report_rendering():
    from repro.bench import Report
    report = Report("Title", ["a", "bb"])
    report.add_row(1, 2.5)
    report.add_row("long-value", 0.001)
    report.add_row(True, False)
    report.note("a note")
    text = report.render()
    assert "Title" in text
    assert "long-value" in text
    assert "yes" in text and "no" in text
    assert "0.00100" in text        # small floats keep precision
    assert "a note" in text
