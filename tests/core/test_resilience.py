"""Request-resilience layer tests: deadlines, retry policies, circuit
breakers, admission control and the coordinator wired through a cluster
(sections 4.3.3 and 5.1 — the middleware's degraded modes)."""

import pytest

from repro.core import (
    AdmissionController, BreakerState, CircuitBreaker, Deadline,
    FailoverManager, MiddlewareConfig, Monitor, Overloaded,
    ReplicationMiddleware, RequestTimeout, ResiliencePolicy, RetryExhausted,
    RetryPolicy, protocol_by_name,
)

from tests.conftest import KV_SCHEMA, make_replicas, seed_kv


class ManualClock:
    """An injectable clock the tests advance by hand."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def resilient_cluster(n=3, policy=None, consistency="gsi",
                      propagation="sync", monitor=None):
    replicas = make_replicas(n, schema=KV_SCHEMA)
    policy = policy or ResiliencePolicy(
        retry=RetryPolicy(max_attempts=4, jitter=0.0))
    mw = ReplicationMiddleware(
        replicas,
        MiddlewareConfig(replication="writeset", propagation=propagation,
                         consistency=protocol_by_name(consistency),
                         resilience=policy),
        monitor=monitor)
    seed_kv(mw, rows=5)
    mw.pump()
    return mw


def kill(replica):
    replica.engine.crash()
    replica.mark_failed()


# ---------------------------------------------------------------------------
# deadlines
# ---------------------------------------------------------------------------

class TestDeadline:
    def test_expiry_against_injected_clock(self):
        clock = ManualClock()
        deadline = Deadline(clock, budget=2.0)
        assert not deadline.expired
        assert deadline.remaining() == pytest.approx(2.0)
        deadline.check()  # no raise
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        clock.advance(1.0)
        assert deadline.expired
        assert deadline.remaining() == 0.0
        with pytest.raises(RequestTimeout):
            deadline.check("query")


# ---------------------------------------------------------------------------
# retry policy
# ---------------------------------------------------------------------------

class TestRetryPolicy:
    def test_exponential_without_jitter(self):
        policy = RetryPolicy(base_backoff=0.1, multiplier=2.0,
                             max_backoff=0.5, jitter=0.0)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.4)
        assert policy.backoff(4) == pytest.approx(0.5)  # capped
        assert policy.backoff(9) == pytest.approx(0.5)

    def test_jitter_is_deterministic_and_bounded(self):
        a = RetryPolicy(base_backoff=0.1, jitter=0.25, seed=7)
        b = RetryPolicy(base_backoff=0.1, jitter=0.25, seed=7)
        other = RetryPolicy(base_backoff=0.1, jitter=0.25, seed=8)
        schedule = [a.backoff(n, key=42) for n in range(1, 6)]
        assert schedule == [b.backoff(n, key=42) for n in range(1, 6)]
        assert schedule != [other.backoff(n, key=42) for n in range(1, 6)]
        for attempt in range(1, 6):
            raw = min(0.1 * 2.0 ** (attempt - 1), a.max_backoff)
            value = a.backoff(attempt, key=42)
            assert raw * 0.75 <= value <= raw * 1.25

    def test_attempt_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert not policy.spent(1)
        assert not policy.spent(2)
        assert policy.spent(3)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------

class TestCircuitBreaker:
    def make(self, **kw):
        clock = ManualClock()
        breaker = CircuitBreaker("r0", clock=clock, failure_threshold=3,
                                 recovery_time=5.0, half_open_probes=1, **kw)
        return breaker, clock

    def test_trips_after_consecutive_failures(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.stats["trips"] == 1

    def test_success_resets_failure_count(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_open_rejects_until_recovery_window(self):
        breaker, clock = self.make()
        breaker.force_open()
        assert not breaker.allow()
        assert breaker.stats["rejections"] == 1
        clock.advance(4.9)
        assert not breaker.allow()
        clock.advance(0.2)  # recovery_time elapsed
        assert breaker.allow()  # the half-open probe
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_bounds_probes(self):
        breaker, clock = self.make()
        breaker.force_open()
        clock.advance(5.0)
        assert breaker.allow()       # probe 1 admitted
        assert not breaker.allow()   # probe budget spent
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.stats["closes"] == 1
        assert breaker.allow()

    def test_probe_failure_reopens_and_restarts_clock(self):
        breaker, clock = self.make()
        breaker.force_open()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()     # the probe died
        assert breaker.state is BreakerState.OPEN
        clock.advance(3.0)           # recovery clock restarted at t=5
        assert not breaker.allow()
        clock.advance(2.5)
        assert breaker.allow()

    def test_transition_listener_fires(self):
        breaker, _ = self.make()
        seen = []
        breaker.on_transition(lambda b: seen.append(b.state))
        breaker.force_open()
        breaker.record_success()
        assert seen == [BreakerState.OPEN, BreakerState.CLOSED]


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------

class TestAdmissionController:
    def test_write_first_shedding(self):
        admission = AdmissionController(max_inflight=4,
                                        write_shed_fraction=0.5)
        assert admission.write_watermark == 2
        assert admission.try_acquire(is_write=True)
        assert admission.try_acquire(is_write=True)
        # writes shed at the watermark, reads keep flowing to the hard cap
        assert not admission.try_acquire(is_write=True)
        assert admission.stats["shed_writes"] == 1
        assert admission.saturated
        assert admission.try_acquire()
        assert admission.try_acquire()
        assert not admission.try_acquire()
        assert admission.stats["shed_reads"] == 1
        assert admission.stats["peak_inflight"] == 4

    def test_release_reopens_admission(self):
        admission = AdmissionController(max_inflight=1)
        admission.acquire()
        with pytest.raises(Overloaded):
            admission.acquire()
        admission.release()
        admission.acquire()  # no raise
        assert admission.inflight == 1


# ---------------------------------------------------------------------------
# the coordinator wired through a live cluster
# ---------------------------------------------------------------------------

class TestResilientCluster:
    def test_write_retry_rides_out_promotion(self):
        """An autocommit write against a dead master is retried until the
        failure detector promotes a survivor — the client never sees the
        outage (section 4.3.3 made transparent)."""
        mw = resilient_cluster(n=2, consistency="rsi-pc")
        manager = FailoverManager(mw)
        kill(mw.replicas[0])

        def promote_on_retry(event):
            if event.kind == "retry" and mw.master.name == "r0":
                manager.handle_replica_failure("r0")

        mw.monitor.on_event(promote_on_retry)
        session = mw.connect(database="shop")
        session.execute("UPDATE kv SET v = 7 WHERE k = 0")
        assert session.execute("SELECT v FROM kv WHERE k = 0").scalar() == 7
        session.close()
        assert mw.master.name == "r1"
        assert mw.resilience.stats["retries"] >= 1
        # backoff time was accumulated for the timed layer, not slept
        assert mw.resilience.pending_backoff > 0
        assert mw.resilience.consume_backoff() > 0
        assert mw.resilience.pending_backoff == 0.0

    def test_midtxn_replay_on_survivor(self):
        """The local replica dies mid-transaction: logged statements are
        replayed on a survivor and the transaction commits."""
        mw = resilient_cluster(n=3)
        session = mw.connect(database="shop")
        session.execute("BEGIN")
        session.execute("UPDATE kv SET v = 5 WHERE k = 0")
        kill(mw.replica_by_name(session._local_replica))
        session.execute("UPDATE kv SET v = 6 WHERE k = 1")
        session.execute("COMMIT")
        assert session.execute("SELECT v FROM kv WHERE k = 0").scalar() == 5
        assert session.execute("SELECT v FROM kv WHERE k = 1").scalar() == 6
        session.close()
        assert mw.resilience.stats["replays"] == 1
        assert mw.monitor.count("txn_replayed") == 1

    def test_ambiguous_commit_never_retried(self):
        """A commit that fails with a connection-class error has an
        ambiguous outcome: the layer refuses to retry it (section 4.3.3)
        and flags the error so outer retry layers refuse too."""
        mw = resilient_cluster(n=3)
        session = mw.connect(database="shop")
        session.execute("BEGIN")
        session.execute("UPDATE kv SET v = 8 WHERE k = 2")
        kill(mw.replica_by_name(session._local_replica))
        with pytest.raises(RetryExhausted) as excinfo:
            session.execute("COMMIT")
        assert excinfo.value.ambiguous
        assert not session.in_transaction  # torn down, session reusable
        assert mw.resilience.stats["retry_exhausted"] == 1
        assert session.execute("SELECT v FROM kv WHERE k = 2").scalar() == 0
        session.close()

    def test_commit_replay_when_opted_in(self):
        """retry_commits=True: the snapshot is replayed on a survivor and
        applied exactly once."""
        policy = ResiliencePolicy(retry=RetryPolicy(
            max_attempts=4, jitter=0.0, retry_commits=True))
        mw = resilient_cluster(n=3, policy=policy)
        session = mw.connect(database="shop")
        session.execute("BEGIN")
        session.execute("UPDATE kv SET v = v + 1 WHERE k = 3")
        kill(mw.replica_by_name(session._local_replica))
        session.execute("COMMIT")  # replayed, no error
        assert session.execute("SELECT v FROM kv WHERE k = 3").scalar() == 1
        session.close()
        assert mw.resilience.stats["replays"] == 1

    def test_breaker_ejects_replica_from_read_candidacy(self):
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=3, jitter=0.0),
            breaker_recovery_time=1000.0)
        mw = resilient_cluster(n=3, policy=policy)
        mw.resilience.breaker("r1").force_open()
        ejected = mw.replica_by_name("r1")
        before = ejected.stats["served_reads"]
        session = mw.connect(database="shop")
        for _ in range(6):
            session.execute("SELECT v FROM kv WHERE k = 0")
        assert ejected.stats["served_reads"] == before
        # every breaker open -> no candidate survives the health veto;
        # the retry budget drains and the client sees RetryExhausted
        mw.resilience.breaker("r0").force_open()
        mw.resilience.breaker("r2").force_open()
        with pytest.raises(RetryExhausted):
            session.execute("SELECT v FROM kv WHERE k = 0")
        session.close()
        assert mw.resilience.breakers["r1"].stats["rejections"] > 0

    def test_replica_failure_trips_breaker_failback_closes_it(self):
        mw = resilient_cluster(n=3)
        kill(mw.replica_by_name("r2"))
        assert mw.resilience.breakers["r2"].state is BreakerState.OPEN
        FailoverManager(mw).failback("r2")
        # failback's verified resync outranks the breaker's probe evidence
        assert mw.resilience.breakers["r2"].state is BreakerState.CLOSED

    def test_admission_sheds_through_execute(self):
        policy = ResiliencePolicy(
            retry=RetryPolicy(jitter=0.0), max_inflight=2,
            write_shed_fraction=0.5)
        mw = resilient_cluster(n=2, policy=policy)
        session = mw.connect(database="shop")
        admission = mw.resilience.admission
        admission.acquire()  # one slot held by a concurrent request
        with pytest.raises(Overloaded):
            session.execute("UPDATE kv SET v = 1 WHERE k = 0")  # watermark
        result = session.execute("SELECT v FROM kv WHERE k = 0")
        assert result.scalar() == 0
        admission.acquire()  # now at the hard cap
        with pytest.raises(Overloaded):
            session.execute("SELECT v FROM kv WHERE k = 0")
        # a driver that already holds a slot bypasses re-admission
        session._admission_held = True
        assert session.execute("SELECT v FROM kv WHERE k = 0").scalar() == 0
        session.close()
        admission.release()
        admission.release()
        assert admission.inflight == 0

    def test_degraded_stale_read_when_master_down(self):
        """Master down + every slave lagging: a bounded-staleness read is
        served instead of queueing behind a freshness wait."""
        mw = resilient_cluster(n=2, consistency="rsi-pc",
                               propagation="async")
        session = mw.connect(database="shop")
        session.execute("UPDATE kv SET v = 7 WHERE k = 0")
        kill(mw.replicas[0])  # the master dies before r1 applies the update
        waits_before = mw.stats["freshness_waits"]
        value = session.execute("SELECT v FROM kv WHERE k = 0").scalar()
        assert value == 0  # stale by design
        assert mw.resilience.stats["degraded_reads"] == 1
        assert mw.stats["freshness_waits"] == waits_before
        assert mw.monitor.count("degraded_read") == 1
        session.close()

    def test_deadline_bounds_the_retry_storm(self):
        """With the master dead and nobody promoting, the deadline turns an
        unbounded retry into a prompt RequestTimeout."""
        clock = ManualClock()
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=10, base_backoff=1.0, jitter=0.0),
            request_timeout=0.5)
        mw = resilient_cluster(n=2, consistency="rsi-pc", policy=policy,
                               monitor=Monitor(time_source=clock))
        kill(mw.replicas[0])
        session = mw.connect(database="shop")
        with pytest.raises(RequestTimeout):
            session.execute("UPDATE kv SET v = 9 WHERE k = 0")
        assert mw.resilience.stats["timeouts"] == 1
        assert session.deadline is None  # implicit deadline cleaned up
        session.close()

    def test_execute_releases_admission_and_deadline(self):
        policy = ResiliencePolicy(retry=RetryPolicy(jitter=0.0),
                                  request_timeout=10.0)
        mw = resilient_cluster(n=2, policy=policy)
        session = mw.connect(database="shop")
        session.execute("SELECT v FROM kv WHERE k = 0")
        assert session.deadline is None
        assert mw.resilience.admission.inflight == 0
        assert mw.resilience.admission.stats["admitted"] > 0
        session.close()
