"""Writeset-pipeline tests: group commit, batched certification,
dependency-parallel apply scheduling, and certifier-log auto-pruning.

The load-bearing property is *equivalence*: pushing N commit requests
through the certifier as one group-commit batch must yield exactly the
same ok/abort decisions and sequence numbers as certifying them one at
a time in the same order (hypothesis-checked below on random interleaved
footprints).  Everything else — frames, parallel apply groups, pruning —
is an optimization layered on top of that invariant.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    MiddlewareConfig, ReplicationMiddleware, protocol_by_name,
)
from repro.core.applysched import (
    ApplyUnit, conflict_groups, item_units, lane_makespan,
)
from repro.core.certifier import Certifier
from repro.core.replica import ApplyItem
from repro.sqlengine import SerializationError

from tests.conftest import KV_SCHEMA, make_replicas, seed_kv


def build(propagation="sync", consistency="gsi", n=3, **config_kwargs):
    replicas = make_replicas(n, schema=KV_SCHEMA)
    mw = ReplicationMiddleware(replicas, MiddlewareConfig(
        replication="writeset", propagation=propagation,
        consistency=protocol_by_name(consistency), **config_kwargs))
    mw.interleave_auto_increment()
    seed_kv(mw, rows=8)
    mw.pump()
    return mw


# ---------------------------------------------------------------------------
# batched certification == per-transaction certification
# ---------------------------------------------------------------------------

# A tiny key universe maximises collisions; pk=None exercises the
# table-level (conservative) footprint path.
_footprint = st.frozensets(
    st.tuples(st.just("shop"), st.sampled_from(["kv", "orders"]),
              st.sampled_from([None, 1, 2, 3])),
    min_size=0, max_size=3)

_request = st.tuples(st.integers(0, 5), _footprint)  # (snapshot age, keys)


@settings(max_examples=60, deadline=None)
@given(st.lists(_request, min_size=1, max_size=30),
       st.lists(st.integers(1, 6), min_size=1, max_size=30))
def test_batched_certification_equals_serial(requests, batch_sizes):
    """Same requests, same order: a batched certifier must produce
    positionally identical outcomes and an identical final log."""
    serial = Certifier()
    batched = Certifier()

    serial_outcomes = []
    for age, keys in requests:
        start_seq = max(0, serial.current_seq - age)
        serial_outcomes.append((serial.certify(start_seq, keys), keys))

    batched_outcomes = []
    cursor = 0
    size_index = 0
    while cursor < len(requests):
        size = batch_sizes[size_index % len(batch_sizes)]
        size_index += 1
        chunk = requests[cursor:cursor + size]
        cursor += size
        batched.begin_batch()
        for age, keys in chunk:
            start_seq = max(0, batched.current_seq - age)
            batched_outcomes.append((batched.certify(start_seq, keys), keys))
        batched.end_batch()

    assert len(serial_outcomes) == len(batched_outcomes)
    for (a, _), (b, _) in zip(serial_outcomes, batched_outcomes):
        assert a.ok == b.ok
        assert a.seq == b.seq
        assert a.conflict_seq == b.conflict_seq
    assert serial.export_log() == batched.export_log()
    assert serial.current_seq == batched.current_seq


def test_certify_batch_helper_matches_loop():
    requests = [(0, frozenset({("shop", "kv", 1)})),
                (0, frozenset({("shop", "kv", 1)})),  # conflicts with first
                (0, frozenset({("shop", "kv", 2)}))]
    loop = Certifier()
    expected = [loop.certify(s, k) for s, k in requests]
    helper = Certifier()
    outcomes = helper.certify_batch(requests)
    assert [(o.ok, o.seq) for o in outcomes] == \
        [(o.ok, o.seq) for o in expected]
    assert not helper.in_batch
    assert helper.max_batch == 2  # the conflicting request staged nothing


def test_intra_batch_conflict_aborts_against_staged_entry():
    """An entry accepted earlier in the SAME open batch is not in the log
    yet, but must conflict exactly as if it were."""
    certifier = Certifier()
    certifier.begin_batch()
    first = certifier.certify(0, frozenset({("shop", "kv", 7)}))
    second = certifier.certify(0, frozenset({("shop", "kv", 7)}))
    certifier.end_batch()
    assert first.ok
    assert not second.ok
    assert second.conflict_seq == first.seq


def test_nested_batch_is_rejected():
    certifier = Certifier()
    certifier.begin_batch()
    with pytest.raises(RuntimeError):
        certifier.begin_batch()
    certifier.end_batch()


def test_export_log_sees_open_batch():
    """State shipping during an open batch must include staged entries,
    or a promotion mid-batch could lose certified transactions."""
    certifier = Certifier()
    certifier.begin_batch()
    certifier.certify(0, frozenset({("shop", "kv", 1)}))
    assert len(certifier.export_log()) == 1
    certifier.end_batch()
    assert len(certifier.export_log()) == 1


# ---------------------------------------------------------------------------
# dependency-parallel apply scheduling
# ---------------------------------------------------------------------------

def _unit(seq, *keys):
    return ApplyUnit(seq, entries=[], keys=frozenset(keys))


class TestConflictGroups:
    def test_overlapping_point_keys_share_a_group(self):
        a = _unit(1, ("shop", "kv", 1))
        b = _unit(2, ("shop", "kv", 1), ("shop", "kv", 5))
        c = _unit(3, ("shop", "kv", 5))
        groups = conflict_groups([a, b, c])
        assert groups == [[a, b, c]]  # transitive: a~b on 1, b~c on 5

    def test_disjoint_keys_get_their_own_groups(self):
        a = _unit(1, ("shop", "kv", 1))
        b = _unit(2, ("shop", "kv", 2))
        c = _unit(3, ("shop", "orders", 1))
        assert conflict_groups([a, b, c]) == [[a], [b], [c]]

    def test_table_level_footprint_conflicts_with_every_key_of_table(self):
        a = _unit(1, ("shop", "kv", 1))
        locker = _unit(2, ("shop", "kv", None))   # table-granular
        b = _unit(3, ("shop", "kv", 9))           # later key, same table
        other = _unit(4, ("shop", "orders", 1))
        groups = conflict_groups([a, locker, b, other])
        assert groups == [[a, locker, b], [other]]

    def test_opaque_unit_collapses_the_whole_run(self):
        a = _unit(1, ("shop", "kv", 1))
        opaque = ApplyUnit(2, entries=[], keys=None)
        b = _unit(3, ("shop", "orders", 1))
        assert conflict_groups([a, opaque, b]) == [[a, opaque, b]]

    def test_groups_preserve_seq_order_within_and_across(self):
        units = [_unit(s, ("shop", "kv", s % 2)) for s in range(1, 7)]
        groups = conflict_groups(units)
        assert [[u.seq for u in g] for g in groups] == [[1, 3, 5], [2, 4, 6]]


def test_item_units_normalizes_every_kind():
    unit = _unit(5, ("shop", "kv", 1))
    frame = ApplyItem(5, "writeset_batch", [unit], ("kv",))
    assert item_units(frame) == [unit]
    entries = [{"database": "shop", "table": "kv", "op": "update",
                "primary_key": (1,), "row": {"k": 1, "v": 2}}]
    plain = ApplyItem(6, "writeset", entries, ("kv",))
    (from_plain,) = item_units(plain)
    assert from_plain.keys == frozenset({("shop", "kv", (1,))})
    replay = ApplyItem(7, "statements", [("UPDATE kv SET v=1", ())], ("kv",))
    (opaque,) = item_units(replay)
    assert opaque.keys is None  # statement replay is a barrier


class TestLaneMakespan:
    def test_single_lane_serializes_everything(self):
        assert lane_makespan([3.0, 1.0, 2.0], lanes=1) == [6.0]

    def test_work_is_conserved_and_lanes_bounded(self):
        costs = [5.0, 4.0, 3.0, 2.0, 1.0]
        loads = lane_makespan(costs, lanes=3)
        assert len(loads) == 3
        assert sum(loads) == pytest.approx(sum(costs))
        assert max(loads) < sum(costs)  # genuine overlap

    def test_more_lanes_than_groups(self):
        assert sorted(lane_makespan([1.0, 2.0], lanes=8)) == [1.0, 2.0]


# ---------------------------------------------------------------------------
# replica queue: deque + batch drain
# ---------------------------------------------------------------------------

def _items(seqs):
    return [ApplyItem(s, "writeset", [], ()) for s in seqs]


class TestReplicaDrain:
    def test_peek_batch_does_not_consume(self):
        (replica,) = make_replicas(1)
        for item in _items([1, 2, 3]):
            replica.enqueue(item)
        assert [i.seq for i in replica.peek_batch(2)] == [1, 2]
        assert len(replica.apply_queue) == 3

    def test_drain_n_pops_fifo_prefix(self):
        (replica,) = make_replicas(1)
        for item in _items([1, 2, 3]):
            replica.enqueue(item)
        assert [i.seq for i in replica.drain(2)] == [1, 2]
        assert [i.seq for i in replica.apply_queue] == [3]

    def test_drain_up_to_seq_stops_at_boundary(self):
        (replica,) = make_replicas(1)
        for item in _items([4, 5, 9]):
            replica.enqueue(item)
        assert [i.seq for i in replica.drain(up_to_seq=5)] == [4, 5]
        assert [i.seq for i in replica.drain()] == [9]
        assert not replica.apply_queue


# ---------------------------------------------------------------------------
# group commit end-to-end (untimed middleware)
# ---------------------------------------------------------------------------

class TestGroupCommit:
    def test_immediate_mode_is_a_batch_of_one(self):
        mw = build()
        session = mw.connect(database="shop")
        session.execute("UPDATE kv SET v = 1 WHERE k = 1")
        session.close()
        assert mw.group_commit.stats["max_batch"] == 1
        assert mw.certifier.max_batch == 1
        assert mw.check_convergence()

    def test_gathered_batch_ships_one_frame_per_replica(self):
        # 5 replicas / 3 committers: at least two replicas are pure
        # destinations and must receive ONE multi-writeset frame each,
        # not one queue entry per transaction.
        mw = build(propagation="async", n=5)
        sessions = [mw.connect(database="shop") for _ in range(3)]
        for index, session in enumerate(sessions):
            session.begin()
            session.execute(f"UPDATE kv SET v = 9 WHERE k = {index}")
        with mw.group_commit.batch():
            for session in sessions:
                session.commit()
        for session in sessions:
            session.close()
        assert mw.group_commit.stats["max_batch"] == 3
        assert mw.certifier.max_batch == 3
        origins = {r.name for r in mw.replicas if not r.apply_queue}
        destinations = [r for r in mw.replicas if r.apply_queue]
        assert len(destinations) >= 2
        for replica in destinations:
            (frame,) = replica.apply_queue  # one frame, not three items
            assert frame.kind == "writeset_batch"
            assert len(frame.payload) == 3
        assert len(origins) + len(destinations) == 5
        mw.pump()
        assert mw.check_convergence()

    def test_origin_watermark_never_skips_cobatch_prefix(self):
        """A replica that committed mid-batch advertises its own seq; the
        flush must apply its co-batch predecessors synchronously so the
        watermark's max() semantics stay truthful (async propagation)."""
        mw = build(propagation="async")
        sessions = [mw.connect(database="shop") for _ in range(3)]
        for index, session in enumerate(sessions):
            session.begin()
            session.execute(f"UPDATE kv SET v = 7 WHERE k = {index}")
        with mw.group_commit.batch():
            for session in sessions:
                session.commit()
        for session in sessions:
            session.close()
        top = mw.certifier.current_seq
        origins = [r for r in mw.replicas if r.applied_seq == top]
        # every origin of a batch member saw the whole batch at flush
        assert origins
        for replica in origins:
            assert not replica.apply_queue
        mw.pump()
        assert mw.check_convergence()

    def test_intra_batch_conflict_aborts_second_committer(self):
        mw = build()
        a = mw.connect(database="shop")
        b = mw.connect(database="shop")
        a.begin()
        b.begin()
        a.execute("UPDATE kv SET v = 10 WHERE k = 5")
        b.execute("UPDATE kv SET v = 20 WHERE k = 5")
        with mw.group_commit.batch():
            a.commit()
            with pytest.raises(SerializationError):
                b.commit()
        a.close()
        b.close()
        assert mw.stats["certification_aborts"] == 1
        assert mw.check_convergence()
        check = mw.connect(database="shop")
        (row,) = check.execute("SELECT v FROM kv WHERE k = 5").rows
        check.close()
        assert row[0] == 10  # first committer won

    def test_batched_frame_applies_with_one_span(self):
        """Hot-path observability: one replica.apply_batch span per frame
        with a txn_applied event per contained commit — not a span per
        transaction — while per-commit propagation_lag survives."""
        mw = build(propagation="async")
        mw.tracer.enabled = True
        sessions = [mw.connect(database="shop") for _ in range(3)]
        for index, session in enumerate(sessions):
            session.begin()
            session.execute(f"UPDATE kv SET v = 3 WHERE k = {index}")
        with mw.group_commit.batch():
            for session in sessions:
                session.commit()
        for session in sessions:
            session.close()
        mw.pump()
        batch_spans = [span for trace in mw.tracer.traces()
                       for span in trace
                       if span.name == "replica.apply_batch"]
        assert batch_spans
        for span in batch_spans:
            events = [e for e in span.events if e[1] == "txn_applied"]
            assert len(events) == span.tags["units"] >= 2
            assert all("propagation_lag" in attrs
                       for _t, _n, attrs in events)
        assert mw.check_convergence()

    def test_equivalence_log_replays_identically(self):
        """Record every (start_seq, keys) decision during batched commits,
        then replay them per-transaction on a fresh certifier: decisions
        and seqs must match — the E27 zero-violations check."""
        mw = build()
        mw.group_commit.equivalence_log = []
        for round_index in range(4):
            sessions = [mw.connect(database="shop") for _ in range(3)]
            for index, session in enumerate(sessions):
                session.begin()
                session.execute(
                    f"UPDATE kv SET v = {round_index} WHERE k = {index % 2}")
            with mw.group_commit.batch():
                for session in sessions:
                    try:
                        session.commit()
                    except SerializationError:
                        pass
            for session in sessions:
                session.close()
        log = mw.group_commit.equivalence_log
        assert log, "no decisions recorded"
        replay = Certifier()
        replay._seq = min(d["start_seq"] for d in log)
        # seed the replay log with everything the session snapshots predate
        violations = 0
        for decision in log:
            outcome = replay.certify(decision["start_seq"], decision["keys"])
            if outcome.ok != decision["ok"]:
                violations += 1
            elif outcome.ok and outcome.seq != decision["seq"]:
                violations += 1
        assert violations == 0
        assert mw.check_convergence()


# ---------------------------------------------------------------------------
# certifier log auto-pruning
# ---------------------------------------------------------------------------

class TestAutoPrune:
    def test_log_stays_bounded_under_watermark(self):
        mw = build(certifier_prune_watermark=10)
        session = mw.connect(database="shop")
        for index in range(60):
            session.execute(f"UPDATE kv SET v = {index} WHERE k = {index % 8}")
        session.close()
        assert mw.certifier.log_length() <= 10
        assert mw.certifier.pruned_total > 0
        assert mw.stats["certifier_pruned"] == mw.certifier.pruned_total
        assert mw.check_convergence()

    def test_inflight_snapshot_holds_the_floor(self):
        """A long-running transaction must keep the log entries it could
        conflict with: pruning never crosses its snapshot seq."""
        mw = build(certifier_prune_watermark=10)
        reader = mw.connect(database="shop")
        reader.begin()
        reader.execute("SELECT v FROM kv WHERE k = 0")
        snapshot_seq = reader._txn_start_seq
        writer = mw.connect(database="shop")
        for index in range(40):
            writer.execute(f"UPDATE kv SET v = {index} WHERE k = 1")
        writer.close()
        # every entry above the snapshot is still present for conflict
        # checks (the reader may yet write): the prune floor never
        # crosses the in-flight snapshot seq
        kept = [seq for seq, _keys in mw.certifier.export_log()]
        assert kept
        assert min(kept) <= snapshot_seq + 1
        reader.execute("UPDATE kv SET v = 99 WHERE k = 0")
        reader.commit()
        reader.close()
        assert mw.check_convergence()

    def test_disabled_watermark_never_prunes(self):
        mw = build(certifier_prune_watermark=0)
        session = mw.connect(database="shop")
        for index in range(30):
            session.execute(f"UPDATE kv SET v = {index} WHERE k = 2")
        session.close()
        assert mw.certifier.pruned_total == 0
        assert mw.certifier.log_length() >= 30
