"""Statement analysis and non-determinism rewriting tests."""

from repro.core import analyze, rewrite_nondeterministic
from repro.sqlengine.parser import parse


def info_of(sql):
    return analyze(parse(sql))


def test_select_is_read_only():
    info = info_of("SELECT * FROM t WHERE x = 1")
    assert info.is_read_only and not info.is_write
    assert "t" in info.tables_read


def test_select_for_update_is_write():
    assert info_of("SELECT * FROM t FOR UPDATE").is_write


def test_dml_classification():
    assert info_of("INSERT INTO t (a) VALUES (1)").is_write
    assert info_of("UPDATE t SET a = 1").is_write
    assert info_of("DELETE FROM t").is_write
    assert "t" in info_of("UPDATE t SET a = 1").tables_written


def test_ddl_classification():
    info = info_of("CREATE TABLE t (a INT)")
    assert info.is_ddl and not info.is_read_only


def test_join_reads_both_tables():
    info = info_of("SELECT * FROM a JOIN b ON a.id = b.id")
    assert info.tables_read == {"a", "b"}


def test_insert_select_reads_source():
    info = info_of("INSERT INTO t (a) SELECT b FROM u")
    assert "t" in info.tables_written and "u" in info.tables_read


def test_subquery_tables_found():
    info = info_of("SELECT 1 FROM t WHERE x IN (SELECT y FROM u)")
    assert info.tables_read == {"t", "u"}


def test_now_is_rewritable():
    info = info_of("INSERT INTO t (ts) VALUES (NOW())")
    assert not info.is_deterministic
    assert info.rewritable_calls == ["NOW"]
    assert info.safe_for_statement_replication


def test_rand_in_write_is_unsafe():
    info = info_of("UPDATE t SET x = RAND()")
    assert "RAND" in info.unsafe_calls
    assert not info.safe_for_statement_replication


def test_rand_in_pure_read_not_unsafe():
    info = info_of("SELECT RAND()")
    assert not info.unsafe_calls
    assert not info.is_deterministic


def test_limit_without_order_in_update_subquery_flagged():
    """The exact hazard statement from section 4.3.2."""
    info = info_of(
        "UPDATE foo SET keyvalue = 'x' WHERE id IN "
        "(SELECT id FROM foo WHERE keyvalue IS NULL LIMIT 10)")
    assert info.limit_without_order_in_write
    assert not info.safe_for_statement_replication


def test_limit_with_order_is_fine():
    info = info_of(
        "UPDATE foo SET x = 1 WHERE id IN "
        "(SELECT id FROM foo ORDER BY id LIMIT 10)")
    assert not info.limit_without_order_in_write


def test_limit_in_plain_select_is_fine():
    info = info_of("SELECT * FROM t LIMIT 10")
    assert not info.limit_without_order_in_write


def test_procedure_call_is_opaque_write():
    info = info_of("CALL do_things(1)")
    assert info.is_write and info.is_procedure_call
    assert not info.safe_for_statement_replication


def test_temp_table_creation_tracked():
    info = info_of("CREATE TEMP TABLE scratch (x INT)")
    assert info.creates_temp_table
    assert "scratch" in info.touches_temp_names


def test_multi_database_detection():
    info = info_of("SELECT * FROM db1.t JOIN db2.u ON t.id = u.id")
    assert info.spans_multiple_databases


def test_nextval_in_write_unsafe():
    info = info_of("INSERT INTO t (id) VALUES (NEXTVAL('s'))")
    assert "NEXTVAL" in info.unsafe_calls


def test_rewrite_now_to_constant():
    statement = parse("INSERT INTO t (a, ts) VALUES (1, NOW())")
    rewritten, count = rewrite_nondeterministic(statement, 1234.5)
    assert count == 1
    info = analyze(rewritten)
    assert info.is_deterministic


def test_rewrite_now_in_where():
    statement = parse("UPDATE t SET a = 1 WHERE ts < CURRENT_TIMESTAMP")
    rewritten, count = rewrite_nondeterministic(statement, 99.0)
    assert count == 1
    assert analyze(rewritten).is_deterministic


def test_rewrite_leaves_rand_alone():
    statement = parse("UPDATE t SET x = RAND()")
    rewritten, count = rewrite_nondeterministic(statement, 1.0)
    assert count == 0
    assert not analyze(rewritten).is_deterministic
