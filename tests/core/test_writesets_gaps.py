"""Writeset extraction/application, plus end-to-end demonstrations of the
paper's section 4 gaps that live at the middleware boundary."""

import pytest

from repro.core import (
    MiddlewareConfig, ReplicationMiddleware, TriggerBasedExtractor,
    apply_writeset, conflict_keys, extract_writeset_engine,
    protocol_by_name,
)
from repro.sqlengine import Engine, postgresql

from tests.conftest import KV_SCHEMA, make_replicas, seed_kv


class TestWritesetExtraction:
    def test_engine_extraction(self, conn):
        conn.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
        conn.execute("INSERT INTO kv VALUES (1, 1)")
        conn.execute("BEGIN")
        conn.execute("UPDATE kv SET v = 2 WHERE k = 1")
        entries = extract_writeset_engine(conn.txn)
        conn.execute("COMMIT")
        assert len(entries) == 1
        assert entries[0]["op"] == "UPDATE"
        assert entries[0]["new_values"]["v"] == 2

    def test_trigger_extraction_matches_engine(self, engine, conn):
        conn.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
        extractor = TriggerBasedExtractor(engine)
        assert extractor.install("shop") == 1
        conn.execute("INSERT INTO kv VALUES (1, 10)")
        conn.execute("UPDATE kv SET v = 20 WHERE k = 1")
        conn.execute("DELETE FROM kv WHERE k = 1")
        entries = extractor.drain()
        assert [e["op"] for e in entries] == ["INSERT", "UPDATE", "DELETE"]
        assert entries[1]["old_values"]["v"] == 10

    def test_trigger_extraction_misses_new_tables(self, engine, conn):
        """The section 4.3.2 administrative gap: tables created after
        trigger installation are silently unreplicated."""
        conn.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
        extractor = TriggerBasedExtractor(engine)
        extractor.install("shop")
        conn.execute("CREATE TABLE late (x INT)")
        conn.execute("INSERT INTO late VALUES (1)")
        assert extractor.drain() == []          # write lost!
        assert extractor.uninstrumented_tables("shop") == ["late"]
        # re-install picks it up
        assert extractor.install("shop") == 1
        conn.execute("INSERT INTO late VALUES (2)")
        assert len(extractor.drain()) == 1

    def test_conflict_keys(self):
        entries = [
            {"database": "d", "table": "t", "op": "UPDATE",
             "primary_key": (1,), "old_values": {}, "new_values": {}},
            {"database": "d", "table": "u", "op": "DELETE",
             "primary_key": None, "old_values": {}, "new_values": None},
        ]
        keys = conflict_keys(entries)
        assert ("d", "t", (1,)) in keys
        assert ("d", "u", None) in keys


class TestWritesetApply:
    def make_engine(self):
        engine = Engine("apply", dialect=postgresql(), seed=1)
        engine.create_database("shop")
        c = engine.connect(database="shop")
        c.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
        c.execute("INSERT INTO kv VALUES (1, 10)")
        return engine

    def test_apply_insert_update_delete(self):
        engine = self.make_engine()
        report = apply_writeset(engine, [
            {"database": "shop", "table": "kv", "op": "INSERT",
             "primary_key": (2,), "old_values": None,
             "new_values": {"k": 2, "v": 20}},
            {"database": "shop", "table": "kv", "op": "UPDATE",
             "primary_key": (1,), "old_values": {"k": 1, "v": 10},
             "new_values": {"k": 1, "v": 11}},
            {"database": "shop", "table": "kv", "op": "DELETE",
             "primary_key": (2,), "old_values": {"k": 2, "v": 20},
             "new_values": None},
        ])
        assert report.clean and report.applied == 3
        c = engine.connect(database="shop")
        assert c.execute("SELECT v FROM kv WHERE k = 1").scalar() == 11
        assert c.execute("SELECT COUNT(*) FROM kv").scalar() == 1

    def test_apply_duplicate_insert_reported(self):
        engine = self.make_engine()
        report = apply_writeset(engine, [
            {"database": "shop", "table": "kv", "op": "INSERT",
             "primary_key": (1,), "old_values": None,
             "new_values": {"k": 1, "v": 99}},
        ])
        assert not report.clean
        assert "duplicate key" in report.conflicts[0]

    def test_apply_missing_row_reported(self):
        engine = self.make_engine()
        report = apply_writeset(engine, [
            {"database": "shop", "table": "kv", "op": "UPDATE",
             "primary_key": (42,), "old_values": {"k": 42, "v": 0},
             "new_values": {"k": 42, "v": 1}},
        ])
        assert report.missing_rows == 1

    def test_apply_without_pk_matches_old_values(self):
        engine = Engine("nopk", seed=1)
        engine.create_database("shop")
        c = engine.connect(database="shop")
        c.execute("CREATE TABLE logt (msg VARCHAR(20), n INT)")
        c.execute("INSERT INTO logt VALUES ('a', 1), ('b', 2)")
        report = apply_writeset(engine, [
            {"database": "shop", "table": "logt", "op": "UPDATE",
             "primary_key": None, "old_values": {"msg": "a", "n": 1},
             "new_values": {"msg": "a", "n": 99}},
        ])
        assert report.clean
        assert c.execute(
            "SELECT n FROM logt WHERE msg = 'a'").scalar() == 99


class TestGapDemonstrations:
    """End-to-end reproductions of the remaining section 4 gaps."""

    def test_auto_increment_divergence_without_compensation(self):
        """4.3.2: writesets do not carry counter state -> duplicate keys.

        Under read-committed (no first-committer-wins certification — the
        isolation level 'most production applications use', 4.1.2) the
        duplicate generated keys sail through and the cluster diverges.
        """
        schema = ["CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, "
                  "x VARCHAR(10))"]
        replicas = make_replicas(2, schema=schema)
        mw = ReplicationMiddleware(replicas, MiddlewareConfig(
            replication="writeset", propagation="async",
            consistency=protocol_by_name("read-committed"),
            compensate_counters=False))
        session = mw.connect(database="shop")
        # alternate local replicas (query-level balancing)
        session.execute("INSERT INTO t (x) VALUES ('a')")   # r0: id 1
        session.execute("INSERT INTO t (x) VALUES ('b')")   # r1: id 1 too!
        mw.pump()
        session.close()
        assert not mw.check_convergence()
        assert mw.monitor.count("apply_divergence") > 0

    def test_certification_catches_generated_key_collision(self):
        """With SI-class certification the same scenario aborts the second
        transaction instead of diverging — consistency at the cost of an
        abort (the trade-off of section 3.3)."""
        from repro.sqlengine import SerializationError
        schema = ["CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, "
                  "x VARCHAR(10))"]
        replicas = make_replicas(2, schema=schema)
        mw = ReplicationMiddleware(replicas, MiddlewareConfig(
            replication="writeset", propagation="async",
            compensate_counters=False))
        session = mw.connect(database="shop")
        session.execute("INSERT INTO t (x) VALUES ('a')")
        with pytest.raises(SerializationError):
            session.execute("INSERT INTO t (x) VALUES ('b')")
        mw.pump()
        session.close()
        assert mw.check_convergence()

    def test_compensation_fixes_auto_increment(self):
        schema = ["CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, "
                  "x VARCHAR(10))"]
        replicas = make_replicas(2, schema=schema)
        mw = ReplicationMiddleware(replicas, MiddlewareConfig(
            replication="writeset", propagation="sync",
            compensate_counters=True))
        session = mw.connect(database="shop")
        for index in range(4):
            session.execute(f"INSERT INTO t (x) VALUES ('v{index}')")
        session.close()
        assert mw.check_convergence()

    def test_interleaved_keys_fix_async_case(self):
        schema = ["CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, "
                  "x VARCHAR(10))"]
        replicas = make_replicas(2, schema=schema)
        mw = ReplicationMiddleware(replicas, MiddlewareConfig(
            replication="writeset", propagation="async",
            compensate_counters=False))
        mw.interleave_auto_increment()
        session = mw.connect(database="shop")
        for index in range(6):
            session.execute(f"INSERT INTO t (x) VALUES ('v{index}')")
        mw.pump()
        session.close()
        assert mw.check_convergence()

    def test_temp_table_pins_session(self):
        """4.1.4: a session using temp tables sticks to one replica."""
        replicas = make_replicas(3, schema=KV_SCHEMA)
        mw = ReplicationMiddleware(replicas,
                                   MiddlewareConfig(replication="statement"))
        seed_kv(mw, rows=3)
        session = mw.connect(database="shop")
        session.execute("CREATE TEMP TABLE scratch (x INT)")
        assert session.pinned_replica is not None
        pinned = session.pinned_replica
        session.execute("INSERT INTO scratch VALUES (1)")
        assert session.execute(
            "SELECT COUNT(*) FROM scratch").scalar() == 1
        # pinned replica fails -> the temp table is unrecoverable
        replica = mw.replica_by_name(pinned)
        replica.engine.crash()
        replica.mark_failed()
        from repro.core import ReplicaUnavailable
        with pytest.raises(ReplicaUnavailable):
            session.execute("SELECT COUNT(*) FROM scratch")
        session.close()

    def test_temp_table_not_replicated(self):
        replicas = make_replicas(2, schema=KV_SCHEMA)
        mw = ReplicationMiddleware(replicas,
                                   MiddlewareConfig(replication="statement"))
        session = mw.connect(database="shop")
        session.execute("CREATE TEMP TABLE scratch (x INT)")
        pinned = session.pinned_replica
        other = [r for r in mw.replicas if r.name != pinned][0]
        # the temp table only exists at the pinned replica's session
        c = other.engine.connect(database="shop")
        from repro.sqlengine import NameError_
        with pytest.raises(NameError_):
            c.execute("SELECT * FROM scratch")
        session.close()

    def test_deterministic_procedure_broadcast_ok(self):
        """4.2.1: with engine cooperation (analysis), a deterministic
        procedure can be broadcast safely."""
        schema = KV_SCHEMA + [
            "CREATE PROCEDURE bump(which) BEGIN "
            "UPDATE kv SET v = v + 1 WHERE k = which; END",
        ]
        replicas = make_replicas(2, schema=schema)
        mw = ReplicationMiddleware(replicas,
                                   MiddlewareConfig(replication="statement"))
        seed_kv(mw, rows=3)
        session = mw.connect(database="shop")
        session.execute("CALL bump(1)")
        session.close()
        assert mw.check_convergence()

    def test_nondeterministic_procedure_rejected(self):
        from repro.core import UnsupportedStatementError
        schema = KV_SCHEMA + [
            "CREATE PROCEDURE chaos() BEGIN "
            "UPDATE kv SET v = FLOOR(RAND() * 100) WHERE k = 0; END",
        ]
        replicas = make_replicas(2, schema=schema)
        mw = ReplicationMiddleware(replicas,
                                   MiddlewareConfig(replication="statement"))
        seed_kv(mw, rows=3)
        session = mw.connect(database="shop")
        with pytest.raises(UnsupportedStatementError):
            session.execute("CALL chaos()")
        session.close()

    def test_heterogeneous_cluster_isolation_fallback(self):
        """4.1.2/4.1.3: a MySQL-like replica lacks SI; writeset mode falls
        back to its default isolation there instead of failing."""
        from repro.sqlengine import mysql
        pg = make_replicas(1, dialect_factory=postgresql,
                           schema=KV_SCHEMA, prefix="pg")
        my = make_replicas(1, dialect_factory=mysql,
                           schema=KV_SCHEMA, prefix="my")
        mw = ReplicationMiddleware(pg + my, MiddlewareConfig(
            replication="writeset", propagation="sync",
            consistency=protocol_by_name("gsi")))
        seed_kv(mw, rows=3)
        session = mw.connect(database="shop")
        for key in range(3):
            session.execute(f"UPDATE kv SET v = 1 WHERE k = {key}")
        session.close()
        assert mw.check_convergence()

    def test_user_identity_preserved_through_middleware(self):
        """4.1.5: statements replay as the original user on every replica
        (per-user triggers depend on it)."""
        schema = KV_SCHEMA + [
            "CREATE TABLE audit (who VARCHAR(20))",
        ]
        replicas = make_replicas(2, schema=schema)
        for replica in replicas:
            replica.engine.users.add_user("bob", "pw")
            replica.engine.users.get("bob").grant(["ALL"], "shop.*")
            from repro.sqlengine import Trigger
            replica.engine.database("shop").create_trigger(Trigger(
                "bob_audit", "AFTER", "INSERT", "kv",
                body=None, callback=None, only_for_user="bob"))
        mw = ReplicationMiddleware(replicas,
                                   MiddlewareConfig(replication="statement"))
        hits = {r.name: [] for r in replicas}
        for replica in replicas:
            trigger = replica.engine.database("shop").triggers["bob_audit"]
            trigger.callback = (
                lambda ev, s, name=replica.name: hits[name].append(ev.user))
        session = mw.connect(user="bob", password="pw", database="shop")
        session.execute("INSERT INTO kv VALUES (50, 1)")
        session.close()
        # the trigger fired as bob on EVERY replica
        assert all(users == ["bob"] for users in hits.values())
