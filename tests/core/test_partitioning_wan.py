"""Partitioned clusters (Figure 2) and WAN multi-site (Figure 4) tests."""

import pytest

from repro.core import (
    HashPartitioner, ListPartitioner, MiddlewareConfig, PartitionedCluster,
    RangePartitioner, ReplicationMiddleware, Site, UnsupportedStatementError,
    WanSystem,
)

from tests.conftest import make_replicas


ORDERS_SCHEMA = [
    "CREATE TABLE orders (id INT PRIMARY KEY, region VARCHAR(8), total FLOAT)",
    "CREATE TABLE ref (code VARCHAR(4) PRIMARY KEY, label VARCHAR(20))",
]


def partitioned(groups=3):
    middlewares = []
    for index in range(groups):
        replicas = make_replicas(2, schema=ORDERS_SCHEMA,
                                 prefix=f"g{index}_")
        middlewares.append(ReplicationMiddleware(
            replicas, MiddlewareConfig(replication="statement"),
            name=f"g{index}"))
    cluster = PartitionedCluster(middlewares)
    cluster.register_table("orders", "id", HashPartitioner(groups))
    return cluster


class TestPartitioners:
    def test_hash_stable_and_in_range(self):
        partitioner = HashPartitioner(4)
        for value in (0, 1, 17, "abc", "zzz"):
            p = partitioner.partition_for(value)
            assert 0 <= p < 4
            assert p == partitioner.partition_for(value)

    def test_range_partitioner(self):
        partitioner = RangePartitioner([100, 200])
        assert partitioner.partition_for(50) == 0
        assert partitioner.partition_for(100) == 0
        assert partitioner.partition_for(150) == 1
        assert partitioner.partition_for(999) == 2

    def test_list_partitioner(self):
        partitioner = ListPartitioner([["eu", "uk"], ["us"], ["asia"]])
        assert partitioner.partition_for("eu") == 0
        assert partitioner.partition_for("us") == 1
        from repro.core import MiddlewareError
        with pytest.raises(MiddlewareError):
            partitioner.partition_for("mars")


class TestPartitionedCluster:
    def test_writes_spread_by_key(self):
        cluster = partitioned(3)
        session = cluster.connect(database="shop")
        for order in range(12):
            session.execute(
                f"INSERT INTO orders (id, region, total) "
                f"VALUES ({order}, 'eu', 1.0)")
        counts = [g.replicas[0].engine.row_count("shop", "orders")
                  for g in cluster.groups]
        assert sum(counts) == 12
        assert all(count > 0 for count in counts)
        session.close()

    def test_point_query_single_partition(self):
        cluster = partitioned(3)
        session = cluster.connect(database="shop")
        session.execute(
            "INSERT INTO orders (id, region, total) VALUES (7, 'eu', 5.5)")
        before = cluster.stats["single_partition"]
        row = session.execute("SELECT total FROM orders WHERE id = 7")
        assert row.scalar() == 5.5
        assert cluster.stats["single_partition"] == before + 1
        session.close()

    def test_in_list_routing(self):
        cluster = partitioned(3)
        session = cluster.connect(database="shop")
        for order in range(9):
            session.execute(
                f"INSERT INTO orders (id, region, total) "
                f"VALUES ({order}, 'eu', {order}.0)")
        result = session.execute(
            "SELECT COUNT(*) FROM orders WHERE id IN (1, 2, 3)")
        assert result.scalar() == 3
        session.close()

    def test_scatter_gather_aggregates(self):
        cluster = partitioned(3)
        session = cluster.connect(database="shop")
        for order in range(10):
            session.execute(
                f"INSERT INTO orders (id, region, total) "
                f"VALUES ({order}, 'eu', 2.0)")
        assert session.execute(
            "SELECT COUNT(*) FROM orders").scalar() == 10
        assert session.execute(
            "SELECT SUM(total) FROM orders").scalar() == 20.0
        assert session.execute(
            "SELECT MAX(total), MIN(total) FROM orders").rows[0] == (2.0, 2.0)
        session.close()

    def test_scatter_gather_rows_with_order(self):
        cluster = partitioned(3)
        session = cluster.connect(database="shop")
        for order in range(6):
            session.execute(
                f"INSERT INTO orders (id, region, total) "
                f"VALUES ({order}, 'eu', {10 - order}.0)")
        result = session.execute(
            "SELECT id, total FROM orders ORDER BY total")
        totals = [row[1] for row in result.rows]
        assert totals == sorted(totals)
        session.close()

    def test_scatter_avg_weighted_not_average_of_averages(self):
        # partitions hold different row counts, so averaging the
        # per-partition averages would be wrong; the shared scatter
        # planner rewrites AVG to SUM + COUNT (satellite of the shard
        # tier: one merge path for both stacks)
        cluster = partitioned(3)
        session = cluster.connect(database="shop")
        values = [1.0, 1.0, 1.0, 1.0, 10.0]
        for order, total in enumerate(values):
            session.execute(
                f"INSERT INTO orders (id, region, total) "
                f"VALUES ({order}, 'eu', {total})")
        assert session.execute(
            "SELECT AVG(total) FROM orders").scalar() == \
            sum(values) / len(values)
        session.close()

    def test_scatter_limit_reapplied_after_global_sort(self):
        cluster = partitioned(3)
        session = cluster.connect(database="shop")
        for order in range(9):
            session.execute(
                f"INSERT INTO orders (id, region, total) "
                f"VALUES ({order}, 'eu', {order}.0)")
        result = session.execute(
            "SELECT id FROM orders ORDER BY total DESC LIMIT 2")
        # a per-partition LIMIT would return each partition's top-2;
        # the merged result must be the global top-2
        assert [row[0] for row in result.rows] == [8, 7]
        session.close()

    def test_keyless_write_refused(self):
        cluster = partitioned(3)
        session = cluster.connect(database="shop")
        with pytest.raises(UnsupportedStatementError):
            session.execute("UPDATE orders SET total = 0")
        session.close()

    def test_global_table_broadcast(self):
        cluster = partitioned(3)
        session = cluster.connect(database="shop")
        session.execute("INSERT INTO ref (code, label) VALUES ('A', 'alpha')")
        for group in cluster.groups:
            assert group.replicas[0].engine.row_count("shop", "ref") == 1
        session.close()

    def test_groups_internally_replicated(self):
        cluster = partitioned(2)
        session = cluster.connect(database="shop")
        session.execute(
            "INSERT INTO orders (id, region, total) VALUES (4, 'eu', 1.0)")
        session.close()
        assert cluster.check_convergence()


class TestWan:
    def make_wan(self):
        sites = []
        for name in ("eu", "us"):
            replicas = make_replicas(2, schema=ORDERS_SCHEMA,
                                     prefix=f"{name}_")
            mw = ReplicationMiddleware(
                replicas, MiddlewareConfig(replication="statement"),
                name=name)
            sites.append(Site(name, mw, [name]))
        return WanSystem(sites, region_column="region")

    def test_writes_route_to_owner(self):
        wan = self.make_wan()
        client = wan.connect("eu", database="shop")
        client.execute(
            "INSERT INTO orders (id, region, total) VALUES (1, 'eu', 1.0)")
        client.execute(
            "INSERT INTO orders (id, region, total) VALUES (2, 'us', 2.0)")
        assert wan.stats["local_writes"] == 1
        assert wan.stats["remote_writes"] == 1
        eu = wan.site_by_name("eu").middleware.replicas[0].engine
        us = wan.site_by_name("us").middleware.replicas[0].engine
        assert eu.row_count("shop", "orders") == 1
        assert us.row_count("shop", "orders") == 1
        client.close()

    def test_async_shipping_converges_sites(self):
        wan = self.make_wan()
        client = wan.connect("eu", database="shop")
        client.execute(
            "INSERT INTO orders (id, region, total) VALUES (1, 'eu', 1.0)")
        client.execute(
            "INSERT INTO orders (id, region, total) VALUES (2, 'us', 2.0)")
        wan.ship_updates()
        for site in wan.sites:
            engine = site.middleware.replicas[0].engine
            assert engine.row_count("shop", "orders") == 2
        client.close()

    def test_reads_are_site_local_and_stale(self):
        wan = self.make_wan()
        eu_client = wan.connect("eu", database="shop")
        us_client = wan.connect("us", database="shop")
        us_client.execute(
            "INSERT INTO orders (id, region, total) VALUES (9, 'us', 1.0)")
        # before shipping, EU does not see it
        assert eu_client.execute(
            "SELECT COUNT(*) FROM orders").scalar() == 0
        wan.ship_updates()
        assert eu_client.execute(
            "SELECT COUNT(*) FROM orders").scalar() == 1
        eu_client.close()
        us_client.close()

    def test_disaster_moves_ownership_and_counts_loss(self):
        wan = self.make_wan()
        client = wan.connect("us", database="shop")
        client.execute(
            "INSERT INTO orders (id, region, total) VALUES (1, 'us', 1.0)")
        report = wan.site_disaster("us")
        assert report["lost_updates"] == 1  # never shipped
        assert report["new_owner"] == "eu"
        # EU now accepts US-region writes
        eu_client = wan.connect("eu", database="shop")
        eu_client.execute(
            "INSERT INTO orders (id, region, total) VALUES (2, 'us', 2.0)")
        eu_client.close()
        client.close()

    def test_site_recovery_catches_up(self):
        wan = self.make_wan()
        wan.site_disaster("us")
        eu_client = wan.connect("eu", database="shop")
        eu_client.execute(
            "INSERT INTO orders (id, region, total) VALUES (3, 'eu', 1.0)")
        replayed = wan.site_recovered("us")
        assert replayed == 1
        us_engine = wan.site_by_name("us").middleware.replicas[0].engine
        assert us_engine.row_count("shop", "orders") == 1
        eu_client.close()

    def test_backlog_counts_unshipped(self):
        wan = self.make_wan()
        client = wan.connect("eu", database="shop")
        for order in range(3):
            client.execute(
                f"INSERT INTO orders (id, region, total) "
                f"VALUES ({order}, 'eu', 1.0)")
        assert wan.unshipped_backlog("eu") == 3
        wan.ship_updates()
        assert wan.unshipped_backlog("eu") == 0
        client.close()
