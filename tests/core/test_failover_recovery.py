"""Failover, failback, recovery log and virtual IP tests."""

import pytest

from repro.core import (
    FailoverManager, MiddlewareConfig, RecoveryLog, ReplicationMiddleware,
    VirtualIP, promote_and_switch, protocol_by_name,
)
from repro.sqlengine import Engine

from tests.conftest import KV_SCHEMA, make_replicas, seed_kv


def master_slave(n=2, propagation="async"):
    replicas = make_replicas(n, schema=KV_SCHEMA)
    mw = ReplicationMiddleware(replicas, MiddlewareConfig(
        replication="writeset", propagation=propagation,
        consistency=protocol_by_name("rsi-pc")))
    seed_kv(mw, rows=5)
    mw.pump()
    return mw


class TestVirtualIP:
    def test_switch_history(self):
        vip = VirtualIP("db", "r0")
        vip.switch("r1")
        vip.switch("r2")
        assert vip.target == "r2"
        assert vip.switch_count == 2
        assert vip.history == ["r0", "r1", "r2"]


class TestFailover:
    def test_master_failure_promotes_freshest(self):
        mw = master_slave(3)
        session = mw.connect(database="shop")
        for key in range(5):
            session.execute(f"UPDATE kv SET v = 1 WHERE k = {key}")
        session.close()
        # drain r1 fully, leave r2 lagging
        mw.drain_replica(mw.replicas[1].name)
        mw.replicas[0].engine.crash()
        manager = FailoverManager(mw)
        report = manager.handle_replica_failure(mw.replicas[0].name)
        assert report.promoted
        assert report.new_master == mw.replicas[1].name
        assert mw.master.name == mw.replicas[1].name

    def test_promotion_drains_survivor_queue(self):
        mw = master_slave(2)
        session = mw.connect(database="shop")
        for key in range(5):
            session.execute(f"UPDATE kv SET v = 9 WHERE k = {key}")
        session.close()
        assert mw.replicas[1].lag_items == 5
        mw.replicas[0].engine.crash()
        manager = FailoverManager(mw)
        report = manager.handle_replica_failure("r0")
        assert report.drained_items == 5
        assert report.lost_transactions == 0  # middleware-held queue kept

    def test_discard_pending_models_1safe_loss(self):
        mw = master_slave(2)
        session = mw.connect(database="shop")
        for key in range(5):
            session.execute(f"UPDATE kv SET v = 9 WHERE k = {key}")
        session.close()
        mw.replicas[0].engine.crash()
        manager = FailoverManager(mw)
        report = manager.handle_replica_failure("r0", discard_pending=True)
        assert report.lost_transactions == 5

    def test_vip_switches_on_promotion(self):
        mw = master_slave(2)
        vip = VirtualIP("db", mw.master.name)
        mw.master.engine.crash()
        report = promote_and_switch(mw, vip)
        assert vip.target == report.new_master

    def test_writes_resume_after_promotion(self):
        mw = master_slave(2)
        mw.master.engine.crash()
        manager = FailoverManager(mw)
        manager.handle_replica_failure(mw.master.name)
        session = mw.connect(database="shop")
        session.execute("UPDATE kv SET v = 123 WHERE k = 0")
        assert session.execute(
            "SELECT v FROM kv WHERE k = 0").scalar() == 123
        session.close()

    def test_failback_incremental_replay(self):
        mw = master_slave(2)
        mw.replicas[1].mark_failed()
        session = mw.connect(database="shop")
        for key in range(4):
            session.execute(f"UPDATE kv SET v = 2 WHERE k = {key}")
        session.close()
        manager = FailoverManager(mw)
        replayed = manager.failback("r1")
        assert replayed == 4
        assert mw.check_convergence()

    def test_failback_after_1safe_loss_full_reclone(self):
        """Old master returns with phantom committed state: incremental
        replay cannot help; a full re-clone happens (section 4.4.2)."""
        mw = master_slave(2)
        session = mw.connect(database="shop")
        for key in range(5):
            session.execute(f"UPDATE kv SET v = 9 WHERE k = {key}")
        session.close()
        mw.replicas[0].engine.crash()
        manager = FailoverManager(mw)
        manager.handle_replica_failure("r0", discard_pending=True)
        replayed = manager.failback("r0")
        assert mw.check_convergence()
        assert mw.monitor.count("failback_full_resync") == 1

    def test_monitor_timeline(self):
        mw = master_slave(2)
        mw.master.engine.crash()
        manager = FailoverManager(mw)
        manager.handle_replica_failure(mw.master.name)
        kinds = [e.kind for e in mw.monitor.events]
        assert "failover_started" in kinds
        assert "failover_completed" in kinds
        assert "master_changed" in kinds


class TestRecoveryLog:
    def test_checkpoint_and_replay(self):
        log = RecoveryLog()
        engine = Engine("t")
        engine.create_database("shop")
        c = engine.connect(database="shop")
        c.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
        log.append(1, "statements",
                   [("INSERT INTO kv VALUES (1, 1)", [])],
                   tables=["kv"], database="shop")
        checkpoint_seq = log.checkpoint("before-2")
        log.append(2, "statements",
                   [("INSERT INTO kv VALUES (2, 2)", [])],
                   tables=["kv"], database="shop")
        entries = log.entries_since_checkpoint("before-2")
        assert [e.seq for e in entries] == [2]
        applied = log.replay(engine, from_seq=0)
        assert applied == 2
        assert engine.row_count("shop", "kv") == 2

    def test_replay_writeset_entries(self):
        log = RecoveryLog()
        engine = Engine("t")
        engine.create_database("shop")
        c = engine.connect(database="shop")
        c.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
        log.append(1, "writeset", [{
            "database": "shop", "table": "kv", "op": "INSERT",
            "primary_key": (1,), "old_values": None,
            "new_values": {"k": 1, "v": 42},
        }], tables=["kv"])
        log.replay(engine, from_seq=0)
        assert c.execute("SELECT v FROM kv WHERE k = 1").scalar() == 42

    def test_parallel_replay_waves_disjoint(self):
        log = RecoveryLog()
        for seq in range(1, 9):
            table = f"t{seq % 4}"
            log.append(seq, "writeset", [], tables=[table])
        waves = log.plan_parallel_replay(0, max_wave=8)
        # 8 entries over 4 tables -> each table appears twice -> >= 2 waves
        assert len(waves) >= 2
        for wave in waves:
            tables = [t for e in wave for t in e.tables]
            assert len(tables) == len(set(tables))  # disjoint inside a wave

    def test_parallel_replay_preserves_per_table_order(self):
        log = RecoveryLog()
        for seq in range(1, 7):
            log.append(seq, "writeset", [], tables=["same"])
        waves = log.plan_parallel_replay(0)
        flat = [e.seq for wave in waves for e in wave]
        assert flat == [1, 2, 3, 4, 5, 6]
        assert all(len(w) == 1 for w in waves)  # no parallelism possible

    def test_opaque_entry_blocks_parallelism(self):
        """Section 4.2.1: an unknown-footprint entry (stored procedure)
        runs alone."""
        log = RecoveryLog()
        log.append(1, "writeset", [], tables=["a"])
        log.append(2, "writeset", [], tables=["b"])
        log.append(3, "statements", [("CALL mystery()", [])], tables=[])
        log.append(4, "writeset", [], tables=["c"])
        waves = log.plan_parallel_replay(0)
        opaque_wave = [w for w in waves if any(not e.tables for e in w)]
        assert len(opaque_wave) == 1 and len(opaque_wave[0]) == 1

    def test_parallel_speedup_reported(self):
        log = RecoveryLog()
        for seq in range(1, 17):
            log.append(seq, "writeset", [], tables=[f"t{seq % 8}"])
        assert log.parallel_speedup(0) > 2.0

    def test_purge(self):
        log = RecoveryLog()
        for seq in range(1, 11):
            log.append(seq, "writeset", [], tables=["t"])
        assert log.purge_before(5) == 5
        assert [e.seq for e in log.entries] == [6, 7, 8, 9, 10]

    def test_truncate_after(self):
        log = RecoveryLog()
        for seq in range(1, 6):
            log.append(seq, "writeset", [], tables=["t"])
        assert log.truncate_after(2) == 3
        assert [e.seq for e in log.entries] == [1, 2]
