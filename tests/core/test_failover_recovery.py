"""Failover, failback, recovery log and virtual IP tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FailoverManager, MiddlewareConfig, RecoveryLog, ReplicationMiddleware,
    ResiliencePolicy, RetryPolicy, VirtualIP, promote_and_switch,
    protocol_by_name,
)
from repro.sqlengine import Engine

from tests.conftest import KV_SCHEMA, make_replicas, seed_kv


def master_slave(n=2, propagation="async"):
    replicas = make_replicas(n, schema=KV_SCHEMA)
    mw = ReplicationMiddleware(replicas, MiddlewareConfig(
        replication="writeset", propagation=propagation,
        consistency=protocol_by_name("rsi-pc")))
    seed_kv(mw, rows=5)
    mw.pump()
    return mw


class TestVirtualIP:
    def test_switch_history(self):
        vip = VirtualIP("db", "r0")
        vip.switch("r1")
        vip.switch("r2")
        assert vip.target == "r2"
        assert vip.switch_count == 2
        assert vip.history == ["r0", "r1", "r2"]


class TestFailover:
    def test_master_failure_promotes_freshest(self):
        mw = master_slave(3)
        session = mw.connect(database="shop")
        for key in range(5):
            session.execute(f"UPDATE kv SET v = 1 WHERE k = {key}")
        session.close()
        # drain r1 fully, leave r2 lagging
        mw.drain_replica(mw.replicas[1].name)
        mw.replicas[0].engine.crash()
        manager = FailoverManager(mw)
        report = manager.handle_replica_failure(mw.replicas[0].name)
        assert report.promoted
        assert report.new_master == mw.replicas[1].name
        assert mw.master.name == mw.replicas[1].name

    def test_promotion_drains_survivor_queue(self):
        mw = master_slave(2)
        session = mw.connect(database="shop")
        for key in range(5):
            session.execute(f"UPDATE kv SET v = 9 WHERE k = {key}")
        session.close()
        assert mw.replicas[1].lag_items == 5
        mw.replicas[0].engine.crash()
        manager = FailoverManager(mw)
        report = manager.handle_replica_failure("r0")
        assert report.drained_items == 5
        assert report.lost_transactions == 0  # middleware-held queue kept

    def test_discard_pending_models_1safe_loss(self):
        mw = master_slave(2)
        session = mw.connect(database="shop")
        for key in range(5):
            session.execute(f"UPDATE kv SET v = 9 WHERE k = {key}")
        session.close()
        mw.replicas[0].engine.crash()
        manager = FailoverManager(mw)
        report = manager.handle_replica_failure("r0", discard_pending=True)
        assert report.lost_transactions == 5

    def test_vip_switches_on_promotion(self):
        mw = master_slave(2)
        vip = VirtualIP("db", mw.master.name)
        mw.master.engine.crash()
        report = promote_and_switch(mw, vip)
        assert vip.target == report.new_master

    def test_writes_resume_after_promotion(self):
        mw = master_slave(2)
        mw.master.engine.crash()
        manager = FailoverManager(mw)
        manager.handle_replica_failure(mw.master.name)
        session = mw.connect(database="shop")
        session.execute("UPDATE kv SET v = 123 WHERE k = 0")
        assert session.execute(
            "SELECT v FROM kv WHERE k = 0").scalar() == 123
        session.close()

    def test_failback_incremental_replay(self):
        mw = master_slave(2)
        mw.replicas[1].mark_failed()
        session = mw.connect(database="shop")
        for key in range(4):
            session.execute(f"UPDATE kv SET v = 2 WHERE k = {key}")
        session.close()
        manager = FailoverManager(mw)
        replayed = manager.failback("r1")
        assert replayed == 4
        assert mw.check_convergence()

    def test_failback_after_1safe_loss_full_reclone(self):
        """Old master returns with phantom committed state: incremental
        replay cannot help; a full re-clone happens (section 4.4.2)."""
        mw = master_slave(2)
        session = mw.connect(database="shop")
        for key in range(5):
            session.execute(f"UPDATE kv SET v = 9 WHERE k = {key}")
        session.close()
        mw.replicas[0].engine.crash()
        manager = FailoverManager(mw)
        manager.handle_replica_failure("r0", discard_pending=True)
        replayed = manager.failback("r0")
        assert mw.check_convergence()
        assert mw.monitor.count("failback_full_resync") == 1

    def test_monitor_timeline(self):
        mw = master_slave(2)
        mw.master.engine.crash()
        manager = FailoverManager(mw)
        manager.handle_replica_failure(mw.master.name)
        kinds = [e.kind for e in mw.monitor.events]
        assert "failover_started" in kinds
        assert "failover_completed" in kinds
        assert "master_changed" in kinds


class TestFailoverEdgeCases:
    def test_zero_online_survivors(self):
        """Every replica is down when the master fails: no promotion
        happens, the incident is recorded, and the cluster resumes once a
        survivor fails back."""
        mw = master_slave(3)
        for replica in mw.replicas[1:]:
            replica.mark_failed()
        mw.replicas[0].engine.crash()
        manager = FailoverManager(mw)
        report = manager.handle_replica_failure("r0")
        assert not report.promoted
        assert report.new_master is None
        assert mw.monitor.count("failover_no_survivor") == 1
        # a slave returns; promoting over the still-dead master succeeds now
        manager.failback("r1")
        report2 = promote_and_switch(mw, VirtualIP("db", "r0"),
                                     manager=manager)
        assert report2.promoted and report2.new_master == "r1"
        session = mw.connect(database="shop")
        session.execute("UPDATE kv SET v = 5 WHERE k = 0")
        assert session.execute("SELECT v FROM kv WHERE k = 0").scalar() == 5
        session.close()

    def test_promote_and_switch_reuses_manager(self):
        """Passing an existing manager keeps one continuous failover
        history: reports accumulate and on_failover callbacks fire."""
        mw = master_slave(3)
        vip = VirtualIP("db", "r0")
        manager = FailoverManager(mw)
        seen = []
        manager.on_failover(lambda report: seen.append(report.new_master))
        mw.replicas[0].engine.crash()
        report = promote_and_switch(mw, vip, manager=manager)
        assert manager.virtual_ip is vip          # adopted, not replaced
        assert manager.reports == [report]
        assert seen == [report.new_master]
        mw.replica_by_name(report.new_master).engine.crash()
        report2 = promote_and_switch(mw, vip, manager=manager)
        assert len(manager.reports) == 2
        assert vip.target == report2.new_master
        assert seen == [report.new_master, report2.new_master]

    def test_second_failure_during_failback(self):
        """The reference survivor dies while a failback is in progress:
        the resync still completes from the middleware-held recovery log
        (section 4.4.2 — the log, not a peer, is authoritative)."""
        mw = master_slave(3)
        mw.replicas[2].mark_failed()
        session = mw.connect(database="shop")
        for key in range(4):
            session.execute(f"UPDATE kv SET v = 3 WHERE k = {key}")
        session.close()
        mw.drain_replica("r1")
        manager = FailoverManager(mw)

        def second_failure(event):
            if event.kind == "failback_started":
                mw.replicas[1].mark_failed()

        mw.monitor.on_event(second_failure)
        replayed = manager.failback("r2")
        assert replayed == 4
        assert mw.replica_by_name("r2").is_online
        assert not mw.replica_by_name("r1").is_online
        assert mw.monitor.count("failback_completed") == 1
        # the mid-failback casualty recovers too, and everyone converges
        manager.failback("r1")
        assert mw.check_convergence()


class TestRetryExactlyOnce:
    """Property: a transparently retried/replayed transaction is applied
    exactly once — acked increments equal the on-disk count on every
    replica, no matter where crashes land."""

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_retry_never_double_applies_committed_txn(self, data):
        replicas = make_replicas(3, schema=KV_SCHEMA)
        mw = ReplicationMiddleware(replicas, MiddlewareConfig(
            replication="writeset", propagation="sync",
            consistency=protocol_by_name("gsi"),
            resilience=ResiliencePolicy(
                retry=RetryPolicy(max_attempts=4, jitter=0.0))))
        session = mw.connect(database="shop")
        session.execute("INSERT INTO kv (k, v) VALUES (0, 0)")
        acked = 0
        n_ops = data.draw(st.integers(3, 8), label="n_ops")
        for index in range(n_ops):
            use_txn = data.draw(st.booleans(), label=f"txn_{index}")
            point = data.draw(
                st.sampled_from(["none", "before", "mid", "commit"]),
                label=f"crash_point_{index}")
            victim_index = data.draw(st.integers(0, 2),
                                     label=f"victim_{index}")

            def maybe_kill(when):
                if point != when:
                    return
                victim = mw.replicas[victim_index]
                alive = [r for r in mw.replicas if r.is_online]
                if victim.is_online and len(alive) > 1:
                    victim.engine.crash()
                    victim.mark_failed()

            try:
                if use_txn:
                    session.execute("BEGIN")
                    session.execute("UPDATE kv SET v = v + 1 WHERE k = 0")
                    maybe_kill("mid")
                    session.execute("UPDATE kv SET v = v + 1 WHERE k = 0")
                    maybe_kill("commit")
                    session.execute("COMMIT")
                    acked += 2
                else:
                    maybe_kill("before")
                    session.execute("UPDATE kv SET v = v + 1 WHERE k = 0")
                    acked += 1
            except Exception:
                # the request failed before certification: it must not
                # have applied anywhere; drop any transaction carcass
                session.execute("ROLLBACK")
        session.close()
        # heal everything and compare each replica's raw engine state
        manager = FailoverManager(mw)
        for replica in mw.replicas:
            if not replica.is_online:
                manager.failback(replica.name)
        assert mw.check_convergence()
        for replica in mw.replicas:
            connection = replica.engine.connect(database="shop")
            applied = connection.execute(
                "SELECT v FROM kv WHERE k = 0").scalar()
            connection.close()
            assert applied == acked, (
                f"{replica.name}: applied {applied} != acked {acked} — "
                "a retry double-applied or a failed request leaked")


class TestRecoveryLog:
    def test_checkpoint_and_replay(self):
        log = RecoveryLog()
        engine = Engine("t")
        engine.create_database("shop")
        c = engine.connect(database="shop")
        c.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
        log.append(1, "statements",
                   [("INSERT INTO kv VALUES (1, 1)", [])],
                   tables=["kv"], database="shop")
        checkpoint_seq = log.checkpoint("before-2")
        log.append(2, "statements",
                   [("INSERT INTO kv VALUES (2, 2)", [])],
                   tables=["kv"], database="shop")
        entries = log.entries_since_checkpoint("before-2")
        assert [e.seq for e in entries] == [2]
        applied = log.replay(engine, from_seq=0)
        assert applied == 2
        assert engine.row_count("shop", "kv") == 2

    def test_replay_writeset_entries(self):
        log = RecoveryLog()
        engine = Engine("t")
        engine.create_database("shop")
        c = engine.connect(database="shop")
        c.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
        log.append(1, "writeset", [{
            "database": "shop", "table": "kv", "op": "INSERT",
            "primary_key": (1,), "old_values": None,
            "new_values": {"k": 1, "v": 42},
        }], tables=["kv"])
        log.replay(engine, from_seq=0)
        assert c.execute("SELECT v FROM kv WHERE k = 1").scalar() == 42

    def test_parallel_replay_waves_disjoint(self):
        log = RecoveryLog()
        for seq in range(1, 9):
            table = f"t{seq % 4}"
            log.append(seq, "writeset", [], tables=[table])
        waves = log.plan_parallel_replay(0, max_wave=8)
        # 8 entries over 4 tables -> each table appears twice -> >= 2 waves
        assert len(waves) >= 2
        for wave in waves:
            tables = [t for e in wave for t in e.tables]
            assert len(tables) == len(set(tables))  # disjoint inside a wave

    def test_parallel_replay_preserves_per_table_order(self):
        log = RecoveryLog()
        for seq in range(1, 7):
            log.append(seq, "writeset", [], tables=["same"])
        waves = log.plan_parallel_replay(0)
        flat = [e.seq for wave in waves for e in wave]
        assert flat == [1, 2, 3, 4, 5, 6]
        assert all(len(w) == 1 for w in waves)  # no parallelism possible

    def test_opaque_entry_blocks_parallelism(self):
        """Section 4.2.1: an unknown-footprint entry (stored procedure)
        runs alone."""
        log = RecoveryLog()
        log.append(1, "writeset", [], tables=["a"])
        log.append(2, "writeset", [], tables=["b"])
        log.append(3, "statements", [("CALL mystery()", [])], tables=[])
        log.append(4, "writeset", [], tables=["c"])
        waves = log.plan_parallel_replay(0)
        opaque_wave = [w for w in waves if any(not e.tables for e in w)]
        assert len(opaque_wave) == 1 and len(opaque_wave[0]) == 1

    def test_parallel_speedup_reported(self):
        log = RecoveryLog()
        for seq in range(1, 17):
            log.append(seq, "writeset", [], tables=[f"t{seq % 8}"])
        assert log.parallel_speedup(0) > 2.0

    def test_purge(self):
        log = RecoveryLog()
        for seq in range(1, 11):
            log.append(seq, "writeset", [], tables=["t"])
        assert log.purge_before(5) == 5
        assert [e.seq for e in log.entries] == [6, 7, 8, 9, 10]

    def test_truncate_after(self):
        log = RecoveryLog()
        for seq in range(1, 6):
            log.append(seq, "writeset", [], tables=["t"])
        assert log.truncate_after(2) == 3
        assert [e.seq for e in log.entries] == [1, 2]
