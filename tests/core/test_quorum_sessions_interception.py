"""Quorum/split-brain, connection pools, transaction contexts, and the
three interception designs."""

import pytest

from repro.core import (
    ConnectionPool, DriverInterception, EngineInterception, MiddlewareConfig,
    MiddlewareDown, MultiPool, ProtocolProxyInterception, QuorumGuard,
    QuorumLost, Reconciler, ReplicationMiddleware, TransactionContext,
    design_by_name,
)
from repro.sqlengine import UnsupportedFeatureError, mysql, postgresql

from tests.conftest import KV_SCHEMA, make_replicas, seed_kv


@pytest.fixture
def cluster():
    replicas = make_replicas(3, schema=KV_SCHEMA)
    mw = ReplicationMiddleware(replicas,
                               MiddlewareConfig(replication="statement"))
    seed_kv(mw, rows=5)
    return mw


class TestQuorum:
    def test_majority_allows_writes(self, cluster):
        guard = QuorumGuard(cluster)
        guard.set_reachable(["r0", "r1"])
        guard.check_write_allowed()  # 2 of 3: fine

    def test_minority_refuses(self, cluster):
        guard = QuorumGuard(cluster)
        guard.set_reachable(["r0"])
        with pytest.raises(QuorumLost):
            guard.check_write_allowed()
        assert guard.refused_writes == 1

    def test_failed_replicas_dont_count(self, cluster):
        guard = QuorumGuard(cluster)
        cluster.replica_by_name("r1").mark_failed()
        guard.set_reachable(["r0", "r1"])  # r1 reachable but dead
        with pytest.raises(QuorumLost):
            guard.check_write_allowed()

    def test_disabled_guard_allows_split_brain(self, cluster):
        guard = QuorumGuard(cluster)
        guard.enabled = False
        guard.set_reachable(["r0"])
        guard.check_write_allowed()  # no protection -> divergence risk


class TestReconciler:
    def make_pair(self):
        replicas = make_replicas(2, schema=KV_SCHEMA)
        a, b = replicas[0].engine, replicas[1].engine
        return a, b

    def test_identical_engines_no_diff(self):
        a, b = self.make_pair()
        report = Reconciler().compare(a, b)
        assert not report.divergent

    def test_detects_one_sided_rows_and_conflicts(self):
        a, b = self.make_pair()
        ca = a.connect(database="shop")
        cb = b.connect(database="shop")
        ca.execute("INSERT INTO kv VALUES (1, 10)")
        cb.execute("INSERT INTO kv VALUES (1, 20)")   # conflict
        ca.execute("INSERT INTO kv VALUES (2, 2)")     # only left
        cb.execute("INSERT INTO kv VALUES (3, 3)")     # only right
        report = Reconciler().compare(a, b)
        assert report.count("conflict") == 1
        assert report.count("only_left") == 1
        assert report.count("only_right") == 1

    def test_merge_prefer_left(self):
        a, b = self.make_pair()
        ca = a.connect(database="shop")
        cb = b.connect(database="shop")
        ca.execute("INSERT INTO kv VALUES (1, 10)")
        cb.execute("INSERT INTO kv VALUES (1, 20)")
        cb.execute("INSERT INTO kv VALUES (5, 5)")
        reconciler = Reconciler()
        reconciler.merge(a, b, policy="prefer_left")
        after = reconciler.compare(a, b)
        assert not after.divergent
        assert cb.execute("SELECT v FROM kv WHERE k = 1").scalar() == 10
        # only-right row was removed (left's view wins entirely)
        assert cb.execute("SELECT COUNT(*) FROM kv WHERE k = 5").scalar() == 0

    def test_merge_prefer_right(self):
        a, b = self.make_pair()
        ca = a.connect(database="shop")
        cb = b.connect(database="shop")
        ca.execute("INSERT INTO kv VALUES (1, 10)")
        cb.execute("INSERT INTO kv VALUES (1, 20)")
        reconciler = Reconciler()
        reconciler.merge(a, b, policy="prefer_right")
        assert ca.execute("SELECT v FROM kv WHERE k = 1").scalar() == 20


class TestConnectionPool:
    def test_reuse(self, cluster):
        pool = ConnectionPool(cluster, size=2)
        session = pool.acquire()
        pool.release(session)
        again = pool.acquire()
        assert again is session
        assert pool.stats["reused"] == 1

    def test_exhaustion(self, cluster):
        from repro.core import MiddlewareError
        pool = ConnectionPool(cluster, size=1)
        pool.acquire()
        with pytest.raises(MiddlewareError):
            pool.acquire()

    def test_dead_sessions_evicted(self, cluster):
        pool = ConnectionPool(cluster, size=2)
        session = pool.acquire()
        pool.release(session)
        session.close()
        fresh = pool.acquire()
        assert fresh is not session
        assert pool.stats["evicted_dead"] == 1

    def test_aggressive_recycling(self, cluster):
        pool = ConnectionPool(cluster, size=2, recycle_aggressively=True)
        session = pool.acquire()
        pool.release(session)
        assert session.closed  # recycled, pooling benefit forfeited
        assert pool.idle_count == 0

    def test_multipool_failover(self):
        replicas_a = make_replicas(2, schema=KV_SCHEMA, prefix="a")
        replicas_b = make_replicas(2, schema=KV_SCHEMA, prefix="b")
        mw_a = ReplicationMiddleware(
            replicas_a, MiddlewareConfig(replication="statement"), name="A")
        mw_b = ReplicationMiddleware(
            replicas_b, MiddlewareConfig(replication="statement"), name="B")
        multipool = MultiPool([ConnectionPool(mw_a), ConnectionPool(mw_b)])
        _session, pool = multipool.acquire()
        assert pool.middleware.name == "A"
        mw_a.fail()
        _session, pool = multipool.acquire()
        assert pool.middleware.name == "B"
        assert multipool.stats["failovers"] == 1
        mw_b.fail()
        with pytest.raises(MiddlewareDown):
            multipool.acquire()


class TestTransactionContext:
    def test_pause_and_resume_on_other_session(self, cluster):
        a = cluster.connect(database="shop")
        a.begin()
        a.execute("UPDATE kv SET v = 1 WHERE k = 1")
        a.execute("UPDATE kv SET v = 2 WHERE k = 2")
        context = TransactionContext.pause(a)
        assert not a.in_transaction
        # original effects rolled back
        probe = cluster.connect(database="shop")
        assert probe.execute("SELECT v FROM kv WHERE k = 1").scalar() == 0
        b = cluster.connect(database="shop")
        context.resume(b)
        b.execute("UPDATE kv SET v = 3 WHERE k = 3")
        b.commit()
        assert probe.execute("SELECT v FROM kv WHERE k = 1").scalar() == 1
        assert probe.execute("SELECT v FROM kv WHERE k = 3").scalar() == 3
        assert cluster.check_convergence()

    def test_serialization_round_trip(self, cluster):
        a = cluster.connect(database="shop")
        a.begin()
        a.execute("UPDATE kv SET v = 9 WHERE k = 4")
        context = TransactionContext.pause(a)
        data = context.to_dict()
        restored = TransactionContext.from_dict(data)
        b = cluster.connect(database="shop")
        restored.resume(b)
        b.commit()
        assert cluster.check_convergence()

    def test_writeset_transaction_not_externalizable(self):
        """Section 4.3.3: writeset-mode transactions live at one replica."""
        from repro.core import MiddlewareError
        replicas = make_replicas(2, schema=KV_SCHEMA)
        mw = ReplicationMiddleware(replicas, MiddlewareConfig(
            replication="writeset"))
        seed_kv(mw, rows=2)
        session = mw.connect(database="shop")
        session.begin()
        session.execute("UPDATE kv SET v = 1 WHERE k = 1")
        with pytest.raises(MiddlewareError):
            TransactionContext.pause(session)
        session.rollback()


class TestInterception:
    def homogeneous(self):
        replicas = make_replicas(2, schema=KV_SCHEMA)
        return ReplicationMiddleware(
            replicas, MiddlewareConfig(replication="statement"))

    def heterogeneous(self):
        pg = make_replicas(1, dialect_factory=postgresql,
                           schema=KV_SCHEMA, prefix="pg")
        my = make_replicas(1, dialect_factory=mysql,
                           schema=KV_SCHEMA, prefix="my")
        return ReplicationMiddleware(
            pg + my, MiddlewareConfig(replication="statement"))

    def mixed_versions(self):
        import repro.sqlengine.dialects as dialects
        a = make_replicas(1, schema=KV_SCHEMA, prefix="a")
        b = make_replicas(1, schema=KV_SCHEMA, prefix="b")
        b[0].engine.dialect = dialects.postgresql("9.1")
        return ReplicationMiddleware(
            a + b, MiddlewareConfig(replication="statement"))

    def test_driver_design_accepts_anything(self):
        design = DriverInterception(self.heterogeneous())
        props = design.properties()
        assert props["requires_client_change"]
        assert props["supports_heterogeneous_engines"]

    def test_engine_design_rejects_heterogeneous(self):
        with pytest.raises(UnsupportedFeatureError):
            EngineInterception(self.heterogeneous())

    def test_engine_design_rejects_mixed_versions(self):
        with pytest.raises(UnsupportedFeatureError):
            EngineInterception(self.mixed_versions())

    def test_protocol_proxy_allows_mixed_versions(self):
        design = ProtocolProxyInterception(self.mixed_versions())
        assert design.supports_mixed_versions

    def test_protocol_proxy_rejects_heterogeneous(self):
        with pytest.raises(UnsupportedFeatureError):
            ProtocolProxyInterception(self.heterogeneous())

    def test_overhead_ordering(self):
        """Engine-level cheapest, protocol proxy dearest (E05 shape)."""
        mw = self.homogeneous()
        engine_level = EngineInterception(mw)
        proxy = ProtocolProxyInterception(mw)
        driver = DriverInterception(mw)
        assert (engine_level.per_statement_overhead
                < driver.per_statement_overhead
                < proxy.per_statement_overhead)

    def test_design_by_name(self):
        mw = self.homogeneous()
        assert design_by_name("driver-based", mw).name == "driver-based"
        with pytest.raises(ValueError):
            design_by_name("telepathy", mw)

    def test_driver_deployment_cost(self):
        assert DriverInterception.deployment_cost(500) == 7500
