"""Middleware replication modes: statement, writeset, master."""

import pytest

from repro.core import (
    ClusterDivergence, MiddlewareConfig, MiddlewareDown, ReplicationMiddleware,
    UnsupportedStatementError, protocol_by_name,
)
from repro.sqlengine import SerializationError

from tests.conftest import KV_SCHEMA, make_replicas, seed_kv


class TestStatementMode:
    def test_writes_applied_everywhere(self, statement_cluster):
        mw = statement_cluster
        session = mw.connect(database="shop")
        session.execute("UPDATE kv SET v = 7 WHERE k = 1")
        session.close()
        for replica in mw.replicas:
            c = replica.engine.connect(database="shop")
            assert c.execute("SELECT v FROM kv WHERE k = 1").scalar() == 7
        assert mw.check_convergence()

    def test_reads_balanced_across_replicas(self, statement_cluster):
        mw = statement_cluster
        session = mw.connect(database="shop")
        for _ in range(9):
            session.execute("SELECT COUNT(*) FROM kv")
        session.close()
        served = [r.stats["served_reads"] for r in mw.replicas]
        assert all(count == 3 for count in served)

    def test_transaction_atomic_across_replicas(self, statement_cluster):
        mw = statement_cluster
        session = mw.connect(database="shop")
        session.begin()
        session.execute("UPDATE kv SET v = 1 WHERE k = 1")
        session.execute("UPDATE kv SET v = 2 WHERE k = 2")
        session.rollback()
        session.close()
        assert mw.check_convergence()
        c = mw.replicas[0].engine.connect(database="shop")
        assert c.execute("SELECT v FROM kv WHERE k = 1").scalar() == 0

    def test_txn_reads_see_own_writes(self, statement_cluster):
        session = statement_cluster.connect(database="shop")
        session.begin()
        session.execute("UPDATE kv SET v = 42 WHERE k = 3")
        assert session.execute(
            "SELECT v FROM kv WHERE k = 3").scalar() == 42
        session.commit()
        session.close()

    def test_now_rewritten_consistently(self, statement_cluster):
        mw = statement_cluster
        session = mw.connect(database="shop")
        session.execute("CREATE TABLE stamped (id INT, ts FLOAT)")
        session.execute("INSERT INTO stamped VALUES (1, NOW())")
        session.close()
        values = set()
        for replica in mw.replicas:
            c = replica.engine.connect(database="shop")
            values.add(c.execute("SELECT ts FROM stamped").scalar())
        assert len(values) == 1  # identical constant everywhere

    def test_rand_rejected_under_rewrite_policy(self, statement_cluster):
        session = statement_cluster.connect(database="shop")
        with pytest.raises(UnsupportedStatementError):
            session.execute("UPDATE kv SET v = RAND()")
        session.close()

    def test_limit_without_order_rejected(self, statement_cluster):
        session = statement_cluster.connect(database="shop")
        with pytest.raises(UnsupportedStatementError):
            session.execute(
                "UPDATE kv SET v = 1 WHERE k IN "
                "(SELECT k FROM kv WHERE v = 0 LIMIT 2)")
        session.close()

    def test_reject_policy_refuses_now(self):
        replicas = make_replicas(2, schema=KV_SCHEMA)
        mw = ReplicationMiddleware(replicas, MiddlewareConfig(
            replication="statement", nondeterminism="reject"))
        session = mw.connect(database="shop")
        session.execute("CREATE TABLE stamped (id INT, ts FLOAT)")
        with pytest.raises(UnsupportedStatementError):
            session.execute("INSERT INTO stamped VALUES (1, NOW())")
        session.close()

    def test_broadcast_policy_diverges(self):
        """E10 core mechanism: shipping RAND() verbatim diverges replicas
        — and detect_divergence catches it via rowcounts? No: rowcounts
        match; the *content* differs, caught by signatures."""
        replicas = make_replicas(2, schema=KV_SCHEMA)
        mw = ReplicationMiddleware(replicas, MiddlewareConfig(
            replication="statement", nondeterminism="broadcast"))
        seed_kv(mw, rows=5)
        session = mw.connect(database="shop")
        session.execute("UPDATE kv SET v = FLOOR(RAND() * 1000)")
        session.close()
        assert not mw.check_convergence()

    def test_replica_crash_mid_write_transparent(self, statement_cluster):
        mw = statement_cluster
        session = mw.connect(database="shop")
        session.begin()
        session.execute("UPDATE kv SET v = 5 WHERE k = 5")
        mw.replicas[1].engine.crash()
        session.execute("UPDATE kv SET v = 6 WHERE k = 6")  # survives
        session.commit()
        session.close()
        survivors = [r for r in mw.replicas if not r.engine.crashed]
        signatures = {r.engine.content_signature() for r in survivors}
        assert len(signatures) == 1

    def test_crashed_replica_skipped_by_router(self, statement_cluster):
        mw = statement_cluster
        session = mw.connect(database="shop")
        session.execute("SELECT COUNT(*) FROM kv")  # r0 serves (round robin)
        mw.replicas[1].engine.crash()  # router must skip it
        result = session.execute("SELECT COUNT(*) FROM kv")
        assert result.scalar() == 10
        session.close()

    def test_read_failover_mid_request(self, statement_cluster):
        """A replica dying *between* routing and execution: the session
        retries transparently on a survivor (section 4.3.3)."""
        from repro.core import analyze
        from repro.sqlengine.parser import parse
        mw = statement_cluster
        session = mw.connect(database="shop")
        replica = mw.replicas[0]
        connection = session._read_connection(replica)
        statement = parse("SELECT COUNT(*) FROM kv")
        replica.engine.crashed = True  # dies after routing chose it
        result = session._run_with_failover(
            replica, connection, statement, "SELECT COUNT(*) FROM kv",
            [], analyze(statement))
        assert result.scalar() == 10
        assert session.failover_replays == 1
        session.close()

    def test_table_locks_serialize_writers(self, statement_cluster):
        from repro.sqlengine.locks import LockConflict
        from repro.sqlengine import DeadlockError
        mw = statement_cluster
        a = mw.connect(database="shop")
        b = mw.connect(database="shop")
        a.begin()
        a.execute("UPDATE kv SET v = 1 WHERE k = 1")
        b.begin()
        with pytest.raises((LockConflict, DeadlockError)):
            b.execute("UPDATE kv SET v = 2 WHERE k = 2")  # same table
        b.rollback()
        a.commit()
        a.close()
        b.close()

    def test_recovery_log_records_statements(self, statement_cluster):
        mw = statement_cluster
        session = mw.connect(database="shop")
        session.execute("UPDATE kv SET v = 1 WHERE k = 1")
        session.close()
        entry = mw.recovery_log.entries[-1]
        assert entry.kind == "statements"
        assert "UPDATE" in entry.payload[0][0]


class TestWritesetMode:
    def test_sync_propagation_converges(self, writeset_cluster):
        mw = writeset_cluster
        session = mw.connect(database="shop")
        session.execute("UPDATE kv SET v = 3 WHERE k = 3")
        session.execute("DELETE FROM kv WHERE k = 9")
        session.execute("INSERT INTO kv VALUES (100, 1)")
        session.close()
        assert mw.check_convergence()

    def test_async_propagation_lags_then_converges(self):
        replicas = make_replicas(2, schema=KV_SCHEMA)
        mw = ReplicationMiddleware(replicas, MiddlewareConfig(
            replication="writeset", propagation="async"))
        seed_kv(mw, rows=5)
        mw.pump()
        session = mw.connect(database="shop")
        session.execute("UPDATE kv SET v = 1 WHERE k = 1")
        session.close()
        lags = sorted(r.lag_items for r in mw.replicas)
        assert lags == [0, 1]
        mw.pump()
        assert mw.check_convergence()

    def test_certification_conflict_aborts_second(self, writeset_cluster):
        mw = writeset_cluster
        a = mw.connect(database="shop")
        b = mw.connect(database="shop")
        a.begin()
        b.begin()
        a.execute("UPDATE kv SET v = 10 WHERE k = 5")
        b.execute("UPDATE kv SET v = 20 WHERE k = 5")
        a.commit()
        with pytest.raises(SerializationError):
            b.commit()
        a.close()
        b.close()
        assert mw.check_convergence()
        assert mw.stats["certification_aborts"] == 1

    def test_disjoint_writes_both_commit(self, writeset_cluster):
        mw = writeset_cluster
        a = mw.connect(database="shop")
        b = mw.connect(database="shop")
        a.begin()
        b.begin()
        a.execute("UPDATE kv SET v = 10 WHERE k = 1")
        b.execute("UPDATE kv SET v = 20 WHERE k = 2")
        a.commit()
        b.commit()
        a.close()
        b.close()
        assert mw.check_convergence()

    def test_read_committed_protocol_allows_lost_update(self):
        replicas = make_replicas(2, schema=KV_SCHEMA)
        mw = ReplicationMiddleware(replicas, MiddlewareConfig(
            replication="writeset", propagation="sync",
            consistency=protocol_by_name("read-committed")))
        seed_kv(mw, rows=3)
        a = mw.connect(database="shop")
        b = mw.connect(database="shop")
        a.begin()
        b.begin()
        a.execute("UPDATE kv SET v = 10 WHERE k = 1")
        b.execute("UPDATE kv SET v = 20 WHERE k = 1")
        a.commit()
        b.commit()  # no certification abort: last writer wins
        a.close()
        b.close()
        assert mw.check_convergence()

    def test_ddl_broadcast_in_writeset_mode(self, writeset_cluster):
        mw = writeset_cluster
        session = mw.connect(database="shop")
        session.execute("CREATE TABLE extra (x INT)")
        session.close()
        for replica in mw.replicas:
            assert replica.engine.database("shop").has_table("extra")

    def test_local_replica_failure_aborts_transaction(self, writeset_cluster):
        """Section 4.3.3: transaction replication cannot transparently
        fail over — the txn lived at one replica."""
        from repro.core import ReplicaUnavailable
        mw = writeset_cluster
        session = mw.connect(database="shop")
        session.begin()
        session.execute("UPDATE kv SET v = 1 WHERE k = 1")
        local = mw.replica_by_name(session._local_replica)
        local.engine.crash()
        local.mark_failed()
        with pytest.raises(ReplicaUnavailable):
            session.execute("UPDATE kv SET v = 2 WHERE k = 2")
        session.rollback()
        session.close()

    def test_writeset_recovery_log(self, writeset_cluster):
        mw = writeset_cluster
        session = mw.connect(database="shop")
        session.execute("UPDATE kv SET v = 1 WHERE k = 1")
        session.close()
        entry = mw.recovery_log.entries[-1]
        assert entry.kind == "writeset"
        assert entry.payload[0]["op"] == "UPDATE"


class TestMasterMode:
    def make(self, propagation="async"):
        replicas = make_replicas(3, schema=KV_SCHEMA)
        mw = ReplicationMiddleware(replicas, MiddlewareConfig(
            replication="writeset", propagation=propagation,
            consistency=protocol_by_name("rsi-pc")))
        seed_kv(mw, rows=5)
        mw.pump()
        return mw

    def test_writes_go_to_master_only(self):
        mw = self.make()
        session = mw.connect(database="shop")
        session.execute("UPDATE kv SET v = 9 WHERE k = 0")
        session.close()
        assert mw.master.stats["served_writes"] >= 1
        satellites = [r for r in mw.replicas if r.name != mw.master.name]
        assert all(r.stats["served_writes"] == 0 for r in satellites)

    def test_session_monotonic_read_own_writes(self):
        mw = self.make()
        session = mw.connect(database="shop")
        session.execute("UPDATE kv SET v = 77 WHERE k = 1")
        # satellites lag (async), but session consistency forces a wait
        value = session.execute("SELECT v FROM kv WHERE k = 1").scalar()
        assert value == 77
        session.close()

    def test_other_sessions_may_read_stale(self):
        mw = self.make()
        writer = mw.connect(database="shop")
        writer.execute("UPDATE kv SET v = 55 WHERE k = 2")
        writer.close()
        fresh = mw.connect(database="shop")
        value = fresh.execute("SELECT v FROM kv WHERE k = 2").scalar()
        assert value in (0, 55)  # GSI-style staleness allowed
        fresh.close()

    def test_master_down_blocks_writes(self):
        from repro.core import ReplicaUnavailable
        mw = self.make()
        mw.master.engine.crash()
        mw.master.mark_failed()
        session = mw.connect(database="shop")
        with pytest.raises(ReplicaUnavailable):
            session.execute("UPDATE kv SET v = 1 WHERE k = 1")
        session.close()


class TestMiddlewareLifecycle:
    def test_fail_kills_sessions_and_recover_restores(self, writeset_cluster):
        mw = writeset_cluster
        session = mw.connect(database="shop")
        session.begin()
        session.execute("UPDATE kv SET v = 1 WHERE k = 1")
        lost = mw.fail()
        assert lost == 1
        with pytest.raises(MiddlewareDown):
            mw.connect(database="shop")
        mw.recover()
        fresh = mw.connect(database="shop")
        # the in-flight txn was rolled back at the replicas
        assert fresh.execute("SELECT v FROM kv WHERE k = 1").scalar() == 0
        fresh.close()

    def test_convergence_check_raises_on_divergence(self, writeset_cluster):
        mw = writeset_cluster
        # surgically diverge one replica behind the middleware's back
        c = mw.replicas[0].engine.connect(database="shop")
        c.execute("INSERT INTO kv VALUES (999, 1)")
        c.close()
        with pytest.raises(ClusterDivergence):
            mw.assert_convergence()

    def test_freshness_wait_counter(self):
        replicas = make_replicas(2, schema=KV_SCHEMA)
        mw = ReplicationMiddleware(replicas, MiddlewareConfig(
            replication="writeset", propagation="async",
            consistency=protocol_by_name("strong-si")))
        seed_kv(mw, rows=3)
        session = mw.connect(database="shop")
        session.execute("UPDATE kv SET v = 1 WHERE k = 1")
        # strong SI read must wait for full freshness on some replica
        value = session.execute("SELECT v FROM kv WHERE k = 1").scalar()
        assert value == 1
        session.close()
