"""Admission gate state machines: token buckets, bulkheads, shedding.

The load-bearing property — "an admitted-then-acked commit is never
shed" — is checked two ways: directly on random operation sequences
(hypothesis drives the gate through admissions, acks, finishes, and
clock advances), and via the gate's own ``acked_then_shed`` audit
counter, which exists so the invariant is observable from outside.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.admission import (
    ACKED,
    ADMITTED,
    DONE,
    FAILED,
    REJECT_BULKHEAD,
    REJECT_QUEUE,
    REJECT_RATE,
    REJECT_UNKNOWN_CLASS,
    AdmissionGate,
    AdmissionRejected,
    BulkheadLane,
    TokenBucket,
    default_gate,
)


class ManualClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        bucket = TokenBucket(rate=10.0, burst=3.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=10.0, burst=3.0)
        for _ in range(3):
            assert bucket.try_take(0.0)
        assert not bucket.try_take(0.05)  # 0.5 tokens accrued
        assert bucket.try_take(0.1)       # 1.0 token accrued
        assert not bucket.try_take(0.1)

    def test_burst_is_the_ceiling(self):
        bucket = TokenBucket(rate=100.0, burst=2.0)
        assert bucket.available(1000.0) == 2.0

    def test_time_going_backwards_does_not_mint_tokens(self):
        bucket = TokenBucket(rate=10.0, burst=1.0)
        assert bucket.try_take(5.0)
        assert not bucket.try_take(0.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)


class TestBulkheadLane:
    def test_bounds_in_flight(self):
        lane = BulkheadLane("read", capacity=2)
        assert lane.try_enter()
        assert lane.try_enter()
        assert not lane.try_enter()
        lane.leave()
        assert lane.try_enter()
        assert lane.peak_in_flight == 2

    def test_leave_without_enter_raises(self):
        lane = BulkheadLane("read", capacity=1)
        with pytest.raises(RuntimeError):
            lane.leave()

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            BulkheadLane("read", capacity=0)


class TestAdmissionGate:
    def _gate(self, **kwargs) -> tuple:
        clock = ManualClock()
        gate = AdmissionGate(clock, **kwargs)
        return clock, gate

    def test_unknown_class_is_labeled(self):
        _clock, gate = self._gate()
        ticket, reason = gate.try_admit("mystery")
        assert ticket is None
        assert reason == REJECT_UNKNOWN_CLASS
        assert gate.rejected["mystery"][REJECT_UNKNOWN_CLASS] == 1

    def test_rate_limit_is_labeled(self):
        clock, gate = self._gate()
        gate.add_class("read", rate=10.0, burst=1.0, lane_capacity=100)
        ticket, _ = gate.try_admit("read")
        assert ticket is not None
        ticket2, reason = gate.try_admit("read")
        assert ticket2 is None and reason == REJECT_RATE
        clock.now = 1.0  # refill
        ticket3, _ = gate.try_admit("read")
        assert ticket3 is not None

    def test_bulkhead_is_labeled_and_isolated_per_class(self):
        clock, gate = self._gate()
        gate.add_class("read", rate=1000.0, lane_capacity=1)
        gate.add_class("commit", rate=1000.0, lane_capacity=1)
        read_ticket, _ = gate.try_admit("read")
        assert read_ticket is not None
        blocked, reason = gate.try_admit("read")
        assert blocked is None and reason == REJECT_BULKHEAD
        # a full read lane must not block commits (bulkhead isolation)
        commit_ticket, _ = gate.try_admit("commit")
        assert commit_ticket is not None

    def test_queue_depth_watermark_sheds_first(self):
        _clock, gate = self._gate(max_pending=1)
        gate.add_class("read", rate=1000.0, lane_capacity=100)
        first, _ = gate.try_admit("read")
        assert first is not None
        _ticket, reason = gate.try_admit("read")
        assert reason == REJECT_QUEUE
        first.finish(ok=True)
        assert gate.pending == 0
        again, _ = gate.try_admit("read")
        assert again is not None

    def test_admit_raises_with_label(self):
        _clock, gate = self._gate()
        with pytest.raises(AdmissionRejected) as excinfo:
            gate.admit("mystery")
        assert excinfo.value.reason == REJECT_UNKNOWN_CLASS
        assert excinfo.value.kind == "mystery"

    def test_ticket_lifecycle(self):
        _clock, gate = self._gate()
        gate.add_class("commit", rate=100.0, lane_capacity=4)
        ticket = gate.admit("commit")
        assert ticket.state == ADMITTED
        ticket.ack()
        assert ticket.state == ACKED
        ticket.ack()  # idempotent while acked
        ticket.finish(ok=True)
        assert ticket.state == DONE
        with pytest.raises(RuntimeError):
            ticket.finish(ok=True)
        with pytest.raises(RuntimeError):
            ticket.ack()
        assert gate.finished_ok == 1
        assert gate.acked["commit"] == 1

    def test_failed_unacked_ticket_is_not_lost_work(self):
        _clock, gate = self._gate()
        gate.add_class("commit", rate=100.0, lane_capacity=4)
        ticket = gate.admit("commit")
        ticket.finish(ok=False)
        assert ticket.state == FAILED
        assert gate.finished_failed == 1
        assert gate.acked_then_shed == 0

    def test_acked_then_failed_is_flagged(self):
        _clock, gate = self._gate()
        gate.add_class("commit", rate=100.0, lane_capacity=4)
        ticket = gate.admit("commit")
        ticket.ack()
        ticket.finish(ok=False)
        assert gate.acked_then_shed == 1  # audit counter catches it

    def test_snapshot_shape(self):
        clock = ManualClock()
        gate = default_gate(clock)
        ticket = gate.admit("read")
        ticket.finish(ok=True)
        snap = gate.snapshot()
        assert snap["admitted"]["read"] == 1
        assert snap["finished_ok"] == 1
        assert snap["acked_then_shed"] == 0
        assert snap["lanes"]["read"]["peak_in_flight"] == 1
        assert gate.total_admitted() == 1
        assert gate.total_rejected() == 0


# -- the property -----------------------------------------------------------

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("admit"), st.sampled_from(["read", "commit"])),
        st.tuples(st.just("ack"), st.integers(0, 30)),
        st.tuples(st.just("finish_ok"), st.integers(0, 30)),
        st.tuples(st.just("finish_fail"), st.integers(0, 30)),
        st.tuples(st.just("tick"), st.floats(0.001, 0.5)),
    ),
    min_size=1, max_size=80,
)


@settings(max_examples=60, deadline=None)
@given(_ops)
def test_admitted_then_acked_commits_are_never_shed(ops):
    """Drive the gate through an arbitrary interleaving of admissions,
    acks, finishes and clock advances; at no point may an acked ticket be
    counted as shed, and gate accounting must balance."""
    clock = ManualClock()
    gate = AdmissionGate(clock, max_pending=8)
    gate.add_class("read", rate=50.0, burst=4.0, lane_capacity=4)
    gate.add_class("commit", rate=20.0, burst=2.0, lane_capacity=2)
    live = []   # tickets not yet finished
    acked = []  # ticket ids acked at any point
    # the only way acked work can be "lost" is a caller explicitly
    # failing an acked ticket — the gate itself has no shed API — and
    # the audit counter must catch exactly those calls, nothing else
    expected_lost = 0
    for op, arg in ops:
        if op == "admit":
            ticket, reason = gate.try_admit(arg)
            if ticket is not None:
                live.append(ticket)
            else:
                assert reason in (REJECT_RATE, REJECT_BULKHEAD,
                                  REJECT_QUEUE)
        elif op == "tick":
            clock.now += arg
        elif live:
            ticket = live[arg % len(live)]
            if op == "ack":
                ticket.ack()
                acked.append(ticket.ticket_id)
            else:
                live.remove(ticket)
                if op == "finish_fail" and ticket.state == ACKED:
                    expected_lost += 1
                ticket.finish(ok=(op == "finish_ok"))
        # the invariant holds at every intermediate step, not just at
        # the end: the gate never sheds acked work on its own
        assert gate.acked_then_shed == expected_lost

    # accounting balances: everything admitted is live or finished
    assert gate.total_admitted() == \
        len(live) + gate.finished_ok + gate.finished_failed
    assert gate.pending == len(live)
    # acked tickets are all accounted for in the gate's per-class counts
    assert sum(gate.acked.values()) == len(set(acked))
    # rejections never consumed a lane slot
    for policy in gate.classes.values():
        assert 0 <= policy.lane.in_flight <= policy.lane.capacity
