"""Cluster management (add/remove replicas, upgrades) and coordinated
backup tests — paper sections 4.4.1-4.4.3."""

import pytest

from repro.core import (
    BackupCoordinator, ClusterManager, MiddlewareConfig, Replica,
    ReplicationMiddleware, protocol_by_name,
)
from repro.sqlengine import Engine, postgresql

from tests.conftest import KV_SCHEMA, make_replicas, seed_kv


@pytest.fixture
def cluster():
    replicas = make_replicas(3, schema=KV_SCHEMA)
    mw = ReplicationMiddleware(replicas, MiddlewareConfig(
        replication="writeset", propagation="sync",
        consistency=protocol_by_name("gsi")))
    seed_kv(mw, rows=10)
    return mw


def empty_replica(name="new"):
    engine = Engine(name, dialect=postgresql(), seed=77)
    return Replica(name, engine)


class TestAddRemove:
    def test_remove_then_readd_via_recovery_log(self, cluster):
        manager = ClusterManager(cluster)
        manager.remove_replica("r2")
        session = cluster.connect(database="shop")
        for key in range(5):
            session.execute(f"UPDATE kv SET v = 3 WHERE k = {key}")
        session.close()
        replica = cluster.replica_by_name("r2")
        # replay what it missed
        replayed = 0
        for entry in cluster.recovery_log.entries_since(replica.applied_seq):
            cluster.recovery_log.replay_entry(replica.engine, entry)
            replica.applied_seq = entry.seq
            replayed += 1
        from repro.core import ReplicaState
        replica.set_state(ReplicaState.ONLINE)
        assert replayed == 5
        assert cluster.check_convergence()

    def test_add_full_stop_causes_outage(self, cluster):
        manager = ClusterManager(cluster)
        session = cluster.connect(database="shop")
        report = manager.add_replica(empty_replica(), strategy="full_stop")
        assert report.write_outage
        assert session.closed  # every session was kicked
        assert cluster.monitor.count("cluster_stopped") == 1
        assert len(cluster.replicas) == 4
        assert cluster.check_convergence()

    def test_add_donor_keeps_serving_but_loses_capacity(self, cluster):
        manager = ClusterManager(cluster)
        report = manager.add_replica(empty_replica(), strategy="donor")
        assert not report.write_outage    # 3 replicas: others keep serving
        assert report.donor_offline is not None
        assert cluster.check_convergence()
        assert all(r.is_online for r in cluster.replicas)

    def test_add_donor_single_replica_means_outage(self):
        replicas = make_replicas(1, schema=KV_SCHEMA)
        mw = ReplicationMiddleware(replicas, MiddlewareConfig(
            replication="writeset"))
        seed_kv(mw, rows=3)
        manager = ClusterManager(mw)
        report = manager.add_replica(empty_replica(), strategy="donor")
        assert report.write_outage  # the paper's m/cluster criticism

    def test_add_recovery_log_no_outage(self, cluster):
        manager = ClusterManager(cluster)
        report = manager.add_replica(empty_replica(),
                                     strategy="recovery_log")
        assert not report.write_outage
        assert report.rows_transferred == 10
        assert cluster.check_convergence()
        assert len(cluster.replicas) == 4

    def test_new_replica_serves_reads(self, cluster):
        manager = ClusterManager(cluster)
        manager.add_replica(empty_replica(), strategy="recovery_log")
        new = cluster.replica_by_name("new")
        c = new.engine.connect(database="shop")
        assert c.execute("SELECT COUNT(*) FROM kv").scalar() == 10

    def test_add_replica_catches_missed_updates(self, cluster):
        manager = ClusterManager(cluster)
        backup = manager.backup.hot_backup("r0")
        # updates commit while the new node restores
        session = cluster.connect(database="shop")
        session.execute("UPDATE kv SET v = 42 WHERE k = 0")
        session.close()
        report = manager.add_replica(empty_replica(),
                                     strategy="recovery_log", backup=backup)
        assert report.entries_replayed >= 1
        new = cluster.replica_by_name("new")
        c = new.engine.connect(database="shop")
        assert c.execute("SELECT v FROM kv WHERE k = 0").scalar() == 42


class TestUpgrades:
    def test_rolling_upgrade_keeps_data_and_converges(self, cluster):
        manager = ClusterManager(cluster)
        report = manager.rolling_engine_upgrade(
            lambda old: old.with_version("9.9"))
        assert report.detail["versions"] == ["9.9"]
        assert not report.write_outage
        assert all(r.engine.dialect.version == "9.9"
                   for r in cluster.online_replicas())
        assert cluster.check_convergence()

    def test_full_stop_upgrade_is_outage(self, cluster):
        manager = ClusterManager(cluster)
        session = cluster.connect(database="shop")
        report = manager.full_stop_engine_upgrade(
            lambda old: old.with_version("9.9"))
        assert report.write_outage
        assert session.closed

    def test_driver_upgrade_cost_asymmetry(self):
        """Paper 4.3.1: 500 clients vs 4 server nodes."""
        costs = ClusterManager.driver_upgrade_cost(client_machines=500)
        assert costs["client_minutes"] == 500 * 15
        assert costs["ratio"] > 50


class TestBackup:
    def test_hot_backup_tags_checkpoint(self, cluster):
        coordinator = BackupCoordinator(cluster)
        backup = coordinator.hot_backup("r0")
        assert backup.mode == "hot"
        assert backup.global_seq == cluster.replica_by_name("r0").applied_seq
        assert backup.checkpoint_name in cluster.recovery_log.checkpoints

    def test_hot_backup_donor_keeps_serving(self, cluster):
        coordinator = BackupCoordinator(cluster)
        coordinator.hot_backup("r0")
        assert cluster.replica_by_name("r0").is_online

    def test_cold_backup_takes_donor_offline(self, cluster):
        coordinator = BackupCoordinator(cluster)
        backup = coordinator.cold_backup("r1")
        assert not cluster.replica_by_name("r1").is_online
        # cluster keeps committing meanwhile
        session = cluster.connect(database="shop")
        session.execute("UPDATE kv SET v = 5 WHERE k = 5")
        session.close()
        replayed = coordinator.resume_offline_donor(backup)
        assert replayed == 1
        assert cluster.check_convergence()

    def test_restore_plus_replay_is_exact(self, cluster):
        coordinator = BackupCoordinator(cluster)
        backup = coordinator.hot_backup("r0")
        session = cluster.connect(database="shop")
        session.execute("UPDATE kv SET v = 7 WHERE k = 7")
        session.execute("INSERT INTO kv VALUES (200, 1)")
        session.close()
        target = empty_replica("restored")
        replayed = coordinator.restore_to_replica(backup, target)
        assert replayed == 2
        assert (target.engine.content_signature()
                == cluster.replicas[0].engine.content_signature())

    def test_backup_of_offline_replica_rejected(self, cluster):
        from repro.core import ReplicaUnavailable, ReplicaState
        cluster.replica_by_name("r0").set_state(ReplicaState.OFFLINE)
        coordinator = BackupCoordinator(cluster)
        with pytest.raises(ReplicaUnavailable):
            coordinator.hot_backup("r0")
