"""Statement-mode invalidation footprints: ``(db, table, pk)`` keys
derived "through simple query parsing" (section 4.3.2), published on the
certified-write stream at commit."""

import pytest

from repro.cache import ResultCacheConfig
from repro.core import (
    MiddlewareConfig, ReplicationMiddleware, protocol_by_name,
)
from repro.core.analysis import analyze
from repro.core.certifier import Certifier
from repro.core.writesets import statement_footprint
from repro.sqlengine import Engine, generic
from repro.sqlengine.parser import parse
from tests.conftest import KV_SCHEMA, make_replicas, seed_kv


@pytest.fixture
def schema_engine():
    e = Engine("fp", dialect=generic(), seed=3)
    e.create_database("shop")
    conn = e.connect(database="shop")
    conn.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
    for i in range(5):
        conn.execute(f"INSERT INTO kv (k, v) VALUES ({i}, 0)")
    conn.close()
    return e


def footprint(engine, sql, params=None):
    statement = parse(sql)
    info = analyze(statement)
    return statement_footprint(statement, info, engine, "shop", params)


class TestPointFootprints:
    def test_update_with_pk_where_is_keyed(self, schema_engine):
        keys, opaque = footprint(
            schema_engine, "UPDATE kv SET v = 1 WHERE k = 2")
        assert not opaque
        assert keys == {("shop", "kv", (2,))}

    def test_update_in_list_keys_every_member(self, schema_engine):
        keys, opaque = footprint(
            schema_engine, "UPDATE kv SET v = 1 WHERE k IN (1, 3)")
        assert not opaque
        assert keys == {("shop", "kv", (1,)), ("shop", "kv", (3,))}

    def test_pk_changing_update_keys_source_and_destination(
            self, schema_engine):
        keys, opaque = footprint(
            schema_engine, "UPDATE kv SET k = 9 WHERE k = 2")
        assert not opaque
        assert keys == {("shop", "kv", (2,)), ("shop", "kv", (9,))}

    def test_delete_with_pk_where_is_keyed(self, schema_engine):
        keys, opaque = footprint(
            schema_engine, "DELETE FROM kv WHERE k = ?", params=[4])
        assert not opaque
        assert keys == {("shop", "kv", (4,))}

    def test_insert_with_explicit_pks_is_keyed(self, schema_engine):
        keys, opaque = footprint(
            schema_engine,
            "INSERT INTO kv (k, v) VALUES (10, 1), (11, 2)")
        assert not opaque
        assert keys == {("shop", "kv", (10,)), ("shop", "kv", (11,))}


class TestTableFallback:
    def test_range_update_falls_back_to_table_key(self, schema_engine):
        keys, opaque = footprint(
            schema_engine, "UPDATE kv SET v = 1 WHERE k > 2")
        assert not opaque
        assert keys == {("shop", "kv", None)}

    def test_non_key_predicate_falls_back(self, schema_engine):
        keys, opaque = footprint(
            schema_engine, "DELETE FROM kv WHERE v = 0")
        assert not opaque
        assert keys == {("shop", "kv", None)}

    def test_insert_without_pk_column_falls_back(self, schema_engine):
        keys, opaque = footprint(
            schema_engine, "INSERT INTO kv (v) VALUES (1)")
        assert not opaque
        assert keys == {("shop", "kv", None)}

    def test_insert_select_falls_back(self, schema_engine):
        keys, opaque = footprint(
            schema_engine,
            "INSERT INTO kv (k, v) SELECT k + 100, v FROM kv")
        assert not opaque
        assert keys == {("shop", "kv", None)}

    def test_pk_assigned_from_expression_falls_back(self, schema_engine):
        keys, opaque = footprint(
            schema_engine, "UPDATE kv SET k = k + 1 WHERE k = 2")
        assert not opaque
        assert keys == {("shop", "kv", None)}

    def test_unknown_table_falls_back_to_table_key(self, schema_engine):
        keys, opaque = footprint(
            schema_engine, "UPDATE ghost SET v = 1 WHERE k = 1")
        assert not opaque
        assert keys == {("shop", "ghost", None)}


class TestOpaqueFootprints:
    def test_ddl_is_opaque(self, schema_engine):
        keys, opaque = footprint(
            schema_engine, "CREATE TABLE extra (id INT PRIMARY KEY)")
        assert opaque and keys == frozenset()

    def test_procedure_call_is_opaque(self, schema_engine):
        keys, opaque = footprint(schema_engine, "CALL do_things()")
        assert opaque

    def test_trigger_bearing_table_is_opaque(self, schema_engine):
        conn = schema_engine.connect(database="shop")
        conn.execute(
            "CREATE TRIGGER trg AFTER UPDATE ON kv FOR EACH ROW "
            "BEGIN UPDATE kv SET v = 0 WHERE k = 0; END")
        conn.close()
        keys, opaque = footprint(
            schema_engine, "UPDATE kv SET v = 1 WHERE k = 2")
        assert opaque


class TestCertifierLog:
    def test_assign_seq_records_the_footprint(self):
        certifier = Certifier()
        keys = frozenset({("shop", "kv", (1,))})
        seq = certifier.assign_seq(keys)
        assert certifier._log[-1] == (seq, keys)

    def test_assign_seq_defaults_to_empty_footprint(self):
        certifier = Certifier()
        seq = certifier.assign_seq()
        assert certifier._log[-1] == (seq, frozenset())


class TestPublishedStream:
    def make_cluster(self):
        replicas = make_replicas(3, schema=KV_SCHEMA)
        middleware = ReplicationMiddleware(
            replicas,
            MiddlewareConfig(replication="statement",
                             consistency=protocol_by_name("gsi"),
                             result_cache=ResultCacheConfig()))
        seed_kv(middleware)
        return middleware

    def collect(self, middleware):
        events = []
        middleware.on_certified(events.append)
        return events

    def test_keyed_write_publishes_point_footprint(self):
        mw = self.make_cluster()
        events = self.collect(mw)
        s = mw.connect(database="shop")
        s.execute("UPDATE kv SET v = 1 WHERE k = 3")
        s.close()
        assert len(events) == 1
        event = events[0]
        assert event.kind == "statements"
        assert event.keys == {("shop", "kv", (3,))}
        assert event.seq == mw.global_seq

    def test_transaction_unions_statement_footprints(self):
        mw = self.make_cluster()
        events = self.collect(mw)
        s = mw.connect(database="shop")
        s.execute("BEGIN")
        s.execute("UPDATE kv SET v = 1 WHERE k = 1")
        s.execute("DELETE FROM kv WHERE k = 2")
        s.execute("COMMIT")
        s.close()
        assert len(events) == 1
        assert events[0].keys == {("shop", "kv", (1,)),
                                  ("shop", "kv", (2,))}

    def test_ddl_publishes_an_opaque_event(self):
        mw = self.make_cluster()
        events = self.collect(mw)
        s = mw.connect(database="shop")
        s.execute("CREATE TABLE extra (id INT PRIMARY KEY)")
        s.close()
        assert any(e.kind == "ddl" for e in events)

    def test_read_only_commit_leaves_no_watermark_gap(self):
        mw = self.make_cluster()
        events = self.collect(mw)
        before = mw.global_seq
        s = mw.connect(database="shop")
        s.execute("BEGIN")
        s.execute("SELECT v FROM kv WHERE k = 1")
        s.execute("COMMIT")
        s.close()
        # read-only commits assign no sequence, so the silent stream is
        # consistent: the watermark still matches the global sequence
        assert events == []
        assert mw.global_seq == before
        assert mw.cache_invalidator.applied_seq == mw.global_seq

    def test_locking_write_commit_publishes_even_when_empty(self):
        mw = self.make_cluster()
        events = self.collect(mw)
        s = mw.connect(database="shop")
        s.execute("BEGIN")
        s.execute("SELECT v FROM kv WHERE k = 1 FOR UPDATE")
        s.execute("COMMIT")
        s.close()
        # the commit was certified (a sequence was assigned): it must
        # publish, or the cache watermark would lag the global sequence
        assert len(events) == 1
        assert events[0].kind == "statements"
        assert events[0].keys == frozenset()
        assert events[0].seq == mw.global_seq
        assert mw.cache_invalidator.applied_seq == mw.global_seq
