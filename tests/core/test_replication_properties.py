"""Property-based tests on replication invariants: whatever random
sequence of transactions runs, the cluster converges."""

import random

from hypothesis import given, settings, strategies as st

from repro.core import MiddlewareConfig, ReplicationMiddleware, protocol_by_name
from repro.sqlengine import SQLError
from repro.sqlengine.locks import LockConflict

from tests.conftest import KV_SCHEMA, make_replicas, seed_kv


def build(replication, propagation, consistency=None, n=3):
    replicas = make_replicas(n, schema=KV_SCHEMA)
    config = MiddlewareConfig(
        replication=replication, propagation=propagation,
        consistency=protocol_by_name(consistency) if consistency else None)
    mw = ReplicationMiddleware(replicas, config)
    mw.interleave_auto_increment()
    seed_kv(mw, rows=8)
    mw.pump()
    return mw


operation = st.tuples(
    st.sampled_from(["update", "insert", "delete", "read"]),
    st.integers(0, 7),
    st.integers(0, 99),
)


def run_operations(mw, operations):
    session = mw.connect(database="shop")
    inserted = 100
    for op, key, value in operations:
        try:
            if op == "update":
                session.execute(f"UPDATE kv SET v = {value} WHERE k = {key}")
            elif op == "insert":
                inserted += 1
                session.execute(
                    f"INSERT INTO kv VALUES ({inserted}, {value})")
            elif op == "delete":
                session.execute(f"DELETE FROM kv WHERE k = {key}")
            else:
                session.execute("SELECT COUNT(*) FROM kv")
        except (SQLError, LockConflict):
            pass
    session.close()


@settings(max_examples=15, deadline=None)
@given(st.lists(operation, min_size=1, max_size=30))
def test_statement_mode_always_converges(operations):
    mw = build("statement", "sync")
    run_operations(mw, operations)
    assert mw.check_convergence()


@settings(max_examples=15, deadline=None)
@given(st.lists(operation, min_size=1, max_size=30))
def test_writeset_sync_always_converges(operations):
    mw = build("writeset", "sync", "gsi")
    run_operations(mw, operations)
    assert mw.check_convergence()


@settings(max_examples=15, deadline=None)
@given(st.lists(operation, min_size=1, max_size=30))
def test_writeset_async_converges_after_pump(operations):
    mw = build("writeset", "async", "pcsi")
    run_operations(mw, operations)
    mw.pump()
    assert mw.check_convergence()


@settings(max_examples=10, deadline=None)
@given(st.lists(operation, min_size=1, max_size=25),
       st.integers(0, 2))
def test_failed_replica_resyncs_to_identical_state(operations, victim):
    """Whatever committed while a replica was down, failback via the
    recovery log restores byte-identical content."""
    from repro.core import FailoverManager
    mw = build("writeset", "sync", "gsi")
    name = mw.replicas[victim].name
    mw.replicas[victim].mark_failed()
    run_operations(mw, operations)
    manager = FailoverManager(mw)
    manager.failback(name)
    assert mw.check_convergence(online_only=False)


@settings(max_examples=10, deadline=None)
@given(st.lists(operation, min_size=1, max_size=20), st.integers(1, 10))
def test_recovery_log_replay_equals_direct_execution(operations, cut):
    """Replaying the recovery log from any point produces the same state
    as having executed everything directly."""
    mw = build("statement", "sync", n=2)
    run_operations(mw, operations)
    reference = mw.replicas[0].engine.content_signature()
    # rebuild a fresh engine purely from the recovery log
    fresh = make_replicas(1, schema=KV_SCHEMA, prefix="fresh")[0]
    seed_session = fresh.engine.connect(database="shop")
    for key in range(8):
        seed_session.execute(f"INSERT INTO kv VALUES ({key}, 0)")
    seed_session.close()
    # skip the seed entries (they were already applied manually)
    seeded = 8
    for entry in mw.recovery_log.entries[seeded:]:
        mw.recovery_log.replay_entry(fresh.engine, entry)
    assert fresh.engine.content_signature() == reference


@settings(max_examples=10, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 99)),
                min_size=2, max_size=15))
def test_concurrent_sessions_converge(pairs):
    """Two interleaved sessions with conflicts/aborts still converge."""
    mw = build("writeset", "sync", "gsi")
    a = mw.connect(database="shop")
    b = mw.connect(database="shop")
    rng = random.Random(42)
    for key, value in pairs:
        session = a if rng.random() < 0.5 else b
        try:
            session.execute(f"UPDATE kv SET v = {value} WHERE k = {key}")
        except (SQLError, LockConflict):
            pass
    a.close()
    b.close()
    assert mw.check_convergence()
