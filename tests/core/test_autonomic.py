"""Autonomic provisioning tests (paper section 4.4.2 / [9])."""

import pytest

from repro.core import (
    AutonomicProvisioner, CostModel, MiddlewareConfig, Replica,
    ReplicationMiddleware, SyncTimePredictor, protocol_by_name,
)
from repro.sqlengine import Engine, postgresql

from tests.conftest import KV_SCHEMA, make_replicas, seed_kv


class TestSyncTimePredictor:
    def test_replay_rate_scales_with_parallelism(self):
        serial = SyncTimePredictor(replay_parallelism=1)
        parallel = SyncTimePredictor(replay_parallelism=8)
        assert parallel.replay_rate() > serial.replay_rate() * 2

    def test_feasible_prediction(self):
        predictor = SyncTimePredictor(
            CostModel(writeset_apply=0.001), replay_parallelism=1)
        prediction = predictor.predict(
            backup_rows=100000, log_entries_behind=1000,
            cluster_update_rate=100.0)
        assert prediction.feasible
        assert prediction.restore_seconds == pytest.approx(2.0)
        assert prediction.total_seconds > prediction.restore_seconds

    def test_infeasible_when_updates_outpace_replay(self):
        """The section 4.4.2 race: replay slower than the update stream
        means the replica never catches up."""
        predictor = SyncTimePredictor(
            CostModel(writeset_apply=0.01), replay_parallelism=1)
        # replay rate = 100/s; update rate 150/s -> never converges
        prediction = predictor.predict(
            backup_rows=1000, log_entries_behind=10,
            cluster_update_rate=150.0)
        assert not prediction.feasible
        assert prediction.catchup_seconds == float("inf")

    def test_parallel_replay_rescues_infeasible_sync(self):
        cost = CostModel(writeset_apply=0.01)
        serial = SyncTimePredictor(cost, replay_parallelism=1)
        parallel = SyncTimePredictor(cost, replay_parallelism=8)
        rate = 150.0
        assert not serial.predict(1000, 10, rate).feasible
        assert parallel.predict(1000, 10, rate).feasible

    def test_gap_grows_during_restore(self):
        predictor = SyncTimePredictor(CostModel(writeset_apply=0.001),
                                      restore_rows_per_second=1000.0)
        prediction = predictor.predict(
            backup_rows=10000, log_entries_behind=0,
            cluster_update_rate=50.0)
        # 10 s restore at 50 updates/s -> ~500 entries owed at the start
        assert prediction.entries_to_replay >= 500


class TestAutonomicProvisioner:
    def make(self, replicas=3):
        cluster = ReplicationMiddleware(
            make_replicas(replicas, schema=KV_SCHEMA),
            MiddlewareConfig(replication="writeset", propagation="sync",
                             consistency=protocol_by_name("gsi")))
        seed_kv(cluster, rows=10)

        def factory(name):
            return Replica(name, Engine(name, dialect=postgresql()))

        return AutonomicProvisioner(
            cluster, replica_factory=factory,
            high_watermark=3.0, low_watermark=0.5,
            min_replicas=2, max_replicas=5)

    def load_up(self, provisioner, items=10):
        from repro.core import ApplyItem
        for replica in provisioner.middleware.replicas:
            for seq in range(items):
                replica.enqueue(ApplyItem(1000 + seq, "writeset", []))

    def drain(self, provisioner):
        for replica in provisioner.middleware.replicas:
            replica.apply_queue.clear()

    def test_hold_within_watermarks(self):
        provisioner = self.make()
        self.load_up(provisioner, items=2)   # between the watermarks
        decision = provisioner.step(update_rate=10.0)
        assert decision.action == "hold"
        assert len(provisioner.middleware.replicas) == 3

    def test_scale_out_under_load(self):
        provisioner = self.make()
        self.load_up(provisioner)
        decision = provisioner.step(update_rate=10.0)
        assert decision.action == "add"
        assert decision.prediction is not None and decision.prediction.feasible
        assert len(provisioner.middleware.online_replicas()) == 4
        assert provisioner.middleware.check_convergence()

    def test_refuses_infeasible_scale_out(self):
        provisioner = self.make()
        provisioner.predictor = SyncTimePredictor(
            CostModel(writeset_apply=0.01), replay_parallelism=1)
        self.load_up(provisioner)
        decision = provisioner.step(update_rate=500.0)  # > replay rate
        assert decision.action == "hold"
        assert "never" in decision.reason or "catch up" in decision.reason

    def test_refuses_over_budget_sync(self):
        provisioner = self.make()
        provisioner.max_sync_seconds = 0.000001
        self.load_up(provisioner)
        decision = provisioner.step(update_rate=1.0)
        assert decision.action == "hold"
        assert "budget" in decision.reason

    def test_scale_in_when_idle(self):
        provisioner = self.make(replicas=4)
        decision = provisioner.step(update_rate=0.0)
        assert decision.action == "remove"
        assert len(provisioner.middleware.online_replicas()) == 3

    def test_never_below_min_replicas(self):
        provisioner = self.make(replicas=2)
        decision = provisioner.step(update_rate=0.0)
        assert decision.action == "hold"
        assert len(provisioner.middleware.online_replicas()) == 2

    def test_never_above_max_replicas(self):
        provisioner = self.make(replicas=3)
        provisioner.max_replicas = 3
        self.load_up(provisioner)
        decision = provisioner.step(update_rate=1.0)
        assert decision.action == "hold"


class TestInformationSchema:
    def test_tables_view(self, conn):
        conn.execute("CREATE TABLE t1 (id INT PRIMARY KEY)")
        rows = conn.execute(
            "SELECT table_db, table_name FROM information_schema.tables "
            "WHERE table_db = 'shop'").rows
        assert ("shop", "t1") in rows

    def test_columns_view(self, conn):
        conn.execute("CREATE TABLE t2 (id INT PRIMARY KEY AUTO_INCREMENT, "
                     "name VARCHAR(10) NOT NULL)")
        rows = conn.execute(
            "SELECT column_name, primary_key, is_auto_increment, nullable "
            "FROM information_schema.columns WHERE table_name = 't2' "
            "ORDER BY ordinal").rows
        assert rows[0] == ("id", True, True, False)
        assert rows[1] == ("name", False, False, False)

    def test_users_and_sequences_views(self, engine, conn):
        engine.users.add_user("bob", "pw")
        conn.execute("CREATE SEQUENCE s START WITH 5")
        conn.execute("SELECT NEXTVAL('s')")
        users = {r[0] for r in conn.execute(
            "SELECT user_name FROM information_schema.users").rows}
        assert {"admin", "bob"} <= users
        row = conn.execute(
            "SELECT last_value FROM information_schema.sequences "
            "WHERE sequence_name = 's'").rows[0]
        assert row == (5,)

    def test_triggers_and_procedures_views(self, conn):
        conn.execute("CREATE TABLE watched (x INT)")
        conn.execute("CREATE TABLE log1 (x INT)")
        conn.execute(
            "CREATE TRIGGER trg AFTER INSERT ON watched FOR EACH ROW "
            "BEGIN INSERT INTO log1 (x) VALUES (1); END")
        conn.execute("CREATE PROCEDURE p(a, b) BEGIN SELECT 1; END")
        trigger = conn.execute(
            "SELECT table_name, timing, event FROM "
            "information_schema.triggers WHERE trigger_name = 'trg'").rows
        assert trigger == [("watched", "AFTER", "INSERT")]
        procedure = conn.execute(
            "SELECT parameter_count FROM information_schema.procedures "
            "WHERE procedure_name = 'p'").scalar()
        assert procedure == 2

    def test_views_are_read_only(self, conn):
        from repro.sqlengine import AccessDeniedError, SQLError
        with pytest.raises((AccessDeniedError, SQLError)):
            conn.execute(
                "DELETE FROM information_schema.tables")

    def test_unknown_view_raises(self, conn):
        from repro.sqlengine import NameError_
        with pytest.raises(NameError_):
            conn.execute("SELECT * FROM information_schema.nonsense")

    def test_join_with_user_tables(self, conn):
        """Middleware can discover schema and correlate it with data."""
        conn.execute("CREATE TABLE inv (id INT PRIMARY KEY)")
        count = conn.execute(
            "SELECT COUNT(*) FROM information_schema.columns c "
            "WHERE c.table_name = 'inv'").scalar()
        assert count == 1
