"""Shared fixtures for the test suite."""

import pytest

from repro.core import (
    MiddlewareConfig, Replica, ReplicationMiddleware, protocol_by_name,
)
from repro.sqlengine import Engine, generic, mysql, oracle, postgresql, sybase


@pytest.fixture
def engine():
    """A generic-dialect engine with a ``shop`` database."""
    e = Engine("test", dialect=generic(), seed=42)
    e.create_database("shop")
    return e


@pytest.fixture
def conn(engine):
    connection = engine.connect(database="shop")
    yield connection
    connection.close()


@pytest.fixture
def pg_engine():
    e = Engine("pg", dialect=postgresql(), seed=42)
    e.create_database("shop")
    return e


@pytest.fixture
def mysql_engine():
    e = Engine("my", dialect=mysql(), seed=42)
    e.create_database("shop")
    return e


@pytest.fixture
def sybase_engine():
    e = Engine("syb", dialect=sybase(), seed=42)
    e.create_database("shop")
    return e


@pytest.fixture
def oracle_engine():
    e = Engine("ora", dialect=oracle(), seed=42)
    e.create_database("shop")
    return e


def make_replicas(count, dialect_factory=postgresql, database="shop",
                  schema=None, prefix="r"):
    """Build replicas sharing an identical schema."""
    replicas = []
    for index in range(count):
        engine = Engine(f"{prefix}{index}", dialect=dialect_factory(),
                        seed=500 + index)
        engine.create_database(database)
        if schema:
            connection = engine.connect(database=database)
            for sql in schema:
                connection.execute(sql)
            connection.close()
        replicas.append(Replica(f"{prefix}{index}", engine))
    return replicas


KV_SCHEMA = ["CREATE TABLE kv (k INT PRIMARY KEY, v INT)"]


def seed_kv(middleware, rows=10):
    session = middleware.connect(database="shop")
    for key in range(rows):
        session.execute(f"INSERT INTO kv (k, v) VALUES ({key}, 0)")
    session.close()


@pytest.fixture
def statement_cluster():
    replicas = make_replicas(3, schema=KV_SCHEMA)
    middleware = ReplicationMiddleware(
        replicas, MiddlewareConfig(replication="statement"))
    seed_kv(middleware)
    return middleware


@pytest.fixture
def writeset_cluster():
    replicas = make_replicas(3, schema=KV_SCHEMA)
    middleware = ReplicationMiddleware(
        replicas,
        MiddlewareConfig(replication="writeset", propagation="sync",
                         consistency=protocol_by_name("gsi")))
    middleware.interleave_auto_increment()
    seed_kv(middleware)
    return middleware
