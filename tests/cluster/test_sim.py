"""Discrete-event simulation kernel tests."""

import pytest

from repro.cluster.sim import (
    Environment, Interrupt, Resource, SimulationError, Store,
)


def test_timeout_advances_clock():
    env = Environment()
    done = []

    def proc():
        yield env.timeout(2.5)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [2.5]


def test_processes_interleave_in_time_order():
    env = Environment()
    order = []

    def proc(name, delay):
        yield env.timeout(delay)
        order.append(name)

    env.process(proc("slow", 3))
    env.process(proc("fast", 1))
    env.process(proc("mid", 2))
    env.run()
    assert order == ["fast", "mid", "slow"]


def test_run_until_limit():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(1)

    env.process(proc())
    env.run(until=5.5)
    assert env.now == 5.5


def test_process_return_value():
    env = Environment()

    def child():
        yield env.timeout(1)
        return 42

    def parent():
        value = yield env.process(child())
        return value * 2

    p = env.process(parent())
    env.run()
    assert p.value == 84


def test_all_of_waits_for_all():
    env = Environment()

    def child(delay):
        yield env.timeout(delay)
        return delay

    def parent():
        values = yield env.all_of([
            env.process(child(1)), env.process(child(3)),
            env.process(child(2)),
        ])
        return (env.now, values)

    p = env.process(parent())
    env.run()
    assert p.value == (3, [1, 3, 2])


def test_any_of_returns_first():
    env = Environment()

    def parent():
        value = yield env.any_of([env.timeout(5, "slow"),
                                  env.timeout(1, "fast")])
        return (env.now, value)

    p = env.process(parent())
    env.run()
    assert p.value == (1, "fast")


def test_process_exception_surfaces():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise ValueError("boom")

    env.process(bad())
    with pytest.raises(ValueError):
        env.run()


def test_exception_propagates_to_waiter():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise ValueError("boom")

    def parent():
        try:
            yield env.process(bad())
        except ValueError:
            return "caught"

    p = env.process(parent())
    env.run()
    assert p.value == "caught"


def test_yield_non_event_fails():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError):
        env.run()


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_interrupt():
    env = Environment()

    def sleeper():
        try:
            yield env.timeout(100)
        except Interrupt as interrupt:
            return ("interrupted", interrupt.cause, env.now)

    p = env.process(sleeper())

    def interrupter():
        yield env.timeout(2)
        p.interrupt("wake up")

    env.process(interrupter())
    env.run(until=10)
    assert p.value == ("interrupted", "wake up", 2)


def test_resource_queueing():
    env = Environment()
    resource = Resource(env, capacity=1)
    finished = []

    def worker(name):
        request = resource.request()
        yield request
        yield env.timeout(2)
        resource.release()
        finished.append((name, env.now))

    env.process(worker("a"))
    env.process(worker("b"))
    env.run()
    assert finished == [("a", 2), ("b", 4)]


def test_resource_capacity_two():
    env = Environment()
    resource = Resource(env, capacity=2)
    finished = []

    def worker(name):
        yield resource.request()
        yield env.timeout(2)
        resource.release()
        finished.append((name, env.now))

    for name in "abc":
        env.process(worker(name))
    env.run()
    assert [t for _n, t in finished] == [2, 2, 4]


def test_resource_release_without_request():
    env = Environment()
    resource = Resource(env, capacity=1)
    with pytest.raises(SimulationError):
        resource.release()


def test_store_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    def producer():
        for item in "xyz":
            yield env.timeout(1)
            store.put(item)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == ["x", "y", "z"]


def test_run_until_event():
    env = Environment()
    target = env.event()

    def proc():
        yield env.timeout(3)
        target.succeed("ready")

    env.process(proc())
    value = env.run_until(target)
    assert value == "ready" and env.now == 3


def test_deterministic_given_same_seed_structure():
    def build():
        env = Environment()
        trace = []

        def proc(name, delay):
            yield env.timeout(delay)
            trace.append((env.now, name))

        for index in range(5):
            env.process(proc(f"p{index}", (index * 7) % 3 + 0.5))
        env.run()
        return trace

    assert build() == build()
