"""Network fabric tests: latency, partitions, RPC timeout semantics."""

import pytest

from repro.cluster import (
    Environment, LatencyModel, Network, NetworkTimeout, Node, rpc_endpoint,
)


@pytest.fixture
def env():
    return Environment()


def test_send_delivers_after_latency(env):
    net = Network(env, LatencyModel(base=0.01, jitter=0.0))
    got = []
    net.register("dst", lambda m: got.append((env.now, m.payload)))
    net.send("src", "dst", "hello")
    env.run()
    assert got and got[0][1] == "hello"
    assert got[0][0] >= 0.01


def test_rpc_round_trip(env):
    net = Network(env, LatencyModel(base=0.01, jitter=0.0))
    rpc_endpoint(net, "server", lambda payload, sender: payload + 1)

    def client():
        value = yield from net.rpc("client", "server", 41)
        return (value, env.now)

    p = env.process(client())
    env.run()
    value, elapsed = p.value
    assert value == 42
    assert elapsed >= 0.02  # two hops


def test_rpc_handler_exception_travels_back(env):
    net = Network(env)

    def handler(payload, sender):
        raise RuntimeError("server-side boom")

    rpc_endpoint(net, "server", handler)

    def client():
        try:
            yield from net.rpc("client", "server", 1)
        except RuntimeError as exc:
            return str(exc)

    p = env.process(client())
    env.run()
    assert p.value == "server-side boom"


def test_rpc_generator_handler(env):
    net = Network(env)
    node = Node(env, "srv")

    def handler(payload, sender):
        yield from node.execute(0.05)
        return payload * 2

    rpc_endpoint(net, "server", handler)

    def client():
        value = yield from net.rpc("client", "server", 21)
        return (value, env.now)

    p = env.process(client())
    env.run()
    assert p.value[0] == 42
    assert p.value[1] >= 0.05


def test_partition_drops_traffic_silently(env):
    net = Network(env)
    got = []
    net.register("dst", lambda m: got.append(m))
    net.partition({"src"}, {"dst"})
    net.send("src", "dst", "lost")
    env.run()
    assert not got
    assert net.messages_dropped == 1


def test_partition_heals(env):
    net = Network(env)
    got = []
    net.register("dst", lambda m: got.append(m))
    net.partition({"src"}, {"dst"})
    net.heal_partition()
    net.send("src", "dst", "ok")
    env.run()
    assert len(got) == 1


def test_rpc_hangs_until_timeout_on_partition(env):
    """Section 4.3.4.2: no connection reset — the caller waits the full
    timeout, like TCP with default keep-alive."""
    net = Network(env)
    rpc_endpoint(net, "server", lambda p, s: p)
    net.partition({"client"}, {"server"})

    def client():
        try:
            yield from net.rpc("client", "server", 1, timeout=7.0)
        except NetworkTimeout:
            return env.now

    p = env.process(client())
    env.run()
    assert p.value == pytest.approx(7.0)


def test_down_endpoint_swallows_messages(env):
    net = Network(env)
    got = []
    net.register("dst", lambda m: got.append(m))
    net.set_endpoint_down("dst")
    net.send("src", "dst", "x")
    env.run()
    assert not got
    net.set_endpoint_down("dst", False)
    net.send("src", "dst", "y")
    env.run()
    assert len(got) == 1


def test_drop_rate(env):
    net = Network(env, drop_rate=1.0)
    got = []
    net.register("dst", lambda m: got.append(m))
    for _ in range(10):
        net.send("src", "dst", "x")
    env.run()
    assert not got and net.messages_dropped == 10


def test_latency_pair_override(env):
    model = LatencyModel(base=0.001, jitter=0.0)
    model.set_pair("eu", "us", 0.08)  # transatlantic
    assert model.sample("eu", "us") == pytest.approx(0.08)
    assert model.sample("a", "b") == pytest.approx(0.001)


def test_link_degradation(env):
    """Crimped cable: 10x latency factor (section 4.1.3)."""
    model = LatencyModel(base=0.001, jitter=0.0)
    model.degrade("a", "b", 10.0)
    assert model.sample("a", "b") == pytest.approx(0.01)
    model.heal_link("a", "b")
    assert model.sample("a", "b") == pytest.approx(0.001)


def test_size_scales_latency(env):
    model = LatencyModel(base=0.001, jitter=0.0)
    assert model.sample("a", "b", size=100) == pytest.approx(0.1)


def test_statistics_counted(env):
    net = Network(env)
    net.register("dst", lambda m: None)
    net.send("src", "dst", "x", size=5)
    env.run()
    assert net.messages_sent == 1
    assert net.messages_delivered == 1
    assert net.bytes_sent == 5
