"""Nodes, group communication, heartbeats, fault injection."""

import pytest

from repro.cluster import (
    Environment, FaultInjector, HeartbeatDetector, Network, Node, NodeDown,
    TcpKeepaliveDetector, TotalOrderChannel, random_schedule,
)


@pytest.fixture
def env():
    return Environment()


# ---------------------------------------------------------------------------
# nodes
# ---------------------------------------------------------------------------

class TestNodes:
    def test_execute_charges_time(self, env):
        node = Node(env, "n1")

        def proc():
            yield from node.execute(0.5)
            return env.now

        p = env.process(proc())
        env.run()
        assert p.value == pytest.approx(0.5)

    def test_speed_factor(self, env):
        node = Node(env, "n1", speed_factor=2.0)

        def proc():
            yield from node.execute(1.0)
            return env.now

        p = env.process(proc())
        env.run()
        assert p.value == pytest.approx(0.5)

    def test_silent_disk_degradation(self, env):
        """RAID battery dies: IO is 2x slower, nobody is told (4.1.3)."""
        node = Node(env, "n1")
        node.degrade_disk(2.0)

        def proc():
            yield from node.execute(1.0, io_fraction=1.0)
            return env.now

        p = env.process(proc())
        env.run()
        assert p.value == pytest.approx(2.0)

    def test_cpu_queueing(self, env):
        node = Node(env, "n1", cores=1)
        completions = []

        def proc(name):
            yield from node.execute(1.0)
            completions.append((name, env.now))

        env.process(proc("a"))
        env.process(proc("b"))
        env.run()
        assert [t for _n, t in completions] == [1.0, 2.0]

    def test_crashed_node_rejects_work(self, env):
        node = Node(env, "n1")
        node.crash()

        def proc():
            yield from node.execute(1.0)

        env.process(proc())
        with pytest.raises(NodeDown):
            env.run()

    def test_downtime_accounting(self, env):
        node = Node(env, "n1")

        def scenario():
            yield env.timeout(5)
            node.crash()
            yield env.timeout(3)
            node.recover()

        env.process(scenario())
        env.run()
        assert node.total_downtime == pytest.approx(3.0)
        assert node.crash_count == 1


# ---------------------------------------------------------------------------
# total order multicast
# ---------------------------------------------------------------------------

class TestGroupComm:
    def _deliveries(self, env, protocol, members=3, messages=6):
        net = Network(env)
        channel = TotalOrderChannel(env, net, "g", protocol=protocol)
        log = {f"m{i}": [] for i in range(members)}
        for name in log:
            channel.join(name, lambda d, name=name: log[name].append(
                (d.seq, d.payload)))

        def sender():
            for index in range(messages):
                channel.multicast(f"m{index % members}", f"msg{index}")
                yield env.timeout(0.002)

        env.process(sender())
        env.run(until=5.0)
        channel.stop()
        return channel, log

    def test_sequencer_total_order(self, env):
        channel, log = self._deliveries(env, "sequencer")
        sequences = list(log.values())
        assert all(s == sequences[0] for s in sequences)
        assert [seq for seq, _p in sequences[0]] == [1, 2, 3, 4, 5, 6]

    def test_token_total_order(self, env):
        channel, log = self._deliveries(env, "token")
        sequences = list(log.values())
        assert all(s == sequences[0] for s in sequences)
        assert len(sequences[0]) == 6

    def test_multicast_completion_event(self, env):
        net = Network(env)
        channel = TotalOrderChannel(env, net, "g")
        channel.join("a", lambda d: None)
        channel.join("b", lambda d: None)
        done = channel.multicast("a", "x")
        env.run(until=1.0)
        assert done.triggered

    def test_leaving_member_stops_receiving(self, env):
        net = Network(env)
        channel = TotalOrderChannel(env, net, "g")
        got = {"a": [], "b": []}
        channel.join("a", lambda d: got["a"].append(d.payload))
        channel.join("b", lambda d: got["b"].append(d.payload))
        channel.multicast("a", "first")
        env.run(until=0.5)
        channel.leave("b")
        channel.multicast("a", "second")
        env.run(until=1.0)
        assert got["a"] == ["first", "second"]
        assert got["b"] == ["first"]

    def test_view_change_notifications(self, env):
        net = Network(env)
        channel = TotalOrderChannel(env, net, "g")
        views = []
        channel.on_view_change(lambda vid, view: views.append(list(view)))
        channel.join("a", lambda d: None)
        channel.join("b", lambda d: None)
        channel.leave("a")
        assert views == [["a"], ["a", "b"], ["b"]]
        assert channel.sequencer == "b"

    def test_latency_grows_with_group_size(self, env):
        """Section 4.3.4.1: GC is an intrinsic scalability limit."""
        def mean_latency(members):
            local_env = Environment()
            net = Network(local_env)
            channel = TotalOrderChannel(local_env, net, "g")
            for index in range(members):
                channel.join(f"m{index}", lambda d: None)

            def sender():
                for _ in range(20):
                    channel.multicast("m0", "x")
                    yield local_env.timeout(0.01)

            local_env.process(sender())
            local_env.run(until=2.0)
            return channel.mean_delivery_latency()

        assert mean_latency(8) > 0

    def test_state_transfer_cost_scales(self, env):
        net = Network(env)
        channel = TotalOrderChannel(env, net, "g")
        small = channel.state_transfer("donor", "joiner", state_size=10)
        env.run()
        t_small = env.now
        big = channel.state_transfer("donor", "joiner", state_size=10000)
        env.run()
        assert (env.now - t_small) > t_small


# ---------------------------------------------------------------------------
# failure detectors
# ---------------------------------------------------------------------------

class TestDetectors:
    def test_heartbeat_detects_crash(self, env):
        net = Network(env)
        node = Node(env, "db1")
        detector = HeartbeatDetector(env, net, "mon", interval=0.5,
                                     timeout=0.5, miss_threshold=3)
        detector.watch(node)
        detector.start()
        injector = FaultInjector(env, network=net)
        injector.crash_at(node, time=5.0)
        env.run(until=20.0)
        detector.stop()
        real = [d for d in detector.detections if not d.false_positive]
        assert len(real) == 1
        assert 0 < real[0].detection_latency < 5.0

    def test_heartbeat_false_positive_under_load(self, env):
        """Aggressive timeout + busy node = false positive (4.3.4.2)."""
        net = Network(env)
        node = Node(env, "db1", cores=1)
        detector = HeartbeatDetector(env, net, "mon", interval=0.05,
                                     timeout=0.05, miss_threshold=2,
                                     ping_service_time=0.001)
        detector.watch(node)
        detector.start()

        def hog():
            while env.now < 5.0:
                yield from node.execute(0.5)

        env.process(hog())
        env.run(until=5.0)
        detector.stop()
        assert any(d.false_positive for d in detector.detections)

    def test_tcp_keepalive_slow_detection(self, env):
        node = Node(env, "db1")
        detector = TcpKeepaliveDetector(env, keepalive_timeout=120.0)
        detector.watch(node)

        def fault():
            yield env.timeout(10.0)
            node.crash()

        env.process(fault())
        env.run(until=300.0)
        assert detector.detections
        assert detector.detections[0].detection_latency >= 100.0

    def test_heartbeat_recovery_callback(self, env):
        net = Network(env)
        node = Node(env, "db1")
        detector = HeartbeatDetector(env, net, "mon", interval=0.5,
                                     timeout=0.5, miss_threshold=2)
        detector.watch(node)
        detector.start()
        events = []
        detector.on_failure(lambda t: events.append(("down", env.now)))
        detector.on_recovery(lambda t: events.append(("up", env.now)))
        injector = FaultInjector(env, network=net)
        injector.crash_at(node, time=2.0, repair_after=5.0)

        def unping_fix():
            # bring the ping endpoint back when the node recovers
            yield env.timeout(7.5)
            net.set_endpoint_down("ping:db1", False)

        env.process(unping_fix())
        env.run(until=20.0)
        detector.stop()
        kinds = [k for k, _t in events]
        assert "down" in kinds and "up" in kinds


# ---------------------------------------------------------------------------
# fault injection
# ---------------------------------------------------------------------------

class TestFaultInjector:
    def test_poisson_failure_rate_roughly_matches_paper(self, env):
        """1 failure/day/200 CPUs: with 200 nodes over 10 simulated days we
        expect on the order of 10 crashes."""
        nodes = [Node(env, f"n{i}") for i in range(200)]
        injector = FaultInjector(env, seed=9)
        injector.poisson_crashes(nodes, mean_repair_time=600.0)
        env.run(until=10 * 86400.0)
        injector.stop()
        crashes = injector.count("crash")
        assert 3 <= crashes <= 30  # Poisson around 10

    def test_rack_outage_simultaneous(self, env):
        nodes = [Node(env, f"n{i}") for i in range(4)]
        injector = FaultInjector(env)
        injector.rack_outage_at(nodes[:2], time=1.0, repair_after=2.0)
        env.run(until=2.0)
        assert not nodes[0].up and not nodes[1].up and nodes[2].up
        env.run(until=5.0)
        assert nodes[0].up and nodes[1].up

    def test_partition_injection(self, env):
        net = Network(env)
        injector = FaultInjector(env, network=net)
        injector.partition_at([{"a"}, {"b"}], time=1.0, heal_after=2.0)
        env.run(until=1.5)
        assert not net.connected("a", "b")
        env.run(until=4.0)
        assert net.connected("a", "b")

    def test_disk_degradation_injection(self, env):
        node = Node(env, "n1")
        injector = FaultInjector(env)
        injector.degrade_disk_at(node, time=1.0, factor=2.0)
        env.run(until=2.0)
        assert node.disk_factor == pytest.approx(0.5)

    def test_flap_node_cycles(self, env):
        node = Node(env, "n1")
        injector = FaultInjector(env)
        injector.flap_node(node, time=1.0, down_time=1.0, up_time=1.0,
                           cycles=3)
        env.run(until=1.5)
        assert not node.up  # first down phase
        env.run(until=2.5)
        assert node.up      # first up phase
        env.run(until=20.0)
        assert node.up      # every cycle ends repaired
        assert injector.count("flap") == 3
        assert injector.count("crash") == 3
        assert injector.count("repair") == 3

    def test_schedule_from_spec(self, env):
        nodes = [Node(env, f"n{i}") for i in range(3)]
        injector = FaultInjector(env)
        spec = {"faults": [
            {"kind": "crash", "node": "n0", "time": 1.0, "repair_after": 2.0},
            {"kind": "flap", "node": "n1", "time": 2.0, "down_time": 0.5,
             "up_time": 0.5, "cycles": 2},
        ]}
        installed = injector.schedule_from_spec(spec, nodes)
        assert installed == spec["faults"]
        env.run(until=1.5)
        assert not nodes[0].up
        env.run(until=10.0)
        assert all(n.up for n in nodes)
        assert injector.count("crash") == 3  # one crash + two flap cycles
        assert injector.count("flap") == 2

    def test_schedule_from_spec_rejects_bad_entries(self, env):
        node = Node(env, "n0")
        injector = FaultInjector(env)
        with pytest.raises(ValueError):
            injector.schedule_from_spec(
                {"faults": [{"kind": "crash", "node": "ghost", "time": 1.0}]},
                [node])
        with pytest.raises(ValueError):
            injector.schedule_from_spec(
                {"faults": [{"kind": "meteor", "node": "n0", "time": 1.0}]},
                [node])

    def test_random_schedule_deterministic(self, env):
        names = ["n0", "n1", "n2"]
        a = random_schedule(names, seed=7, n_faults=5)
        assert a == random_schedule(names, seed=7, n_faults=5)
        assert a != random_schedule(names, seed=8, n_faults=5)
        times = [f["time"] for f in a["faults"]]
        assert times == sorted(times)
        assert all(f["kind"] in ("crash", "flap") for f in a["faults"])

    def test_random_schedule_respects_protection(self, env):
        spec = random_schedule(["n0", "n1"], seed=3, n_faults=8,
                               protect=["n0"])
        assert all(f["node"] == "n1" for f in spec["faults"])
        with pytest.raises(ValueError):
            random_schedule(["n0"], seed=3, protect=["n0"])
