"""INSERT / UPDATE / DELETE and constraint tests."""

import pytest

from repro.sqlengine import IntegrityError, NameError_, TypeError_


@pytest.fixture
def t(conn):
    conn.execute("""CREATE TABLE t (
        id INT PRIMARY KEY AUTO_INCREMENT,
        name VARCHAR(30) NOT NULL,
        score INT DEFAULT 10,
        email VARCHAR(50) UNIQUE)""")
    return conn


def test_insert_and_lastrowid(t):
    result = t.execute("INSERT INTO t (name) VALUES ('a')")
    assert result.rowcount == 1
    assert t.last_insert_id == 1
    t.execute("INSERT INTO t (name) VALUES ('b')")
    assert t.last_insert_id == 2


def test_insert_multi_row_rowcount(t):
    result = t.execute("INSERT INTO t (name) VALUES ('a'), ('b'), ('c')")
    assert result.rowcount == 3


def test_default_value_applied(t):
    t.execute("INSERT INTO t (name) VALUES ('a')")
    assert t.execute("SELECT score FROM t").scalar() == 10


def test_explicit_null_overrides_nothing_for_default(t):
    # explicit NULL for a defaulted nullable column stays NULL
    t.execute("INSERT INTO t (name, score) VALUES ('a', NULL)")
    assert t.execute("SELECT score FROM t").scalar() is None


def test_not_null_violation(t):
    with pytest.raises(IntegrityError):
        t.execute("INSERT INTO t (name) VALUES (NULL)")


def test_primary_key_duplicate(t):
    t.execute("INSERT INTO t (id, name) VALUES (5, 'a')")
    with pytest.raises(IntegrityError):
        t.execute("INSERT INTO t (id, name) VALUES (5, 'b')")


def test_unique_column_duplicate(t):
    t.execute("INSERT INTO t (name, email) VALUES ('a', 'x@y.z')")
    with pytest.raises(IntegrityError):
        t.execute("INSERT INTO t (name, email) VALUES ('b', 'x@y.z')")


def test_unique_allows_multiple_nulls(t):
    t.execute("INSERT INTO t (name) VALUES ('a'), ('b')")
    assert t.execute("SELECT COUNT(*) FROM t").scalar() == 2


def test_insert_unknown_column(t):
    with pytest.raises(NameError_):
        t.execute("INSERT INTO t (nope) VALUES (1)")


def test_insert_arity_mismatch(t):
    with pytest.raises(TypeError_):
        t.execute("INSERT INTO t (name, score) VALUES ('a')")


def test_insert_type_coercion(t):
    t.execute("INSERT INTO t (name, score) VALUES ('a', '42')")
    assert t.execute("SELECT score FROM t").scalar() == 42


def test_insert_bad_type(t):
    with pytest.raises(TypeError_):
        t.execute("INSERT INTO t (name, score) VALUES ('a', 'not-a-number')")


def test_insert_select(t):
    t.execute("INSERT INTO t (name, score) VALUES ('a', 1), ('b', 2)")
    t.execute("CREATE TABLE copy1 (n VARCHAR(30), s INT)")
    t.execute("INSERT INTO copy1 (n, s) SELECT name, score FROM t")
    assert t.execute("SELECT COUNT(*) FROM copy1").scalar() == 2


def test_update_rowcount_and_values(t):
    t.execute("INSERT INTO t (name, score) VALUES ('a', 1), ('b', 2)")
    result = t.execute("UPDATE t SET score = score + 10")
    assert result.rowcount == 2
    scores = {r[0] for r in t.execute("SELECT score FROM t").rows}
    assert scores == {11, 12}


def test_update_where(t):
    t.execute("INSERT INTO t (name, score) VALUES ('a', 1), ('b', 2)")
    result = t.execute("UPDATE t SET score = 0 WHERE name = 'a'")
    assert result.rowcount == 1


def test_update_self_reference(t):
    t.execute("INSERT INTO t (name, score) VALUES ('a', 5)")
    t.execute("UPDATE t SET score = score * score")
    assert t.execute("SELECT score FROM t").scalar() == 25


def test_update_not_null_violation(t):
    t.execute("INSERT INTO t (name) VALUES ('a')")
    with pytest.raises(IntegrityError):
        t.execute("UPDATE t SET name = NULL")


def test_update_unique_violation(t):
    t.execute("INSERT INTO t (name, email) VALUES ('a', 'a@x'), ('b', 'b@x')")
    with pytest.raises(IntegrityError):
        t.execute("UPDATE t SET email = 'a@x' WHERE name = 'b'")


def test_update_pk_to_same_value_ok(t):
    t.execute("INSERT INTO t (id, name) VALUES (1, 'a')")
    t.execute("UPDATE t SET id = 1, name = 'z' WHERE id = 1")
    assert t.execute("SELECT name FROM t WHERE id = 1").scalar() == "z"


def test_delete_rowcount(t):
    t.execute("INSERT INTO t (name, score) VALUES ('a', 1), ('b', 2)")
    assert t.execute("DELETE FROM t WHERE score > 1").rowcount == 1
    assert t.execute("SELECT COUNT(*) FROM t").scalar() == 1


def test_delete_all(t):
    t.execute("INSERT INTO t (name) VALUES ('a'), ('b')")
    t.execute("DELETE FROM t")
    assert t.execute("SELECT COUNT(*) FROM t").scalar() == 0


def test_delete_then_reinsert_same_pk(t):
    t.execute("INSERT INTO t (id, name) VALUES (7, 'a')")
    t.execute("DELETE FROM t WHERE id = 7")
    t.execute("INSERT INTO t (id, name) VALUES (7, 'b')")
    assert t.execute("SELECT name FROM t WHERE id = 7").scalar() == "b"


def test_update_with_in_subquery_limit(t):
    """The section 4.3.2 divergence statement executes fine on ONE engine;
    the hazard only exists across replicas."""
    t.execute("INSERT INTO t (name, email) VALUES ('a', NULL), ('b', NULL), "
              "('c', 'set@x')")
    t.execute(
        "UPDATE t SET email = 'fixed' WHERE id IN "
        "(SELECT id FROM t WHERE email IS NULL LIMIT 1)")
    fixed = t.execute(
        "SELECT COUNT(*) FROM t WHERE email = 'fixed'").scalar()
    assert fixed == 1


def test_auto_increment_respects_explicit_values(t):
    t.execute("INSERT INTO t (id, name) VALUES (100, 'a')")
    t.execute("INSERT INTO t (name) VALUES ('b')")
    assert t.last_insert_id == 101


def test_statement_level_atomicity(t):
    """A failing multi-row INSERT must not leave partial rows behind."""
    t.execute("INSERT INTO t (id, name) VALUES (1, 'a')")
    with pytest.raises(IntegrityError):
        t.execute("INSERT INTO t (id, name) VALUES (2, 'b'), (1, 'dup')")
    assert t.execute("SELECT COUNT(*) FROM t").scalar() == 1
