"""Expression evaluation tests (driven through SELECT without FROM)."""

import pytest

from repro.sqlengine import Engine, TypeError_, generic


@pytest.fixture
def c():
    engine = Engine("expr", dialect=generic(), seed=1)
    engine.create_database("d")
    connection = engine.connect(database="d")
    yield connection
    connection.close()


def scalar(c, expr, params=None):
    return c.execute(f"SELECT {expr}", params).scalar()


def test_arithmetic(c):
    assert scalar(c, "1 + 2 * 3") == 7
    assert scalar(c, "(1 + 2) * 3") == 9
    assert scalar(c, "10 / 4") == 2.5
    assert scalar(c, "10 / 5") == 2
    assert scalar(c, "10 % 3") == 1
    assert scalar(c, "-5 + 2") == -3


def test_division_by_zero_is_null(c):
    assert scalar(c, "1 / 0") is None
    assert scalar(c, "1 % 0") is None


def test_comparisons(c):
    assert scalar(c, "1 < 2") is True
    assert scalar(c, "2 <= 2") is True
    assert scalar(c, "3 > 4") is False
    assert scalar(c, "1 = 1.0") is True
    assert scalar(c, "1 <> 2") is True


def test_null_propagation(c):
    assert scalar(c, "NULL + 1") is None
    assert scalar(c, "NULL = NULL") is None
    assert scalar(c, "NULL < 5") is None


def test_three_valued_logic(c):
    assert scalar(c, "NULL AND FALSE") is False
    assert scalar(c, "NULL AND TRUE") is None
    assert scalar(c, "NULL OR TRUE") is True
    assert scalar(c, "NULL OR FALSE") is None
    assert scalar(c, "NOT NULL") is None


def test_string_concat(c):
    assert scalar(c, "'a' || 'b'") == "ab"
    assert scalar(c, "CONCAT('x', 'y', 'z')") == "xyz"
    assert scalar(c, "'a' || NULL") is None


def test_like_patterns(c):
    assert scalar(c, "'hello' LIKE 'h%'") is True
    assert scalar(c, "'hello' LIKE 'h_llo'") is True
    assert scalar(c, "'hello' LIKE 'H%'") is False
    assert scalar(c, "'hello' NOT LIKE 'z%'") is True


def test_between(c):
    assert scalar(c, "5 BETWEEN 1 AND 10") is True
    assert scalar(c, "0 BETWEEN 1 AND 10") is False
    assert scalar(c, "5 NOT BETWEEN 1 AND 10") is False


def test_in_list(c):
    assert scalar(c, "2 IN (1, 2, 3)") is True
    assert scalar(c, "9 IN (1, 2, 3)") is False
    assert scalar(c, "9 NOT IN (1, 2, 3)") is True
    # NULL member makes a non-match unknown
    assert scalar(c, "9 IN (1, NULL)") is None


def test_is_null(c):
    assert scalar(c, "NULL IS NULL") is True
    assert scalar(c, "1 IS NOT NULL") is True


def test_case_expression(c):
    assert scalar(c, "CASE WHEN 1 > 0 THEN 'yes' ELSE 'no' END") == "yes"
    assert scalar(c, "CASE WHEN 1 < 0 THEN 'yes' END") is None


def test_scalar_functions(c):
    assert scalar(c, "UPPER('abc')") == "ABC"
    assert scalar(c, "LOWER('ABC')") == "abc"
    assert scalar(c, "LENGTH('abcd')") == 4
    assert scalar(c, "ABS(-7)") == 7
    assert scalar(c, "MOD(10, 3)") == 1
    assert scalar(c, "COALESCE(NULL, NULL, 5)") == 5
    assert scalar(c, "NULLIF(3, 3)") is None
    assert scalar(c, "SUBSTR('hello', 2, 3)") == "ell"
    assert scalar(c, "ROUND(3.456, 1)") == 3.5
    assert scalar(c, "FLOOR(3.7)") == 3
    assert scalar(c, "CEIL(3.2)") == 4
    assert scalar(c, "GREATEST(1, 5, 3)") == 5
    assert scalar(c, "LEAST(1, 5, 3)") == 1


def test_nondeterministic_functions_exist(c):
    value = scalar(c, "RAND()")
    assert 0.0 <= value < 1.0
    assert scalar(c, "NOW()") is not None


def test_rand_differs_between_engines():
    a = Engine("ea", seed=1).__class__  # noqa: F841 — just engines below
    e1 = Engine("e1", seed=1)
    e2 = Engine("e2", seed=2)
    e1.create_database("d")
    e2.create_database("d")
    v1 = e1.connect(database="d").execute("SELECT RAND()").scalar()
    v2 = e2.connect(database="d").execute("SELECT RAND()").scalar()
    assert v1 != v2  # the section 4.3.2 hazard in miniature


def test_user_function_returns_session_user(c):
    assert scalar(c, "USER()") == "admin"


def test_unknown_function_raises(c):
    from repro.sqlengine import NameError_
    with pytest.raises(NameError_):
        scalar(c, "FROBNICATE(1)")


def test_param_binding(c):
    assert c.execute("SELECT ? + ?", [2, 3]).scalar() == 5


def test_missing_param_raises(c):
    with pytest.raises(TypeError_):
        c.execute("SELECT ?", [])


def test_string_number_comparison_permissive(c):
    assert scalar(c, "'5' = 5") is True
    assert scalar(c, "'abc' = 5") is False
