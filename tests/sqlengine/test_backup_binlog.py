"""Engine dump/restore and binlog tests — the lossy-backup gaps of
sections 4.1.5 / 4.2.3 / 4.4.1."""

import pytest

from repro.sqlengine import (
    BackupOptions, DiskFullError, Engine, dump_engine, generic,
    restore_engine,
)


@pytest.fixture
def populated(engine, conn):
    conn.execute("""CREATE TABLE inventory (
        id INT PRIMARY KEY AUTO_INCREMENT, item VARCHAR(30))""")
    conn.execute("INSERT INTO inventory (item) VALUES ('a'), ('b'), ('c')")
    conn.execute("CREATE SEQUENCE order_seq START WITH 50")
    conn.execute("SELECT NEXTVAL('order_seq')")
    conn.execute("CREATE TABLE audit (note VARCHAR(20))")
    conn.execute(
        "CREATE TRIGGER trg AFTER INSERT ON inventory FOR EACH ROW "
        "BEGIN INSERT INTO audit (note) VALUES ('x'); END")
    conn.execute("CREATE PROCEDURE p() BEGIN SELECT 1; END")
    engine.users.add_user("bob", "pw")
    return engine


def fresh_engine(name="restored"):
    return Engine(name, dialect=generic(), seed=7)


def test_default_dump_loses_users_triggers_sequences(populated):
    """Default options model typical tools: data only (the 4.1.5 gap)."""
    dump = dump_engine(populated)
    target = fresh_engine()
    restore_engine(target, dump)
    database = target.database("shop")
    assert target.row_count("shop", "inventory") == 3
    assert not database.triggers          # lost
    assert not database.procedures        # lost
    assert not database.sequences         # lost
    assert not target.users.exists("bob")  # lost


def test_full_clone_preserves_everything(populated):
    dump = dump_engine(populated, BackupOptions.full_clone())
    target = fresh_engine()
    restore_engine(target, dump)
    database = target.database("shop")
    assert database.triggers and database.procedures
    assert target.users.exists("bob")
    # sequence continues where it left off (51 after the nextval of 50)
    c = target.connect(database="shop")
    assert c.execute("SELECT NEXTVAL('order_seq')").scalar() == 51


def test_sequence_lost_without_option_causes_duplicates(populated):
    """Restoring without sequences resets them — duplicate keys follow
    (the section 4.2.3 workaround-needed gap)."""
    dump = dump_engine(populated)  # no sequences
    target = fresh_engine()
    restore_engine(target, dump)
    c = target.connect(database="shop")
    from repro.sqlengine import NameError_
    with pytest.raises(NameError_):
        c.execute("SELECT NEXTVAL('order_seq')")


def test_auto_counter_best_effort_restore(populated):
    dump = dump_engine(populated)  # no explicit counters
    target = fresh_engine()
    restore_engine(target, dump)
    c = target.connect(database="shop")
    c.execute("INSERT INTO inventory (item) VALUES ('d')")
    # best effort: counter pushed past max existing id -> no collision
    assert c.last_insert_id == 4


def test_dump_is_snapshot_consistent(populated):
    connection = populated.connect(database="shop")
    connection.execute("BEGIN")
    connection.execute("INSERT INTO inventory (item) VALUES ('uncommitted')")
    dump = dump_engine(populated)
    connection.execute("ROLLBACK")
    assert all(
        row["item"] != "uncommitted"
        for row in dump.data["shop"]["inventory"]
    )


def test_dump_excludes_temp_tables(populated):
    connection = populated.connect(database="shop")
    connection.execute("CREATE TEMP TABLE scratch (x INT)")
    dump = dump_engine(populated)
    assert "scratch" not in dump.data["shop"]


def test_dump_carries_binlog_watermark(populated):
    before = populated.binlog.head_sequence
    dump = dump_engine(populated)
    assert dump.binlog_sequence == before
    connection = populated.connect(database="shop")
    connection.execute("INSERT INTO inventory (item) VALUES ('late')")
    late = populated.binlog.since(dump.binlog_sequence)
    assert len(late) >= 1  # exactly what a restore must replay


def test_restore_replaces_existing(populated):
    dump = dump_engine(populated)
    target = fresh_engine()
    target.create_database("shop")
    c = target.connect(database="shop")
    c.execute("CREATE TABLE inventory (id INT PRIMARY KEY, item VARCHAR(30))")
    c.execute("INSERT INTO inventory VALUES (99, 'stale')")
    restore_engine(target, dump)
    assert target.row_count("shop", "inventory") == 3


def test_binlog_capacity_disk_full(conn):
    conn.engine.binlog.capacity = 2
    conn.execute("CREATE TABLE t (x INT)")
    conn.execute("INSERT INTO t VALUES (1)")
    with pytest.raises(DiskFullError):
        conn.execute("INSERT INTO t VALUES (2)")
    assert conn.engine.binlog.full
    # maintenance: purge the log and writes flow again (section 4.4.2)
    conn.engine.binlog.truncate_before(1)
    conn.execute("INSERT INTO t VALUES (3)")


def test_binlog_subscription(conn):
    seen = []
    unsubscribe = conn.engine.binlog.subscribe(lambda r: seen.append(r))
    conn.execute("CREATE TABLE t (x INT)")
    conn.execute("INSERT INTO t VALUES (1)")
    assert len(seen) == 2
    unsubscribe()
    conn.execute("INSERT INTO t VALUES (2)")
    assert len(seen) == 2


def test_disk_full_engine_flag(conn):
    conn.execute("CREATE TABLE t (x INT)")
    conn.engine.set_disk_full(True)
    with pytest.raises(DiskFullError):
        conn.execute("INSERT INTO t VALUES (1)")
    conn.execute("SELECT * FROM t")  # reads still work
    conn.engine.set_disk_full(False)
    conn.execute("INSERT INTO t VALUES (1)")


def test_content_signature_reflects_data(conn):
    conn.execute("CREATE TABLE t (x INT)")
    sig1 = conn.engine.content_signature()
    conn.execute("INSERT INTO t VALUES (1)")
    sig2 = conn.engine.content_signature()
    assert sig1 != sig2
    conn.execute("DELETE FROM t")
    assert conn.engine.content_signature() == sig1
