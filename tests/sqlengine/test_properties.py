"""Property-based tests (hypothesis) on engine invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.sqlengine import Engine, generic
from repro.sqlengine.locks import LockConflict
from repro.sqlengine.errors import SQLError


def fresh():
    engine = Engine("prop", dialect=generic(), seed=3)
    engine.create_database("d")
    connection = engine.connect(database="d")
    connection.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
    return engine, connection


# ---------------------------------------------------------------------------
# MVCC visibility
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["insert", "update", "delete"]),
              st.integers(0, 9), st.integers(0, 100)),
    min_size=1, max_size=25))
def test_committed_state_matches_shadow_model(operations):
    """Random single-statement operations against a shadow dict: the
    visible committed state must always match."""
    engine, connection = fresh()
    shadow = {}
    for op, key, value in operations:
        try:
            if op == "insert":
                connection.execute(
                    f"INSERT INTO kv VALUES ({key}, {value})")
                shadow[key] = value
            elif op == "update":
                result = connection.execute(
                    f"UPDATE kv SET v = {value} WHERE k = {key}")
                if key in shadow:
                    assert result.rowcount == 1
                    shadow[key] = value
                else:
                    assert result.rowcount == 0
            else:
                result = connection.execute(
                    f"DELETE FROM kv WHERE k = {key}")
                if key in shadow:
                    del shadow[key]
        except SQLError:
            # duplicate-pk insert: shadow unchanged
            assert op == "insert" and key in shadow
    rows = connection.execute("SELECT k, v FROM kv").rows
    assert dict(rows) == shadow


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 50)),
                min_size=1, max_size=12),
       st.booleans())
def test_rollback_restores_exact_state(txn_updates, use_delete):
    """Whatever a transaction does, rollback restores the pre-image."""
    engine, connection = fresh()
    for key in range(6):
        connection.execute(f"INSERT INTO kv VALUES ({key}, {key})")
    before = engine.content_signature()
    connection.execute("BEGIN")
    for key, value in txn_updates:
        connection.execute(f"UPDATE kv SET v = {value} WHERE k = {key}")
    if use_delete:
        connection.execute("DELETE FROM kv WHERE k = 0")
    connection.execute("ROLLBACK")
    assert engine.content_signature() == before


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 6), st.integers(1, 30))
def test_snapshot_reader_isolated_from_any_writes(keys, writes):
    """A snapshot transaction's repeated reads never change, whatever a
    concurrent writer commits."""
    engine, connection = fresh()
    for key in range(keys):
        connection.execute(f"INSERT INTO kv VALUES ({key}, 0)")
    reader = engine.connect(database="d")
    reader.execute("BEGIN ISOLATION LEVEL SNAPSHOT")
    first = reader.execute("SELECT k, v FROM kv ORDER BY k").rows
    rng = random.Random(writes)
    for _ in range(writes):
        key = rng.randrange(keys)
        connection.execute(f"UPDATE kv SET v = v + 1 WHERE k = {key}")
    again = reader.execute("SELECT k, v FROM kv ORDER BY k").rows
    reader.execute("COMMIT")
    assert first == again


# ---------------------------------------------------------------------------
# lock manager
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(1, 4), st.sampled_from(["S", "X"]),
                          st.integers(0, 2)),
                min_size=1, max_size=20))
def test_lock_manager_never_grants_conflicting(requests):
    from repro.sqlengine.locks import LockManager, LockMode
    from repro.sqlengine.errors import DeadlockError

    manager = LockManager()
    for txn, mode_name, resource_index in requests:
        resource = f"res{resource_index}"
        mode = LockMode.SHARED if mode_name == "S" else LockMode.EXCLUSIVE
        try:
            manager.acquire(txn, resource, mode)
        except (LockConflict, DeadlockError):
            pass
        # invariant: at most one holder when any holds X
        holders = manager.holders_of(resource)
        exclusive = [t for t, m in holders if m is LockMode.EXCLUSIVE]
        if exclusive:
            assert len(holders) == 1


# ---------------------------------------------------------------------------
# parser round-trip-ish
# ---------------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(st.integers(-1000, 1000), st.integers(-1000, 1000))
def test_arithmetic_matches_python(a, b):
    engine, connection = fresh()
    got = connection.execute(f"SELECT ({a}) + ({b}), ({a}) * ({b})").rows[0]
    assert got == (a + b, a * b)


@settings(max_examples=50, deadline=None)
@given(st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126,
                           exclude_characters="'\\"),
    max_size=30))
def test_string_literals_round_trip(text):
    engine, connection = fresh()
    escaped = text.replace("'", "''")
    assert connection.execute(f"SELECT '{escaped}'").scalar() == text


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(-100, 100), min_size=1, max_size=20))
def test_order_by_sorts_like_python(values):
    engine, connection = fresh()
    connection.execute("CREATE TABLE nums (i INT PRIMARY KEY, n INT)")
    for index, value in enumerate(values):
        connection.execute(f"INSERT INTO nums VALUES ({index}, {value})")
    rows = connection.execute("SELECT n FROM nums ORDER BY n").rows
    assert [r[0] for r in rows] == sorted(values)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 20), min_size=1, max_size=30))
def test_aggregates_match_python(values):
    engine, connection = fresh()
    connection.execute("CREATE TABLE nums (i INT PRIMARY KEY, n INT)")
    for index, value in enumerate(values):
        connection.execute(f"INSERT INTO nums VALUES ({index}, {value})")
    row = connection.execute(
        "SELECT COUNT(*), SUM(n), MIN(n), MAX(n) FROM nums").rows[0]
    assert row == (len(values), sum(values), min(values), max(values))
