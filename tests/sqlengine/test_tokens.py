"""Tokenizer unit tests."""

import pytest

from repro.sqlengine.errors import ParseError
from repro.sqlengine.tokens import TokenStream, TokenType, tokenize


def kinds(sql):
    return [(t.type, t.value) for t in tokenize(sql) if t.type is not TokenType.EOF]


def test_keywords_case_insensitive():
    assert kinds("select")[0] == (TokenType.KEYWORD, "SELECT")
    assert kinds("SeLeCt")[0] == (TokenType.KEYWORD, "SELECT")


def test_identifier_preserves_case():
    tokens = kinds("SELECT MyColumn")
    assert tokens[1] == (TokenType.IDENT, "MyColumn")


def test_integer_and_float_numbers():
    tokens = kinds("SELECT 42, 3.14, 1e3, 2.5e-2")
    values = [v for t, v in tokens if t is TokenType.NUMBER]
    assert values == ["42", "3.14", "1e3", "2.5e-2"]


def test_string_literal_with_escape():
    tokens = kinds("SELECT 'it''s'")
    assert (TokenType.STRING, "it's") in tokens


def test_unterminated_string_raises():
    with pytest.raises(ParseError):
        tokenize("SELECT 'oops")


def test_double_quoted_identifier():
    tokens = kinds('SELECT "order" FROM t')
    assert (TokenType.IDENT, "order") in tokens


def test_backtick_identifier():
    tokens = kinds("SELECT `weird name` FROM t")
    assert (TokenType.IDENT, "weird name") in tokens


def test_line_comment_skipped():
    tokens = kinds("SELECT 1 -- comment here\n+ 2")
    values = [v for _t, v in tokens]
    assert "comment" not in " ".join(values)
    assert "+" in values


def test_block_comment_skipped():
    tokens = kinds("SELECT /* hi */ 1")
    assert len(tokens) == 2


def test_unterminated_block_comment_raises():
    with pytest.raises(ParseError):
        tokenize("SELECT /* oops")


def test_two_char_operators():
    tokens = kinds("a <= b >= c <> d != e || f")
    operators = [v for t, v in tokens if t is TokenType.OPERATOR]
    assert operators == ["<=", ">=", "<>", "!=", "||"]


def test_param_placeholder():
    tokens = kinds("SELECT * FROM t WHERE a = ?")
    assert (TokenType.PARAM, "?") in tokens


def test_unexpected_character_raises():
    with pytest.raises(ParseError):
        tokenize("SELECT #")


def test_number_dot_not_member_access():
    # `1.` followed by non-digit must not swallow the dot
    tokens = kinds("seq.nextval")
    assert tokens[0] == (TokenType.IDENT, "seq")


def test_stream_expect_and_accept():
    stream = TokenStream(tokenize("SELECT a FROM t"))
    assert stream.expect_keyword("SELECT").value == "SELECT"
    assert stream.expect_ident().value == "a"
    assert stream.accept_keyword("WHERE") is None
    assert stream.accept_keyword("FROM") is not None


def test_stream_expect_failure():
    stream = TokenStream(tokenize("SELECT"))
    with pytest.raises(ParseError):
        stream.expect_keyword("INSERT")


def test_soft_keyword_as_identifier():
    stream = TokenStream(tokenize("level"))
    assert stream.expect_ident().value == "LEVEL"


def test_eof_token_terminates():
    tokens = tokenize("SELECT 1")
    assert tokens[-1].type is TokenType.EOF
    stream = TokenStream(tokens)
    for _ in range(10):
        stream.next()
    assert stream.at_end()
