"""Sequences, temp tables, triggers, procedures, LOBs, DDL, access control
— the engine features behind the paper's section 4.1/4.2 gaps."""

import pytest

from repro.sqlengine import (
    AccessDeniedError, DuplicateObjectError, IntegrityError, LobError,
    NameError_, UnsupportedFeatureError, analyze_procedure,
)


# ---------------------------------------------------------------------------
# sequences (section 4.2.3)
# ---------------------------------------------------------------------------

class TestSequences:
    def test_nextval_currval(self, conn):
        conn.execute("CREATE SEQUENCE s START WITH 10 INCREMENT BY 5")
        assert conn.execute("SELECT NEXTVAL('s')").scalar() == 10
        assert conn.execute("SELECT NEXTVAL('s')").scalar() == 15
        assert conn.execute("SELECT CURRVAL('s')").scalar() == 15

    def test_oracle_style_pseudocolumn(self, conn):
        conn.execute("CREATE SEQUENCE s2")
        assert conn.execute("SELECT s2.NEXTVAL").scalar() == 1

    def test_currval_before_nextval_raises(self, conn):
        conn.execute("CREATE SEQUENCE s3")
        with pytest.raises(NameError_):
            conn.execute("SELECT CURRVAL('s3')")

    def test_rollback_leaves_hole(self, conn):
        """Sequence numbers are NOT given back on rollback."""
        conn.execute("CREATE SEQUENCE s4")
        conn.execute("BEGIN")
        assert conn.execute("SELECT NEXTVAL('s4')").scalar() == 1
        conn.execute("ROLLBACK")
        assert conn.execute("SELECT NEXTVAL('s4')").scalar() == 2  # hole at 1

    def test_sequences_bypass_snapshots(self, conn):
        conn.execute("CREATE SEQUENCE s5")
        other = conn.engine.connect(database="shop")
        conn.execute("BEGIN ISOLATION LEVEL SNAPSHOT")
        conn.execute("SELECT NEXTVAL('s5')")
        # the other session sees the advanced value immediately
        assert other.execute("SELECT NEXTVAL('s5')").scalar() == 2
        conn.execute("ROLLBACK")

    def test_setval(self, conn):
        conn.execute("CREATE SEQUENCE s6")
        conn.execute("SELECT SETVAL('s6', 100)")
        assert conn.execute("SELECT NEXTVAL('s6')").scalar() == 101

    def test_unsupported_dialect(self, mysql_engine):
        connection = mysql_engine.connect(database="shop")
        with pytest.raises(UnsupportedFeatureError):
            connection.execute("CREATE SEQUENCE nope")

    def test_drop_sequence(self, conn):
        conn.execute("CREATE SEQUENCE s7")
        conn.execute("DROP SEQUENCE s7")
        with pytest.raises(NameError_):
            conn.execute("SELECT NEXTVAL('s7')")


# ---------------------------------------------------------------------------
# temporary tables (section 4.1.4)
# ---------------------------------------------------------------------------

class TestTempTables:
    def test_temp_table_private_to_connection(self, engine):
        a = engine.connect(database="shop")
        b = engine.connect(database="shop")
        a.execute("CREATE TEMP TABLE scratch (x INT)")
        a.execute("INSERT INTO scratch VALUES (1)")
        assert a.execute("SELECT COUNT(*) FROM scratch").scalar() == 1
        with pytest.raises(NameError_):
            b.execute("SELECT * FROM scratch")

    def test_temp_table_shadows_real_table(self, conn):
        conn.execute("CREATE TABLE dual_name (x INT)")
        conn.execute("INSERT INTO dual_name VALUES (1)")
        conn.execute("CREATE TEMP TABLE dual_name (x INT)")
        assert conn.execute("SELECT COUNT(*) FROM dual_name").scalar() == 0

    def test_temp_table_dropped_on_close(self, engine):
        a = engine.connect(database="shop")
        a.execute("CREATE TEMP TABLE scratch (x INT)")
        a.close()
        b = engine.connect(database="shop")
        with pytest.raises(NameError_):
            b.execute("SELECT * FROM scratch")

    def test_sybase_rejects_temp_in_transaction(self, sybase_engine):
        connection = sybase_engine.connect(database="shop")
        connection.execute("BEGIN")
        with pytest.raises(UnsupportedFeatureError):
            connection.execute("CREATE TEMP TABLE t1 (x INT)")
        connection.execute("ROLLBACK")
        connection.execute("CREATE TEMP TABLE t1 (x INT)")  # fine outside

    def test_oracle_transaction_scope(self, oracle_engine):
        connection = oracle_engine.connect(database="shop")
        connection.execute("BEGIN")
        connection.execute("CREATE TEMP TABLE t2 (x INT)")
        connection.execute("COMMIT")
        with pytest.raises(NameError_):
            connection.execute("SELECT * FROM t2")

    def test_temp_writes_not_in_writeset(self, conn):
        conn.execute("BEGIN")
        conn.execute("CREATE TEMP TABLE t3 (x INT)")
        conn.execute("INSERT INTO t3 VALUES (1)")
        assert len(conn.txn.writeset) == 0
        conn.execute("COMMIT")

    def test_temp_touch_tracked_for_stickiness(self, conn):
        conn.execute("CREATE TEMP TABLE t4 (x INT)")
        conn.execute("INSERT INTO t4 VALUES (1)")
        conn.execute("SELECT * FROM t4")
        assert "t4" in conn.temp_tables_touched


# ---------------------------------------------------------------------------
# triggers (sections 4.1.5, 4.3.2)
# ---------------------------------------------------------------------------

class TestTriggers:
    def test_sql_trigger_fires(self, conn):
        conn.execute("CREATE TABLE audited (x INT)")
        conn.execute("CREATE TABLE audit_log (note VARCHAR(20))")
        conn.execute(
            "CREATE TRIGGER trg AFTER INSERT ON audited FOR EACH ROW "
            "BEGIN INSERT INTO audit_log (note) VALUES ('hit'); END")
        conn.execute("INSERT INTO audited VALUES (1)")
        conn.execute("INSERT INTO audited VALUES (2)")
        assert conn.execute("SELECT COUNT(*) FROM audit_log").scalar() == 2

    def test_trigger_sees_new_values(self, conn):
        conn.execute("CREATE TABLE audited (x INT)")
        conn.execute("CREATE TABLE audit_log (val INT)")
        conn.execute(
            "CREATE TRIGGER trg AFTER INSERT ON audited FOR EACH ROW "
            "BEGIN INSERT INTO audit_log (val) VALUES (new_x); END")
        conn.execute("INSERT INTO audited VALUES (42)")
        assert conn.execute("SELECT val FROM audit_log").scalar() == 42

    def test_per_user_trigger(self, engine, conn):
        """Paper 4.1.5: the same SQL can have different effects depending
        on the executing user."""
        from repro.sqlengine import Trigger
        conn.execute("CREATE TABLE audited (x INT)")
        conn.execute("CREATE TABLE audit_log (who VARCHAR(20))")
        engine.users.add_user("bob", "pw")
        engine.users.get("bob").grant(["ALL"], "shop.*")
        database = engine.database("shop")
        hits = []
        database.create_trigger(Trigger(
            "bob_only", "AFTER", "INSERT", "audited",
            callback=lambda ev, s: hits.append(ev.user),
            only_for_user="bob"))
        conn.execute("INSERT INTO audited VALUES (1)")  # admin: no fire
        bob = engine.connect("bob", "pw", database="shop")
        bob.execute("INSERT INTO audited VALUES (2)")
        assert hits == ["bob"]

    def test_trigger_dropped_with_table(self, conn, engine):
        conn.execute("CREATE TABLE audited (x INT)")
        conn.execute("CREATE TABLE audit_log (note VARCHAR(20))")
        conn.execute(
            "CREATE TRIGGER trg AFTER INSERT ON audited FOR EACH ROW "
            "BEGIN INSERT INTO audit_log (note) VALUES ('hit'); END")
        conn.execute("DROP TABLE audited")
        assert "trg" not in engine.database("shop").triggers

    def test_delete_trigger_sees_old(self, conn):
        conn.execute("CREATE TABLE audited (x INT)")
        conn.execute("CREATE TABLE audit_log (val INT)")
        conn.execute(
            "CREATE TRIGGER trg BEFORE DELETE ON audited FOR EACH ROW "
            "BEGIN INSERT INTO audit_log (val) VALUES (old_x); END")
        conn.execute("INSERT INTO audited VALUES (7)")
        conn.execute("DELETE FROM audited")
        assert conn.execute("SELECT val FROM audit_log").scalar() == 7


# ---------------------------------------------------------------------------
# stored procedures (section 4.2.1)
# ---------------------------------------------------------------------------

class TestProcedures:
    def test_call_with_params(self, conn):
        conn.execute("CREATE TABLE counters (id INT PRIMARY KEY, n INT)")
        conn.execute("INSERT INTO counters VALUES (1, 0)")
        conn.execute(
            "CREATE PROCEDURE bump(which, amount) BEGIN "
            "UPDATE counters SET n = n + amount WHERE id = which; END")
        conn.execute("CALL bump(1, 5)")
        conn.execute("CALL bump(1, 3)")
        assert conn.execute(
            "SELECT n FROM counters WHERE id = 1").scalar() == 8

    def test_call_returns_last_select(self, conn):
        conn.execute("CREATE TABLE t (x INT)")
        conn.execute("INSERT INTO t VALUES (3)")
        conn.execute(
            "CREATE PROCEDURE peek() BEGIN SELECT x FROM t; END")
        assert conn.execute("CALL peek()").scalar() == 3

    def test_wrong_arity(self, conn):
        conn.execute("CREATE PROCEDURE p(a) BEGIN SELECT 1; END")
        from repro.sqlengine import TypeError_
        with pytest.raises(TypeError_):
            conn.execute("CALL p()")

    def test_analysis_finds_tables(self, conn, engine):
        conn.execute("CREATE TABLE a1 (x INT)")
        conn.execute("CREATE TABLE b1 (x INT)")
        conn.execute(
            "CREATE PROCEDURE p2() BEGIN "
            "INSERT INTO a1 (x) SELECT x FROM b1; END")
        analysis = analyze_procedure(engine.database("shop").procedure("p2"))
        assert "a1" in analysis.writes_tables
        assert "b1" in analysis.reads_tables
        assert analysis.deterministic

    def test_analysis_flags_nondeterminism(self, conn, engine):
        conn.execute("CREATE TABLE a2 (x FLOAT)")
        conn.execute(
            "CREATE PROCEDURE p3() BEGIN "
            "INSERT INTO a2 (x) VALUES (RAND()); END")
        analysis = analyze_procedure(engine.database("shop").procedure("p3"))
        assert not analysis.deterministic

    def test_nondeterministic_procedure_diverges_across_engines(self):
        """Paper 4.2.1: broadcasting a non-deterministic procedure call
        diverges the cluster."""
        from repro.sqlengine import Engine, generic
        results = []
        for seed in (1, 2):
            engine = Engine(f"e{seed}", dialect=generic(), seed=seed)
            engine.create_database("d")
            c = engine.connect(database="d")
            c.execute("CREATE TABLE r (x FLOAT)")
            c.execute("CREATE PROCEDURE flip() BEGIN "
                      "INSERT INTO r (x) VALUES (RAND()); END")
            c.execute("CALL flip()")
            results.append(c.execute("SELECT x FROM r").scalar())
        assert results[0] != results[1]


# ---------------------------------------------------------------------------
# LOBs (section 4.2.2)
# ---------------------------------------------------------------------------

class TestLobs:
    def test_store_and_stream(self, engine, conn):
        conn.execute("CREATE TABLE docs (id INT PRIMARY KEY, body CLOB)")
        handle = engine.lobs.create("x" * 10000)
        conn.execute("INSERT INTO docs VALUES (1, ?)", [handle])
        fetched = conn.execute("SELECT body FROM docs WHERE id = 1").scalar()
        with engine.lobs.open(fetched, chunk_size=4096) as stream:
            data = stream.read_all()
        assert len(data) == 10000
        assert engine.lobs.open_streams == 0

    def test_leaked_streams_tracked(self, engine):
        handle = engine.lobs.create("abc")
        engine.lobs.open(handle)
        engine.lobs.open(handle)
        assert engine.lobs.open_streams == 2
        assert engine.lobs.close_leaked_streams() == 2
        assert engine.lobs.open_streams == 0

    def test_fake_streaming_buffers_everything(self):
        from repro.sqlengine import LobStore
        store = LobStore(fake_streaming=True)
        handle = store.create("y" * 50000)
        with store.open(handle) as stream:
            stream.read(10)
        assert store.peak_buffered_bytes >= 50000

    def test_real_streaming_buffers_chunks(self):
        from repro.sqlengine import LobStore
        store = LobStore(fake_streaming=False)
        handle = store.create("y" * 50000)
        stream = store.open(handle, chunk_size=1000)
        stream.read(1000)
        stream.close()
        assert store.peak_buffered_bytes <= 2000

    def test_read_after_close_raises(self, engine):
        handle = engine.lobs.create("abc")
        stream = engine.lobs.open(handle)
        stream.close()
        with pytest.raises(LobError):
            stream.read()


# ---------------------------------------------------------------------------
# DDL / catalog
# ---------------------------------------------------------------------------

class TestDDL:
    def test_create_drop_database(self, engine, conn):
        conn.execute("CREATE DATABASE extra")
        assert "extra" in engine.database_names()
        conn.execute("DROP DATABASE extra")
        assert "extra" not in engine.database_names()

    def test_duplicate_table_raises(self, conn):
        conn.execute("CREATE TABLE d1 (x INT)")
        with pytest.raises(DuplicateObjectError):
            conn.execute("CREATE TABLE d1 (x INT)")
        conn.execute("CREATE TABLE IF NOT EXISTS d1 (x INT)")  # tolerated

    def test_drop_if_exists(self, conn):
        conn.execute("DROP TABLE IF EXISTS ghost")
        with pytest.raises(NameError_):
            conn.execute("DROP TABLE ghost")

    def test_alter_add_column(self, conn):
        conn.execute("CREATE TABLE d2 (x INT)")
        conn.execute("INSERT INTO d2 VALUES (1)")
        conn.execute("ALTER TABLE d2 ADD COLUMN y INT")
        assert conn.execute("SELECT y FROM d2").scalar() is None
        conn.execute("UPDATE d2 SET y = 5")
        assert conn.execute("SELECT y FROM d2").scalar() == 5

    def test_alter_rename(self, conn):
        conn.execute("CREATE TABLE before1 (x INT)")
        conn.execute("ALTER TABLE before1 RENAME TO after1")
        conn.execute("INSERT INTO after1 VALUES (1)")
        with pytest.raises(NameError_):
            conn.execute("SELECT * FROM before1")

    def test_unique_index_enforced(self, conn):
        conn.execute("CREATE TABLE d3 (x INT, y INT)")
        conn.execute("CREATE UNIQUE INDEX idx3 ON d3 (x)")
        conn.execute("INSERT INTO d3 VALUES (1, 1)")
        with pytest.raises(IntegrityError):
            conn.execute("INSERT INTO d3 VALUES (1, 2)")

    def test_unique_index_rejects_existing_dupes(self, conn):
        conn.execute("CREATE TABLE d4 (x INT)")
        conn.execute("INSERT INTO d4 VALUES (1), (1)")
        with pytest.raises(IntegrityError):
            conn.execute("CREATE UNIQUE INDEX idx4 ON d4 (x)")

    def test_ddl_not_rolled_back(self, conn):
        """Paper 4.1.2: DDL 'cannot be rolled back'."""
        conn.execute("BEGIN")
        conn.execute("CREATE TABLE sticky (x INT)")
        conn.execute("ROLLBACK")
        conn.execute("INSERT INTO sticky VALUES (1)")  # table survived
        assert conn.execute("SELECT COUNT(*) FROM sticky").scalar() == 1

    def test_schema_support_by_dialect(self, conn, mysql_engine):
        conn.execute("CREATE SCHEMA app")
        my = mysql_engine.connect(database="shop")
        with pytest.raises(UnsupportedFeatureError):
            my.execute("CREATE SCHEMA app")


# ---------------------------------------------------------------------------
# access control (section 4.1.5)
# ---------------------------------------------------------------------------

class TestAccessControl:
    def test_authentication(self, engine):
        engine.users.add_user("bob", "secret")
        with pytest.raises(AccessDeniedError):
            engine.connect("bob", "wrong", database="shop")
        engine.connect("bob", "secret", database="shop")

    def test_privilege_enforcement(self, engine, conn):
        conn.execute("CREATE TABLE guarded (x INT)")
        conn.execute("INSERT INTO guarded VALUES (1)")
        engine.users.add_user("bob", "pw")
        bob = engine.connect("bob", "pw", database="shop")
        with pytest.raises(AccessDeniedError):
            bob.execute("SELECT * FROM guarded")
        conn.execute("GRANT SELECT ON guarded TO bob")
        assert bob.execute("SELECT COUNT(*) FROM guarded").scalar() == 1
        with pytest.raises(AccessDeniedError):
            bob.execute("DELETE FROM guarded")

    def test_revoke(self, engine, conn):
        conn.execute("CREATE TABLE guarded (x INT)")
        engine.users.add_user("bob", "pw")
        conn.execute("GRANT ALL ON guarded TO bob")
        bob = engine.connect("bob", "pw", database="shop")
        bob.execute("INSERT INTO guarded VALUES (1)")
        conn.execute("REVOKE INSERT ON guarded FROM bob")
        with pytest.raises(AccessDeniedError):
            bob.execute("INSERT INTO guarded VALUES (2)")
        bob.execute("SELECT * FROM guarded")  # SELECT kept

    def test_wildcard_grant(self, engine, conn):
        conn.execute("CREATE TABLE t1 (x INT)")
        conn.execute("CREATE TABLE t2 (x INT)")
        engine.users.add_user("bob", "pw")
        engine.users.get("bob").grant(["SELECT"], "shop.*")
        bob = engine.connect("bob", "pw", database="shop")
        bob.execute("SELECT * FROM t1")
        bob.execute("SELECT * FROM t2")

    def test_create_user_via_sql(self, engine, conn):
        conn.execute("CREATE USER carol IDENTIFIED BY 'pw'")
        assert engine.users.exists("carol")
        conn.execute("DROP USER carol")
        assert not engine.users.exists("carol")
