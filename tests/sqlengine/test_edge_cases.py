"""Engine edge cases and regression guards."""

import pytest

from repro.sqlengine import Engine, NameError_, generic


@pytest.fixture
def c():
    engine = Engine("edge", dialect=generic(), seed=9)
    engine.create_database("d")
    connection = engine.connect(database="d")
    yield connection
    connection.close()


def test_group_by_multiple_columns(c):
    c.execute("CREATE TABLE s (a VARCHAR(4), b VARCHAR(4), n INT)")
    c.execute("INSERT INTO s VALUES ('x', 'p', 1), ('x', 'p', 2), "
              "('x', 'q', 3), ('y', 'p', 4)")
    rows = c.execute(
        "SELECT a, b, SUM(n) FROM s GROUP BY a, b ORDER BY a, b").rows
    assert rows == [("x", "p", 3), ("x", "q", 3), ("y", "p", 4)]


def test_order_by_two_keys_mixed_direction(c):
    c.execute("CREATE TABLE s (a INT, b INT)")
    c.execute("INSERT INTO s VALUES (1, 1), (1, 2), (2, 1), (2, 2)")
    rows = c.execute("SELECT a, b FROM s ORDER BY a ASC, b DESC").rows
    assert rows == [(1, 2), (1, 1), (2, 2), (2, 1)]


def test_left_join_where_filters_null_padded(c):
    c.execute("CREATE TABLE l (id INT)")
    c.execute("CREATE TABLE r (id INT, v INT)")
    c.execute("INSERT INTO l VALUES (1), (2)")
    c.execute("INSERT INTO r VALUES (1, 10)")
    rows = c.execute(
        "SELECT l.id, r.v FROM l LEFT JOIN r ON l.id = r.id "
        "WHERE r.v > 5").rows
    assert rows == [(1, 10)]


def test_case_in_where_clause(c):
    c.execute("CREATE TABLE s (n INT)")
    c.execute("INSERT INTO s VALUES (1), (2), (3)")
    rows = c.execute(
        "SELECT n FROM s WHERE CASE WHEN n > 1 THEN TRUE ELSE FALSE END "
        "ORDER BY n").rows
    assert rows == [(2,), (3,)]


def test_nested_subqueries(c):
    c.execute("CREATE TABLE s (n INT)")
    c.execute("INSERT INTO s VALUES (1), (2), (3), (4)")
    value = c.execute(
        "SELECT COUNT(*) FROM s WHERE n IN "
        "(SELECT n FROM s WHERE n > (SELECT MIN(n) FROM s))").scalar()
    assert value == 3


def test_self_join_with_aliases(c):
    c.execute("CREATE TABLE emp (id INT, boss INT, name VARCHAR(10))")
    c.execute("INSERT INTO emp VALUES (1, NULL, 'ceo'), (2, 1, 'dev')")
    rows = c.execute(
        "SELECT e.name, b.name FROM emp e JOIN emp b ON e.boss = b.id").rows
    assert rows == [("dev", "ceo")]


def test_update_all_rows_without_where(c):
    c.execute("CREATE TABLE s (n INT)")
    c.execute("INSERT INTO s VALUES (1), (2)")
    assert c.execute("UPDATE s SET n = 0").rowcount == 2


def test_insert_explicit_null_in_nullable(c):
    c.execute("CREATE TABLE s (a INT, b INT)")
    c.execute("INSERT INTO s (a, b) VALUES (1, NULL)")
    assert c.execute("SELECT b FROM s").scalar() is None


def test_empty_in_list_never_matches(c):
    c.execute("CREATE TABLE s (n INT)")
    c.execute("INSERT INTO s VALUES (1)")
    # single-element list as the degenerate case
    assert c.execute("SELECT COUNT(*) FROM s WHERE n IN (2)").scalar() == 0


def test_limit_zero(c):
    c.execute("CREATE TABLE s (n INT)")
    c.execute("INSERT INTO s VALUES (1), (2)")
    assert c.execute("SELECT n FROM s LIMIT 0").rows == []


def test_offset_beyond_end(c):
    c.execute("CREATE TABLE s (n INT)")
    c.execute("INSERT INTO s VALUES (1)")
    assert c.execute("SELECT n FROM s LIMIT 5 OFFSET 10").rows == []


def test_distinct_with_nulls(c):
    c.execute("CREATE TABLE s (n INT)")
    c.execute("INSERT INTO s VALUES (NULL), (NULL), (1)")
    rows = c.execute("SELECT DISTINCT n FROM s ORDER BY n").rows
    assert rows == [(None,), (1,)]


def test_aggregate_in_having_not_selected(c):
    c.execute("CREATE TABLE s (g VARCHAR(2), n INT)")
    c.execute("INSERT INTO s VALUES ('a', 1), ('a', 2), ('b', 1)")
    rows = c.execute(
        "SELECT g FROM s GROUP BY g HAVING SUM(n) > 2").rows
    assert rows == [("a",)]


def test_arithmetic_on_aggregates(c):
    c.execute("CREATE TABLE s (n INT)")
    c.execute("INSERT INTO s VALUES (2), (4)")
    assert c.execute("SELECT SUM(n) * 2 + 1 FROM s").scalar() == 13


def test_string_ordering(c):
    c.execute("CREATE TABLE s (w VARCHAR(8))")
    c.execute("INSERT INTO s VALUES ('banana'), ('apple'), ('cherry')")
    rows = [r[0] for r in c.execute("SELECT w FROM s ORDER BY w").rows]
    assert rows == ["apple", "banana", "cherry"]


def test_multi_statement_script_returns_last(c):
    c.execute("CREATE TABLE s (n INT)")
    result = c.execute("INSERT INTO s VALUES (1); SELECT n FROM s;")
    assert result.scalar() == 1


def test_cross_database_insert_select(c):
    c.engine.create_database("other")
    c.execute("CREATE TABLE d.src (n INT)")
    c.execute("CREATE TABLE other.dst (n INT)")
    c.execute("INSERT INTO d.src VALUES (7)")
    c.execute("INSERT INTO other.dst (n) SELECT n FROM d.src")
    assert c.execute("SELECT n FROM other.dst").scalar() == 7


def test_use_switches_database(c):
    c.engine.create_database("second")
    c.execute("USE second")
    c.execute("CREATE TABLE here (n INT)")
    assert c.engine.database("second").has_table("here")
    with pytest.raises(NameError_):
        c.execute("USE nonexistent")


def test_for_update_read_returns_rows(c):
    c.execute("CREATE TABLE s (n INT)")
    c.execute("INSERT INTO s VALUES (5)")
    c.execute("BEGIN")
    rows = c.execute("SELECT n FROM s FOR UPDATE").rows
    c.execute("COMMIT")
    assert rows == [(5,)]


def test_between_on_strings(c):
    assert c.execute("SELECT 'b' BETWEEN 'a' AND 'c'").scalar() is True


def test_column_alias_shadowing_in_order_by(c):
    c.execute("CREATE TABLE s (n INT)")
    c.execute("INSERT INTO s VALUES (1), (2), (3)")
    rows = c.execute(
        "SELECT n * -1 AS n FROM s ORDER BY n").rows
    assert [r[0] for r in rows] == [-3, -2, -1]


def test_update_where_param(c):
    c.execute("CREATE TABLE s (k INT PRIMARY KEY, v INT)")
    c.execute("INSERT INTO s VALUES (1, 0), (2, 0)")
    c.execute("UPDATE s SET v = ? WHERE k = ?", [9, 2])
    assert c.execute("SELECT v FROM s WHERE k = 2").scalar() == 9


def test_reserved_soft_keywords_as_columns(c):
    c.execute('CREATE TABLE s ("level" INT, "key" INT)')
    c.execute("INSERT INTO s VALUES (1, 2)")
    rows = c.execute('SELECT "level", "key" FROM s').rows
    assert rows == [(1, 2)]
