"""Planner, EXPLAIN and parse-cache behavior.

The planner's contract is superset-safety: it may only turn a WHERE
clause into probe keys when the probe result provably contains every row
the full predicate accepts.  These tests pin the extraction rules
(equality and IN conjuncts only, OR and inequality fall back to scans),
the index-choice ranking, the EXPLAIN surface, and the LRU eviction of
the parse cache.
"""

import pytest

from repro.sqlengine import Engine, ParseError, generic, parse
from repro.sqlengine.expressions import EvalContext
from repro.sqlengine.planner import (
    INDEX_PROBE, SEQ_SCAN, equality_candidates, plan_table_access,
)


@pytest.fixture
def table(conn):
    conn.execute(
        "CREATE TABLE items (id INT PRIMARY KEY, sku VARCHAR UNIQUE, "
        "qty INT, region VARCHAR)")
    conn.execute("CREATE INDEX idx_region ON items (region)")
    for i in range(10):
        conn.execute("INSERT INTO items VALUES (?, ?, ?, ?)",
                     [i, f"sku{i}", i, f"r{i % 3}"])
    return conn.engine.database("shop").table("items")


def where_of(sql: str):
    return parse(sql).where


def plan(table, sql: str, params=None):
    ctx = EvalContext(None, None, params=params or [])
    return plan_table_access(table, "items", where_of(sql), ctx)


class TestConjunctExtraction:
    def test_simple_equality(self, table):
        candidates = equality_candidates(
            where_of("SELECT * FROM items WHERE id = 3"), "items", table)
        assert set(candidates) == {"id"}

    def test_reversed_and_qualified_equality(self, table):
        candidates = equality_candidates(
            where_of("SELECT * FROM items WHERE 3 = items.id"),
            "items", table)
        assert set(candidates) == {"id"}

    def test_in_list_and_and_chain(self, table):
        candidates = equality_candidates(
            where_of("SELECT * FROM items WHERE region IN ('r0', 'r1') "
                     "AND qty > 2 AND id = 1"), "items", table)
        assert set(candidates) == {"region", "id"}
        assert len(candidates["region"]) == 2

    def test_or_is_not_extracted(self, table):
        candidates = equality_candidates(
            where_of("SELECT * FROM items WHERE id = 1 OR id = 2"),
            "items", table)
        assert candidates == {}

    def test_column_to_column_equality_ignored(self, table):
        candidates = equality_candidates(
            where_of("SELECT * FROM items WHERE id = qty"), "items", table)
        assert candidates == {}

    def test_negated_in_ignored(self, table):
        candidates = equality_candidates(
            where_of("SELECT * FROM items WHERE id NOT IN (1, 2)"),
            "items", table)
        assert candidates == {}

    def test_other_binding_ignored(self, table):
        candidates = equality_candidates(
            where_of("SELECT * FROM items WHERE other.id = 1"),
            "items", table)
        assert candidates == {}


class TestPlanChoice:
    def test_pk_equality_plans_unique_probe(self, table):
        p = plan(table, "SELECT * FROM items WHERE id = 3")
        assert p.kind == INDEX_PROBE
        assert p.index.name == "items_pkey"
        assert p.keys == [(3,)]

    def test_param_value_probes(self, table):
        p = plan(table, "SELECT * FROM items WHERE id = ?", params=[7])
        assert p.kind == INDEX_PROBE
        assert p.keys == [(7,)]

    def test_unique_index_preferred_over_secondary(self, table):
        p = plan(table, "SELECT * FROM items "
                        "WHERE sku = 'sku1' AND region = 'r1'")
        assert p.kind == INDEX_PROBE
        assert p.index.unique

    def test_in_list_expands_to_keys(self, table):
        p = plan(table, "SELECT * FROM items WHERE id IN (1, 2, 3)")
        assert p.kind == INDEX_PROBE
        assert sorted(p.keys) == [(1,), (2,), (3,)]

    def test_unindexed_column_scans(self, table):
        p = plan(table, "SELECT * FROM items WHERE qty = 5")
        assert p.kind == SEQ_SCAN

    def test_inequality_scans(self, table):
        p = plan(table, "SELECT * FROM items WHERE id > 5")
        assert p.kind == SEQ_SCAN

    def test_value_coerced_to_column_type(self, table):
        p = plan(table, "SELECT * FROM items WHERE id = '3'")
        assert p.kind == INDEX_PROBE
        assert p.keys == [(3,)]

    def test_uncoercible_value_scans(self, table):
        p = plan(table, "SELECT * FROM items WHERE id = 'nope'")
        assert p.kind == SEQ_SCAN

    def test_null_key_dropped(self, table):
        p = plan(table, "SELECT * FROM items WHERE id IN (1, NULL)")
        assert p.kind == INDEX_PROBE
        assert p.keys == [(1,)]

    def test_oversized_in_list_scans(self, table):
        values = ", ".join(str(i) for i in range(100))
        p = plan(table, f"SELECT * FROM items WHERE id IN ({values})")
        assert p.kind == SEQ_SCAN

    def test_probe_is_superset_residual_filters(self, conn, table):
        # the probe binds only `id`; the residual predicate on qty must
        # still be applied to the candidate rows
        result = conn.execute(
            "SELECT id FROM items WHERE id IN (1, 2, 3) AND qty >= 2")
        assert sorted(r[0] for r in result.rows) == [2, 3]


class TestExplain:
    def test_explain_select_does_not_execute(self, conn, table):
        before = conn.engine.stats["rows_scanned"]
        result = conn.execute("EXPLAIN SELECT * FROM items WHERE id = 1")
        assert result.columns == ["operation", "table", "access_path", "keys"]
        op, tbl, path, keys = result.rows[0]
        assert (op, tbl) == ("SELECT", "items")
        assert path.startswith("index-probe")
        assert keys == 1
        assert conn.engine.stats["rows_scanned"] == before

    def test_explain_scan_and_update(self, conn, table):
        scan = conn.execute("EXPLAIN SELECT * FROM items WHERE qty > 1")
        assert scan.rows[0][2] == "seq-scan"
        update = conn.execute(
            "EXPLAIN UPDATE items SET qty = 0 WHERE id = 1")
        assert update.rows[0][0] == "UPDATE"
        assert update.rows[0][2].startswith("index-probe")
        # nothing was updated
        assert conn.execute(
            "SELECT qty FROM items WHERE id = 1").scalar() == 1

    def test_explain_rejects_ddl(self, conn, table):
        with pytest.raises(ParseError):
            conn.execute("EXPLAIN DROP TABLE items")

    def test_disabling_indexes_forces_scans(self, conn, table):
        conn.engine.use_indexes = False
        result = conn.execute("EXPLAIN SELECT * FROM items WHERE id = 1")
        assert result.rows[0][2] == "seq-scan"
        assert conn.execute(
            "SELECT qty FROM items WHERE id = 1").scalar() == 1


class TestParseCacheLRU:
    def test_hit_and_miss_accounting(self):
        engine = Engine("lru", dialect=generic())
        engine.parse("SELECT 1")
        engine.parse("SELECT 1")
        assert engine.stats["parse_cache_misses"] == 1
        assert engine.stats["parse_cache_hits"] == 1

    def test_capacity_evicts_least_recently_used(self):
        engine = Engine("lru", dialect=generic(), parse_cache_capacity=3)
        for n in range(3):
            engine.parse(f"SELECT {n}")
        engine.parse("SELECT 0")       # refresh 0: now 1 is the LRU entry
        engine.parse("SELECT 99")      # evicts 1
        assert "SELECT 1" not in engine._parse_cache
        assert "SELECT 0" in engine._parse_cache
        assert len(engine._parse_cache) == 3
        hits = engine.stats["parse_cache_hits"]
        engine.parse("SELECT 1")       # re-parse, not a hit
        assert engine.stats["parse_cache_hits"] == hits

    def test_cache_never_exceeds_capacity(self):
        engine = Engine("lru", dialect=generic(), parse_cache_capacity=8)
        for n in range(50):
            engine.parse(f"SELECT {n}")
        assert len(engine._parse_cache) == 8
