"""Index correctness under MVCC, DDL and replica rebuild.

The hash indexes of ``storage.py`` hold *versions*, not rows, so every
reader must still apply snapshot visibility to what a probe returns.
These tests pin the properties that make that safe: indexed reads respect
snapshots, rollback leaves no index garbage, DDL and temp-table teardown
clean up, and a rebuilt replica carries live (repopulating) indexes
rather than empty metadata shells.
"""

import pytest

from repro.sqlengine import (
    BackupOptions, Engine, IntegrityError, NameError_, dump_engine,
    restore_engine,
)


def items_table(engine):
    return engine.database("shop").table("items")


@pytest.fixture
def indexed_conn(conn):
    conn.execute(
        "CREATE TABLE items (id INT PRIMARY KEY AUTO_INCREMENT, "
        "sku VARCHAR, qty INT)")
    conn.execute("CREATE INDEX idx_sku ON items (sku)")
    for i in range(20):
        conn.execute("INSERT INTO items (sku, qty) VALUES (?, ?)",
                     [f"sku{i}", i])
    return conn


class TestIndexMaintenance:
    def test_auto_indexes_created_for_constraints(self, conn):
        conn.execute("CREATE TABLE t (a INT PRIMARY KEY, b INT UNIQUE, c INT)")
        table = conn.engine.database("shop").table("t")
        assert table.primary_key_index is not None
        assert table.index_for_columns(("b",)).unique
        assert table.index_for_columns(("c",)) is None

    def test_create_index_populates_existing_rows(self, indexed_conn):
        table = items_table(indexed_conn.engine)
        index = table.indexes["idx_sku"]
        assert index.entry_count() == 20
        assert len(index.probe(("sku7",))) == 1

    def test_probe_served_point_lookup(self, indexed_conn):
        engine = indexed_conn.engine
        before = engine.stats["rows_scanned"]
        result = indexed_conn.execute("SELECT qty FROM items WHERE sku = ?",
                                      ["sku3"])
        assert result.scalar() == 3
        assert engine.stats["rows_scanned"] - before == 1
        assert any("index-probe" in p
                   for p in engine.executor.last_access_paths)

    def test_update_moves_index_entries(self, indexed_conn):
        indexed_conn.execute("UPDATE items SET sku = 'moved' WHERE sku = 'sku4'")
        assert indexed_conn.execute(
            "SELECT qty FROM items WHERE sku = 'moved'").scalar() == 4
        assert indexed_conn.execute(
            "SELECT COUNT(*) FROM items WHERE sku = 'sku4'").scalar() == 0

    def test_delete_then_vacuum_empties_index(self, indexed_conn):
        engine = indexed_conn.engine
        indexed_conn.execute("DELETE FROM items")
        assert engine.vacuum() > 0
        table = items_table(engine)
        for index in table.indexes.values():
            assert index.entry_count() == 0
        assert table.version_count() == 0


class TestIndexMVCC:
    def test_indexed_read_respects_snapshot(self, pg_engine):
        writer = pg_engine.connect(database="shop")
        writer.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        writer.execute("INSERT INTO t VALUES (1, 10)")
        reader = pg_engine.connect(database="shop")
        reader.execute("BEGIN ISOLATION LEVEL REPEATABLE READ")
        assert reader.execute("SELECT v FROM t WHERE id = 1").scalar() == 10
        writer.execute("UPDATE t SET v = 20 WHERE id = 1")
        # the repeatable-read snapshot must keep seeing the old version
        # even though the probe now returns both versions of the chain
        assert reader.execute("SELECT v FROM t WHERE id = 1").scalar() == 10
        reader.execute("COMMIT")
        assert reader.execute("SELECT v FROM t WHERE id = 1").scalar() == 20

    def test_uncommitted_insert_invisible_through_index(self, engine):
        writer = engine.connect(database="shop")
        writer.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        writer.execute("BEGIN")
        writer.execute("INSERT INTO t VALUES (1, 10)")
        reader = engine.connect(database="shop")
        assert reader.execute(
            "SELECT COUNT(*) FROM t WHERE id = 1").scalar() == 0
        writer.execute("COMMIT")
        assert reader.execute(
            "SELECT COUNT(*) FROM t WHERE id = 1").scalar() == 1

    def test_rollback_leaves_no_index_garbage(self, conn):
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        conn.execute("INSERT INTO t VALUES (1, 10)")
        table = conn.engine.database("shop").table("t")
        pk_index = table.primary_key_index
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t VALUES (2, 20)")
        conn.execute("UPDATE t SET v = 11 WHERE id = 1")
        assert pk_index.entry_count() == 3  # 2 rows + superseded version
        conn.execute("ROLLBACK")
        assert pk_index.entry_count() == 1
        assert not pk_index.probe((2,))
        assert conn.execute("SELECT v FROM t WHERE id = 1").scalar() == 10

    def test_unique_check_still_enforced_through_index(self, conn):
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        conn.execute("INSERT INTO t VALUES (1, 10)")
        with pytest.raises(IntegrityError):
            conn.execute("INSERT INTO t VALUES (1, 99)")


class TestIndexDDL:
    def test_drop_table_discards_indexes(self, indexed_conn):
        database = indexed_conn.engine.database("shop")
        indexed_conn.execute("DROP TABLE items")
        assert not database.has_table("items")
        # the index name is gone with the table: DROP INDEX cannot find it
        with pytest.raises(NameError_):
            indexed_conn.execute("DROP INDEX idx_sku")

    def test_drop_index_removes_structure(self, indexed_conn):
        table = items_table(indexed_conn.engine)
        indexed_conn.execute("DROP INDEX idx_sku")
        assert "idx_sku" not in table.indexes
        # queries still answer, now via scan
        assert indexed_conn.execute(
            "SELECT qty FROM items WHERE sku = 'sku3'").scalar() == 3

    def test_constraint_indexes_not_droppable(self, conn):
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        with pytest.raises(NameError_):
            conn.execute("DROP INDEX t_pkey")
        assert conn.engine.database("shop").table("t").primary_key_index

    def test_temp_table_indexes_die_with_session(self, engine):
        conn = engine.connect(database="shop")
        conn.execute("CREATE TEMPORARY TABLE scratch (id INT PRIMARY KEY)")
        conn.execute("INSERT INTO scratch VALUES (1)")
        table = conn.temp_space.get("scratch")
        assert table.primary_key_index.entry_count() == 1
        conn.close()
        assert conn.temp_space.get("scratch") is None
        # the shared database namespace never saw the temp table's index
        assert not engine.database("shop").has_table("scratch")


class TestReplicaRebuild:
    def test_clone_schema_carries_live_indexes(self, indexed_conn):
        table = items_table(indexed_conn.engine)
        clone = table.clone_schema()
        assert set(clone.indexes) == set(table.indexes)
        assert clone.indexes["idx_sku"].entry_count() == 0
        clone.insert_version({"id": 1, "sku": "a", "qty": 1}, creator_txn=0)
        assert clone.indexes["idx_sku"].entry_count() == 1
        assert clone.primary_key_index.entry_count() == 1

    def test_restored_replica_repopulates_and_enforces(self, indexed_conn):
        indexed_conn.execute("CREATE UNIQUE INDEX uq_qty ON items (qty)")
        dump = dump_engine(indexed_conn.engine,
                           options=BackupOptions.full_clone())
        replica = Engine("replica")
        restore_engine(replica, dump)
        table = replica.database("shop").table("items")
        # indexes repopulated, not empty shells
        assert table.indexes["idx_sku"].entry_count() == 20
        assert table.primary_key_index.entry_count() == 20
        conn = replica.connect(database="shop")
        before = replica.stats["rows_scanned"]
        assert conn.execute(
            "SELECT qty FROM items WHERE sku = 'sku5'").scalar() == 5
        assert replica.stats["rows_scanned"] - before == 1
        # the re-created unique index enforces on the replica
        with pytest.raises(IntegrityError):
            conn.execute("INSERT INTO items (sku, qty) VALUES ('dup', 5)")
