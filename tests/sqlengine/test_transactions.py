"""Transaction semantics: atomicity, isolation levels, conflicts."""

import pytest

from repro.sqlengine import (
    DeadlockError, IntegrityError, SerializationError, SQLError,
    TransactionAbortedError, UnsupportedFeatureError,
)
from repro.sqlengine.locks import LockConflict


@pytest.fixture
def kv(conn):
    conn.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
    conn.execute("INSERT INTO kv VALUES (1, 10), (2, 20), (3, 30)")
    return conn


def second_conn(connection):
    return connection.engine.connect(database="shop")


def test_commit_makes_changes_visible(kv):
    kv.execute("BEGIN")
    kv.execute("UPDATE kv SET v = 11 WHERE k = 1")
    kv.execute("COMMIT")
    other = second_conn(kv)
    assert other.execute("SELECT v FROM kv WHERE k = 1").scalar() == 11


def test_rollback_discards_changes(kv):
    kv.execute("BEGIN")
    kv.execute("UPDATE kv SET v = 99 WHERE k = 1")
    kv.execute("INSERT INTO kv VALUES (4, 40)")
    kv.execute("DELETE FROM kv WHERE k = 2")
    kv.execute("ROLLBACK")
    assert kv.execute("SELECT v FROM kv WHERE k = 1").scalar() == 10
    assert kv.execute("SELECT COUNT(*) FROM kv").scalar() == 3


def test_own_writes_visible_inside_txn(kv):
    kv.execute("BEGIN")
    kv.execute("UPDATE kv SET v = 99 WHERE k = 1")
    assert kv.execute("SELECT v FROM kv WHERE k = 1").scalar() == 99
    kv.execute("ROLLBACK")


def test_uncommitted_invisible_to_others(kv):
    other = second_conn(kv)
    kv.execute("BEGIN")
    kv.execute("INSERT INTO kv VALUES (4, 40)")
    assert other.execute("SELECT COUNT(*) FROM kv").scalar() == 3
    kv.execute("COMMIT")
    assert other.execute("SELECT COUNT(*) FROM kv").scalar() == 4


def test_read_committed_sees_new_commits(kv):
    other = second_conn(kv)
    kv.execute("BEGIN ISOLATION LEVEL READ COMMITTED")
    before = kv.execute("SELECT COUNT(*) FROM kv").scalar()
    other.execute("INSERT INTO kv VALUES (4, 40)")
    after = kv.execute("SELECT COUNT(*) FROM kv").scalar()
    kv.execute("COMMIT")
    assert before == 3 and after == 4


def test_snapshot_isolation_stable_reads(kv):
    other = second_conn(kv)
    kv.execute("BEGIN ISOLATION LEVEL SNAPSHOT")
    before = kv.execute("SELECT COUNT(*) FROM kv").scalar()
    other.execute("INSERT INTO kv VALUES (4, 40)")
    after = kv.execute("SELECT COUNT(*) FROM kv").scalar()
    kv.execute("COMMIT")
    assert before == after == 3


def test_read_uncommitted_dirty_read(kv):
    other = second_conn(kv)
    other.execute("BEGIN")
    other.execute("UPDATE kv SET v = 555 WHERE k = 1")
    kv.execute("BEGIN ISOLATION LEVEL READ UNCOMMITTED")
    dirty = kv.execute("SELECT v FROM kv WHERE k = 1").scalar()
    kv.execute("COMMIT")
    other.execute("ROLLBACK")
    assert dirty == 555


def test_first_updater_wins_under_si(kv):
    other = second_conn(kv)
    kv.execute("BEGIN ISOLATION LEVEL SNAPSHOT")
    kv.execute("SELECT * FROM kv")
    other.execute("UPDATE kv SET v = 21 WHERE k = 2")  # commits first
    with pytest.raises(SerializationError):
        kv.execute("UPDATE kv SET v = 22 WHERE k = 2")
    kv.execute("ROLLBACK")


def test_si_non_overlapping_writes_ok(kv):
    other = second_conn(kv)
    kv.execute("BEGIN ISOLATION LEVEL SNAPSHOT")
    other.execute("UPDATE kv SET v = 21 WHERE k = 2")
    kv.execute("UPDATE kv SET v = 31 WHERE k = 3")  # different row: fine
    kv.execute("COMMIT")
    assert kv.execute("SELECT v FROM kv WHERE k = 3").scalar() == 31


def test_write_write_conflict_uncommitted(kv):
    other = second_conn(kv)
    other.execute("BEGIN")
    other.execute("UPDATE kv SET v = 21 WHERE k = 2")
    kv.execute("BEGIN")
    with pytest.raises((LockConflict, DeadlockError)):
        kv.execute("UPDATE kv SET v = 22 WHERE k = 2")
    kv.execute("ROLLBACK")
    other.execute("COMMIT")
    assert kv.execute("SELECT v FROM kv WHERE k = 2").scalar() == 21


def test_concurrent_insert_same_pk_conflicts(kv):
    other = second_conn(kv)
    other.execute("BEGIN")
    other.execute("INSERT INTO kv VALUES (9, 90)")
    kv.execute("BEGIN")
    with pytest.raises((LockConflict, DeadlockError)):
        kv.execute("INSERT INTO kv VALUES (9, 91)")
    kv.execute("ROLLBACK")
    other.execute("ROLLBACK")


def test_serializable_table_locks(kv):
    other = second_conn(kv)
    kv.execute("BEGIN ISOLATION LEVEL SERIALIZABLE")
    kv.execute("UPDATE kv SET v = 1 WHERE k = 1")  # X lock on kv
    other.execute("BEGIN ISOLATION LEVEL SERIALIZABLE")
    with pytest.raises((LockConflict, DeadlockError)):
        other.execute("SELECT * FROM kv")  # S lock blocked
    other.execute("ROLLBACK")
    kv.execute("COMMIT")


def test_serializable_readers_share(kv):
    other = second_conn(kv)
    kv.execute("BEGIN ISOLATION LEVEL SERIALIZABLE")
    kv.execute("SELECT * FROM kv")
    other.execute("BEGIN ISOLATION LEVEL SERIALIZABLE")
    other.execute("SELECT * FROM kv")  # shared locks coexist
    kv.execute("COMMIT")
    other.execute("COMMIT")


def test_locks_released_at_commit(kv):
    other = second_conn(kv)
    kv.execute("BEGIN ISOLATION LEVEL SERIALIZABLE")
    kv.execute("UPDATE kv SET v = 1 WHERE k = 1")
    kv.execute("COMMIT")
    other.execute("BEGIN ISOLATION LEVEL SERIALIZABLE")
    other.execute("UPDATE kv SET v = 2 WHERE k = 1")  # no conflict now
    other.execute("COMMIT")


def test_nested_begin_rejected(kv):
    kv.execute("BEGIN")
    with pytest.raises(SQLError):
        kv.execute("BEGIN")
    kv.execute("ROLLBACK")


def test_commit_without_txn_is_noop(kv):
    kv.execute("COMMIT")
    kv.execute("ROLLBACK")


def test_writeset_captured(kv):
    kv.execute("BEGIN")
    kv.execute("UPDATE kv SET v = 11 WHERE k = 1")
    kv.execute("INSERT INTO kv VALUES (5, 50)")
    kv.execute("DELETE FROM kv WHERE k = 2")
    writeset = kv.txn.writeset
    ops = [entry.op for entry in writeset]
    assert ops == ["UPDATE", "INSERT", "DELETE"]
    assert writeset.entries[0].old_values["v"] == 10
    assert writeset.entries[0].new_values["v"] == 11
    assert writeset.entries[0].primary_key == (1,)
    kv.execute("ROLLBACK")


def test_snapshot_unsupported_dialect(mysql_engine):
    connection = mysql_engine.connect(database="shop")
    with pytest.raises(UnsupportedFeatureError):
        connection.execute("BEGIN ISOLATION LEVEL SNAPSHOT")


def test_pg_error_poisons_transaction(pg_engine):
    connection = pg_engine.connect(database="shop")
    connection.execute("CREATE TABLE t (id INT PRIMARY KEY)")
    connection.execute("BEGIN")
    connection.execute("INSERT INTO t VALUES (1)")
    with pytest.raises(IntegrityError):
        connection.execute("INSERT INTO t VALUES (1)")
    with pytest.raises(TransactionAbortedError):
        connection.execute("SELECT * FROM t")
    connection.execute("ROLLBACK")
    # transaction was effectively aborted entirely
    assert connection.execute("SELECT COUNT(*) FROM t").scalar() == 0


def test_mysql_error_leaves_transaction_usable(mysql_engine):
    connection = mysql_engine.connect(database="shop")
    connection.execute("CREATE TABLE t (id INT PRIMARY KEY)")
    connection.execute("BEGIN")
    connection.execute("INSERT INTO t VALUES (1)")
    with pytest.raises(IntegrityError):
        connection.execute("INSERT INTO t VALUES (1)")
    connection.execute("INSERT INTO t VALUES (2)")  # still usable
    connection.execute("COMMIT")
    assert connection.execute("SELECT COUNT(*) FROM t").scalar() == 2


def test_commit_of_failed_txn_rolls_back(pg_engine):
    connection = pg_engine.connect(database="shop")
    connection.execute("CREATE TABLE t (id INT PRIMARY KEY)")
    connection.execute("BEGIN")
    connection.execute("INSERT INTO t VALUES (1)")
    with pytest.raises(IntegrityError):
        connection.execute("INSERT INTO t VALUES (1)")
    connection.execute("COMMIT")  # PostgreSQL behaviour: commits as rollback
    assert connection.execute("SELECT COUNT(*) FROM t").scalar() == 0


def test_connection_close_rolls_back(kv):
    other = second_conn(kv)
    other.execute("BEGIN")
    other.execute("INSERT INTO kv VALUES (8, 80)")
    other.close()
    assert kv.execute("SELECT COUNT(*) FROM kv").scalar() == 3


def test_engine_crash_aborts_transactions(kv):
    engine = kv.engine
    kv.execute("BEGIN")
    kv.execute("INSERT INTO kv VALUES (7, 70)")
    engine.crash()
    engine.recover()
    fresh = engine.connect(database="shop")
    assert fresh.execute("SELECT COUNT(*) FROM kv").scalar() == 3


def test_binlog_records_commits(kv):
    head = kv.engine.binlog.head_sequence
    kv.execute("UPDATE kv SET v = 1 WHERE k = 1")
    records = kv.engine.binlog.since(head)
    assert len(records) == 1
    assert records[0].writeset[0]["op"] == "UPDATE"
    assert records[0].statements[0][0].startswith("UPDATE")


def test_read_only_txn_produces_no_binlog(kv):
    head = kv.engine.binlog.head_sequence
    kv.execute("BEGIN")
    kv.execute("SELECT * FROM kv")
    kv.execute("COMMIT")
    assert kv.engine.binlog.head_sequence == head
