"""SELECT execution tests."""

import pytest

from repro.sqlengine import NameError_


@pytest.fixture
def data(conn):
    conn.execute("""CREATE TABLE users (
        id INT PRIMARY KEY, name VARCHAR(30), age INT, city VARCHAR(20))""")
    conn.execute("""CREATE TABLE orders (
        oid INT PRIMARY KEY, uid INT, total FLOAT)""")
    conn.execute(
        "INSERT INTO users VALUES "
        "(1, 'alice', 30, 'paris'), (2, 'bob', 25, 'london'), "
        "(3, 'carol', 35, 'paris'), (4, 'dave', NULL, 'berlin')")
    conn.execute(
        "INSERT INTO orders VALUES (1, 1, 10.0), (2, 1, 25.0), "
        "(3, 2, 5.0), (4, 9, 99.0)")
    return conn


def test_select_star_order(data):
    result = data.execute("SELECT * FROM users ORDER BY id")
    assert result.columns == ["id", "name", "age", "city"]
    assert result.rows[0] == (1, "alice", 30, "paris")
    assert len(result.rows) == 4


def test_where_filter(data):
    result = data.execute("SELECT name FROM users WHERE age > 26")
    assert {r[0] for r in result.rows} == {"alice", "carol"}


def test_where_null_excluded(data):
    result = data.execute("SELECT name FROM users WHERE age > 0")
    assert "dave" not in {r[0] for r in result.rows}


def test_order_by_asc_desc_and_nulls_first(data):
    ages = [r[0] for r in data.execute(
        "SELECT age FROM users ORDER BY age").rows]
    assert ages == [None, 25, 30, 35]
    ages_desc = [r[0] for r in data.execute(
        "SELECT age FROM users ORDER BY age DESC").rows]
    assert ages_desc == [35, 30, 25, None]


def test_order_by_alias_and_ordinal(data):
    by_alias = data.execute(
        "SELECT name, age AS years FROM users WHERE age IS NOT NULL "
        "ORDER BY years DESC")
    assert by_alias.rows[0][0] == "carol"


def test_limit_offset(data):
    result = data.execute("SELECT id FROM users ORDER BY id LIMIT 2 OFFSET 1")
    assert [r[0] for r in result.rows] == [2, 3]


def test_distinct(data):
    result = data.execute("SELECT DISTINCT city FROM users")
    assert len(result.rows) == 3


def test_aggregates(data):
    row = data.execute(
        "SELECT COUNT(*), COUNT(age), SUM(age), AVG(age), MIN(age), MAX(age) "
        "FROM users").rows[0]
    assert row == (4, 3, 90, 30.0, 25, 35)


def test_aggregate_empty_table(conn):
    conn.execute("CREATE TABLE empty1 (a INT)")
    row = conn.execute("SELECT COUNT(*), SUM(a), MIN(a) FROM empty1").rows[0]
    assert row == (0, None, None)


def test_group_by_having(data):
    result = data.execute(
        "SELECT city, COUNT(*) AS n FROM users GROUP BY city "
        "HAVING COUNT(*) > 1")
    assert result.rows == [("paris", 2)]


def test_count_distinct(data):
    assert data.execute(
        "SELECT COUNT(DISTINCT city) FROM users").scalar() == 3


def test_inner_join(data):
    result = data.execute(
        "SELECT u.name, o.total FROM users u JOIN orders o ON u.id = o.uid "
        "ORDER BY o.total")
    assert result.rows == [("bob", 5.0), ("alice", 10.0), ("alice", 25.0)]


def test_left_join_null_padding(data):
    result = data.execute(
        "SELECT u.name, o.oid FROM users u LEFT JOIN orders o "
        "ON u.id = o.uid WHERE o.oid IS NULL")
    assert {r[0] for r in result.rows} == {"carol", "dave"}


def test_join_with_group_by(data):
    result = data.execute(
        "SELECT u.name, SUM(o.total) AS s FROM users u "
        "JOIN orders o ON u.id = o.uid GROUP BY u.name ORDER BY s DESC")
    assert result.rows[0] == ("alice", 35.0)


def test_cross_join(data):
    result = data.execute("SELECT COUNT(*) FROM users, orders")
    assert result.scalar() == 16


def test_in_subquery(data):
    result = data.execute(
        "SELECT name FROM users WHERE id IN "
        "(SELECT uid FROM orders WHERE total > 8)")
    assert {r[0] for r in result.rows} == {"alice"}


def test_correlated_exists(data):
    result = data.execute(
        "SELECT name FROM users u WHERE EXISTS "
        "(SELECT 1 FROM orders o WHERE o.uid = u.id)")
    assert {r[0] for r in result.rows} == {"alice", "bob"}


def test_scalar_subquery(data):
    result = data.execute(
        "SELECT name, (SELECT MAX(total) FROM orders) FROM users "
        "WHERE id = 1")
    assert result.rows[0][1] == 99.0


def test_derived_table(data):
    result = data.execute(
        "SELECT big.name FROM "
        "(SELECT name, age FROM users WHERE age > 24) big "
        "WHERE big.age < 31")
    assert {r[0] for r in result.rows} == {"alice", "bob"}


def test_ambiguous_column_raises(data):
    with pytest.raises(NameError_):
        data.execute("SELECT name FROM users u1 JOIN users u2 "
                     "ON u1.id = u2.id")


def test_unknown_column_raises(data):
    with pytest.raises(NameError_):
        data.execute("SELECT nope FROM users")


def test_unknown_table_raises(conn):
    with pytest.raises(NameError_):
        conn.execute("SELECT * FROM missing_table")


def test_qualified_star_in_join(data):
    result = data.execute(
        "SELECT o.* FROM users u JOIN orders o ON u.id = o.uid "
        "WHERE u.name = 'bob'")
    assert result.columns == ["oid", "uid", "total"]
    assert result.rows == [(3, 2, 5.0)]


def test_multi_database_query(engine, conn):
    """Queries spanning database instances (paper section 4.1.1)."""
    engine.create_database("reporting")
    conn.execute("CREATE TABLE shop.products (id INT, label VARCHAR(20))")
    conn.execute("CREATE TABLE reporting.stats (id INT, hits INT)")
    conn.execute("INSERT INTO shop.products VALUES (1, 'thing')")
    conn.execute("INSERT INTO reporting.stats VALUES (1, 42)")
    result = conn.execute(
        "SELECT p.label, s.hits FROM shop.products p "
        "JOIN reporting.stats s ON p.id = s.id")
    assert result.rows == [("thing", 42)]


def test_expression_in_select_list(data):
    result = data.execute(
        "SELECT name, age * 2 AS double_age FROM users WHERE id = 1")
    assert result.rows == [("alice", 60)]
    assert result.columns == ["name", "double_age"]


def test_result_helpers(data):
    result = data.execute("SELECT id, name FROM users ORDER BY id LIMIT 1")
    assert result.scalar() == 1
    assert result.first() == (1, "alice")
    assert result.as_dicts() == [{"id": 1, "name": "alice"}]
