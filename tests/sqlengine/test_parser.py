"""Parser unit tests."""

import pytest

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.errors import ParseError
from repro.sqlengine.parser import parse, parse_script


# -- SELECT -----------------------------------------------------------------

def test_select_star():
    statement = parse("SELECT * FROM users")
    assert isinstance(statement, ast.SelectStatement)
    assert isinstance(statement.columns[0][0], ast.Star)
    assert statement.source.name.name == "users"


def test_select_columns_and_aliases():
    statement = parse("SELECT a, b AS bee, c cee FROM t")
    aliases = [alias for _expr, alias in statement.columns]
    assert aliases == [None, "bee", "cee"]


def test_select_qualified_star():
    statement = parse("SELECT u.* FROM users u")
    star = statement.columns[0][0]
    assert isinstance(star, ast.Star)
    assert star.table == "u"


def test_select_where_precedence():
    statement = parse("SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3")
    where = statement.where
    assert where.op == "OR"
    assert where.right.op == "AND"


def test_select_group_having_order_limit():
    statement = parse(
        "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1 "
        "ORDER BY a DESC LIMIT 5 OFFSET 2")
    assert len(statement.group_by) == 1
    assert statement.having is not None
    assert statement.order_by[0][1] is False  # DESC
    assert statement.limit.value == 5
    assert statement.offset.value == 2


def test_select_joins():
    statement = parse(
        "SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.id = c.id")
    outer = statement.source
    assert isinstance(outer, ast.Join)
    assert outer.kind == "LEFT"
    assert outer.left.kind == "INNER"


def test_select_cross_join_comma():
    statement = parse("SELECT * FROM a, b")
    assert statement.source.kind == "CROSS"


def test_select_derived_table():
    statement = parse("SELECT * FROM (SELECT a FROM t) sub")
    assert isinstance(statement.source, ast.SubquerySource)
    assert statement.source.alias == "sub"


def test_select_for_update():
    statement = parse("SELECT * FROM t FOR UPDATE")
    assert statement.for_update


def test_select_distinct():
    assert parse("SELECT DISTINCT a FROM t").distinct


def test_select_without_from():
    statement = parse("SELECT 1 + 2")
    assert statement.source is None


def test_scalar_subquery_and_exists():
    statement = parse(
        "SELECT (SELECT MAX(v) FROM t2), a FROM t "
        "WHERE EXISTS (SELECT 1 FROM t3)")
    assert isinstance(statement.columns[0][0], ast.ScalarSubquery)
    assert isinstance(statement.where, ast.ExistsSubquery)


def test_in_list_and_subquery():
    s1 = parse("SELECT 1 FROM t WHERE a IN (1, 2, 3)")
    assert len(s1.where.items) == 3
    s2 = parse("SELECT 1 FROM t WHERE a NOT IN (SELECT b FROM u)")
    assert s2.where.negated and s2.where.subquery is not None


def test_between_like_isnull():
    statement = parse(
        "SELECT 1 FROM t WHERE a BETWEEN 1 AND 5 AND b LIKE 'x%' "
        "AND c IS NOT NULL")
    clause = statement.where
    assert isinstance(clause.left.left, ast.Between)
    assert isinstance(clause.left.right, ast.Like)
    assert isinstance(clause.right, ast.IsNull) and clause.right.negated


def test_case_expression():
    statement = parse(
        "SELECT CASE WHEN a > 0 THEN 'pos' WHEN a < 0 THEN 'neg' "
        "ELSE 'zero' END FROM t")
    case = statement.columns[0][0]
    assert isinstance(case, ast.Case)
    assert len(case.whens) == 2
    assert case.default.value == "zero"


# -- DML -----------------------------------------------------------------

def test_insert_multi_row():
    statement = parse("INSERT INTO t (a, b) VALUES (1, 2), (3, 4)")
    assert statement.columns == ["a", "b"]
    assert len(statement.rows) == 2


def test_insert_select():
    statement = parse("INSERT INTO t (a) SELECT b FROM u")
    assert statement.select is not None


def test_insert_qualified_table():
    statement = parse("INSERT INTO shop.orders (id) VALUES (1)")
    assert statement.table.database == "shop"


def test_update_with_assignments():
    statement = parse("UPDATE t SET a = 1, b = b + 1 WHERE id = 3")
    assert len(statement.assignments) == 2
    assert statement.where is not None


def test_delete():
    statement = parse("DELETE FROM t WHERE a < 5")
    assert isinstance(statement, ast.DeleteStatement)


# -- DDL -----------------------------------------------------------------

def test_create_table_constraints():
    statement = parse(
        "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, "
        "name VARCHAR(30) NOT NULL UNIQUE, ts TIMESTAMP DEFAULT NOW())")
    by_name = {c.name: c for c in statement.columns}
    assert by_name["id"].primary_key and by_name["id"].auto_increment
    assert not by_name["name"].nullable and by_name["name"].unique
    assert by_name["ts"].default is not None


def test_create_table_composite_pk():
    statement = parse("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))")
    assert all(c.primary_key for c in statement.columns)


def test_create_temporary_table():
    assert parse("CREATE TEMPORARY TABLE tmp (a INT)").temporary
    assert parse("CREATE TEMP TABLE tmp (a INT)").temporary


def test_create_table_if_not_exists():
    assert parse("CREATE TABLE IF NOT EXISTS t (a INT)").if_not_exists


def test_create_index():
    statement = parse("CREATE UNIQUE INDEX idx ON t (a, b)")
    assert statement.unique and statement.columns == ["a", "b"]


def test_create_sequence():
    statement = parse("CREATE SEQUENCE seq START WITH 10 INCREMENT BY 5")
    assert statement.start == 10 and statement.increment == 5


def test_create_trigger():
    statement = parse(
        "CREATE TRIGGER trg AFTER UPDATE ON t FOR EACH ROW "
        "BEGIN INSERT INTO log (x) VALUES (1); END")
    assert statement.timing == "AFTER" and statement.event == "UPDATE"
    assert len(statement.body) == 1


def test_create_procedure():
    statement = parse(
        "CREATE PROCEDURE proc(a, b) BEGIN "
        "UPDATE t SET x = a WHERE id = b; "
        "SELECT * FROM t; END")
    assert statement.params == ["a", "b"]
    assert len(statement.body) == 2


def test_drop_variants():
    assert parse("DROP TABLE IF EXISTS t").if_exists
    assert parse("DROP DATABASE d").kind == "DATABASE"
    assert parse("DROP SEQUENCE s").kind == "SEQUENCE"


def test_alter_table():
    add = parse("ALTER TABLE t ADD COLUMN extra INT")
    assert add.action == "ADD_COLUMN" and add.column.name == "extra"
    rename = parse("ALTER TABLE t RENAME TO t2")
    assert rename.action == "RENAME" and rename.new_name == "t2"


# -- transactions / misc ----------------------------------------------------

def test_begin_isolation_levels():
    assert parse("BEGIN").isolation is None
    assert parse("BEGIN ISOLATION LEVEL SNAPSHOT").isolation == "SNAPSHOT"
    assert parse("START TRANSACTION").isolation is None
    assert (parse("BEGIN ISOLATION LEVEL READ COMMITTED").isolation
            == "READ COMMITTED")
    assert (parse("BEGIN ISOLATION LEVEL REPEATABLE READ").isolation
            == "REPEATABLE READ")


def test_commit_rollback():
    assert isinstance(parse("COMMIT"), ast.CommitStatement)
    assert isinstance(parse("ROLLBACK WORK"), ast.RollbackStatement)


def test_set_isolation():
    statement = parse("SET TRANSACTION ISOLATION LEVEL SERIALIZABLE")
    assert statement.name == "isolation_level"
    assert statement.value == "SERIALIZABLE"


def test_grant_revoke():
    grant = parse("GRANT SELECT, INSERT ON shop.orders TO bob")
    assert grant.privileges == ["SELECT", "INSERT"]
    revoke = parse("REVOKE ALL ON shop.orders FROM bob")
    assert revoke.privileges == ["ALL"]


def test_use_and_call():
    assert parse("USE shop").database == "shop"
    call = parse("CALL proc(1, 'x')")
    assert len(call.args) == 2


def test_lock_table():
    statement = parse("LOCK TABLE t IN EXCLUSIVE MODE")
    assert statement.mode == "EXCLUSIVE"


def test_sequence_pseudocolumns():
    statement = parse("SELECT seq.NEXTVAL, NEXTVAL('seq')")
    first, second = statement.columns[0][0], statement.columns[1][0]
    assert first.name == "NEXTVAL" and second.name == "NEXTVAL"


def test_params_numbered_in_order():
    statement = parse("SELECT 1 FROM t WHERE a = ? AND b = ?")
    assert statement.where.left.right.index == 0
    assert statement.where.right.right.index == 1


def test_parse_script_multiple():
    statements = parse_script("SELECT 1; SELECT 2; COMMIT;")
    assert len(statements) == 3


def test_parse_single_rejects_multiple():
    with pytest.raises(ParseError):
        parse("SELECT 1; SELECT 2")


def test_parse_error_on_garbage():
    with pytest.raises(ParseError):
        parse("FLY ME TO THE MOON")
    with pytest.raises(ParseError):
        parse("SELECT FROM WHERE")


def test_qualified_name_three_parts():
    statement = parse("SELECT * FROM db.app.table1")
    name = statement.source.name
    assert name.database == "db" and name.schema == "app"
    assert name.name == "table1"
