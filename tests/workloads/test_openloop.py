"""Open-loop workload tier: Zipf sampler exactness, rate curves,
Poisson thinning, and the per-session workload shape."""

from __future__ import annotations

import math
import random

import pytest

from repro.workloads.openloop import (
    ConstantRate,
    DiurnalRate,
    FlashCrowd,
    OpenLoopWorkload,
    ZipfSampler,
    arrival_times,
)


class TestZipfSampler:
    def test_matches_analytic_distribution(self):
        """Empirical frequencies track the exact Zipf pmf — the property
        the rejection sampler only approximates at high skew."""
        sampler = ZipfSampler(population=50, skew=1.2)
        rng = random.Random(7)
        draws = 40_000
        counts = [0] * 50
        for _ in range(draws):
            counts[sampler.sample(rng)] += 1
        total_weight = sum(1.0 / (r + 1) ** 1.2 for r in range(50))
        for rank in (0, 1, 4, 9):
            expected = (1.0 / (rank + 1) ** 1.2) / total_weight
            observed = counts[rank] / draws
            assert observed == pytest.approx(expected, rel=0.15)

    def test_rank_order_is_monotone(self):
        sampler = ZipfSampler(population=100, skew=1.1)
        rng = random.Random(3)
        counts = [0] * 100
        for _ in range(20_000):
            counts[sampler.sample(rng)] += 1
        assert counts[0] > counts[9] > counts[49]

    def test_hot_fraction(self):
        sampler = ZipfSampler(population=1000, skew=1.1)
        assert 0.0 < sampler.hot_fraction(10) < 1.0
        assert sampler.hot_fraction(1000) == pytest.approx(1.0)
        assert sampler.hot_fraction(5000) == pytest.approx(1.0)

    def test_bounds(self):
        sampler = ZipfSampler(population=10, skew=2.0)
        rng = random.Random(1)
        assert all(0 <= sampler.sample(rng) < 10 for _ in range(1000))
        with pytest.raises(ValueError):
            ZipfSampler(population=0)


class TestRateCurves:
    def test_constant(self):
        curve = ConstantRate(100.0)
        assert curve.rate(0.0) == 100.0
        assert curve.rate(12345.0) == 100.0
        assert curve.max_rate(1000.0) == 100.0

    def test_diurnal_swing_and_envelope(self):
        curve = DiurnalRate(base=100.0, amplitude=0.5, period=86400.0)
        peak = curve.rate(86400.0 * 0.25)
        trough = curve.rate(86400.0 * 0.75)
        assert peak == pytest.approx(150.0)
        assert trough == pytest.approx(50.0)
        horizon = 86400.0
        envelope = curve.max_rate(horizon)
        for i in range(200):
            assert curve.rate(horizon * i / 200) <= envelope + 1e-9
        with pytest.raises(ValueError):
            DiurnalRate(base=1.0, amplitude=1.5)

    def test_flash_crowd_boost_window(self):
        curve = FlashCrowd(ConstantRate(100.0), start=10.0, duration=5.0,
                           multiplier=2.0)
        assert curve.rate(9.9) == 100.0
        assert curve.rate(12.0) == 200.0
        assert curve.rate(15.0) == 100.0
        assert curve.max_rate(100.0) == 200.0

    def test_flash_crowd_ramps_linearly(self):
        curve = FlashCrowd(ConstantRate(100.0), start=10.0, duration=10.0,
                           multiplier=3.0, ramp=2.0)
        assert curve.rate(10.0) == pytest.approx(100.0)
        assert curve.rate(11.0) == pytest.approx(200.0)  # halfway up
        assert curve.rate(15.0) == pytest.approx(300.0)  # plateau
        assert curve.rate(19.0) == pytest.approx(200.0)  # halfway down
        with pytest.raises(ValueError):
            FlashCrowd(ConstantRate(1.0), 0.0, 1.0, multiplier=0.5)

    def test_flash_crowd_composes_with_diurnal(self):
        base = DiurnalRate(base=100.0, amplitude=0.5, period=100.0)
        curve = FlashCrowd(base, start=20.0, duration=10.0, multiplier=2.0)
        assert curve.rate(25.0) == pytest.approx(base.rate(25.0) * 2.0)


class TestArrivalTimes:
    def test_mean_count_matches_intensity(self):
        rng = random.Random(11)
        horizon = 50.0
        arrivals = list(arrival_times(ConstantRate(40.0), horizon, rng))
        expected = 40.0 * horizon
        # Poisson(2000): 4 sigma ≈ 179
        assert abs(len(arrivals) - expected) < 4 * math.sqrt(expected)
        assert all(0.0 <= t < horizon for t in arrivals)
        assert arrivals == sorted(arrivals)

    def test_thinning_tracks_the_curve(self):
        """Twice the rate in the flash window ⇒ about twice the
        arrivals per unit time inside it."""
        rng = random.Random(13)
        curve = FlashCrowd(ConstantRate(50.0), start=20.0, duration=20.0,
                           multiplier=2.0)
        arrivals = list(arrival_times(curve, 60.0, rng))
        inside = sum(1 for t in arrivals if 20.0 <= t < 40.0)
        outside = sum(1 for t in arrivals if t < 20.0 or t >= 40.0)
        rate_in = inside / 20.0
        rate_out = outside / 40.0
        assert rate_in / rate_out == pytest.approx(2.0, rel=0.15)

    def test_limit_caps_arrivals(self):
        rng = random.Random(5)
        arrivals = list(arrival_times(ConstantRate(1000.0), 100.0, rng,
                                      limit=17))
        assert len(arrivals) == 17

    def test_zero_rate_yields_nothing(self):
        rng = random.Random(5)
        assert list(arrival_times(ConstantRate(0.0), 10.0, rng)) == []

    def test_deterministic_under_seed(self):
        first = list(arrival_times(ConstantRate(20.0), 10.0,
                                   random.Random(42)))
        second = list(arrival_times(ConstantRate(20.0), 10.0,
                                    random.Random(42)))
        assert first == second


class TestOpenLoopWorkload:
    def test_setup_seeds_only_seed_rows(self):
        workload = OpenLoopWorkload(rows=1_000_000, seed_rows=100)
        statements = workload.setup_sql()
        assert len(statements) == 101  # CREATE TABLE + seeds
        assert "CREATE TABLE" in statements[0]

    def test_session_shape(self):
        workload = OpenLoopWorkload(mean_session_length=3.0,
                                    max_session_length=8,
                                    mean_think_time=0.05)
        rng = random.Random(9)
        lengths = [workload.session_length(rng) for _ in range(2000)]
        assert all(1 <= n <= 8 for n in lengths)
        mean = sum(lengths) / len(lengths)
        assert 2.0 < mean < 4.0  # geometric mean ~3, capped at 8
        thinks = [workload.think_time(rng) for _ in range(2000)]
        assert all(t >= 0.0 for t in thinks)
        assert sum(thinks) / len(thinks) == pytest.approx(0.05, rel=0.2)

    def test_transaction_mix(self):
        workload = OpenLoopWorkload(rows=1000, read_fraction=0.8)
        rng = random.Random(17)
        specs = [workload.next_transaction(rng) for _ in range(3000)]
        reads = sum(1 for s in specs if s.is_read_only)
        assert reads / len(specs) == pytest.approx(0.8, abs=0.05)
        for spec in specs[:20]:
            sql = spec.statements[0][0]
            assert "sessions_kv" in sql
            assert spec.kind in ("point_read", "point_write")

    def test_zero_think_time(self):
        workload = OpenLoopWorkload(mean_think_time=0.0)
        assert workload.think_time(random.Random(1)) == 0.0
