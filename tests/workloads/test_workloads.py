"""Workload generator tests."""

import random

import pytest

from repro.core import MiddlewareConfig, ReplicationMiddleware
from repro.workloads import (
    ClosedLoopRun, MicroWorkload, MultiTableWorkload, RubisWorkload,
    SequentialBatchWorkload, StatisticalReplayer, TicketBrokerWorkload,
    TpcWWorkload, TraceRecorder, equivalent, exact_replay_is_possible,
    scaled_load_plan, zipf_choice,
)

from tests.conftest import make_replicas


ALL_WORKLOADS = [
    MicroWorkload(rows=50),
    SequentialBatchWorkload(rows=20),
    MultiTableWorkload(tables=3, rows_per_table=20),
    TicketBrokerWorkload(offers=30, agencies=5),
    TpcWWorkload(items=40, customers=10),
    RubisWorkload(items=30, users=10),
]


def cluster_for(workload):
    replicas = make_replicas(2)
    mw = ReplicationMiddleware(replicas,
                               MiddlewareConfig(replication="statement"))
    session = mw.connect(database="shop")
    for sql in workload.setup_sql():
        session.execute(sql)
    session.close()
    return mw


@pytest.mark.parametrize("workload", ALL_WORKLOADS,
                         ids=lambda w: w.name)
def test_workload_runs_against_cluster(workload):
    mw = cluster_for(workload)
    run = ClosedLoopRun(workload, clients=2, seed=1)
    stats = run.run(lambda: mw.connect(database="shop"),
                    transactions_per_client=15)
    assert stats["completed"] >= 25
    assert mw.check_convergence()


@pytest.mark.parametrize("workload", ALL_WORKLOADS,
                         ids=lambda w: w.name)
def test_mix_matches_declared_read_fraction(workload):
    rng = random.Random(11)
    total = 400
    reads = sum(
        1 for _ in range(total)
        if workload.next_transaction(rng).is_read_only
    )
    expected = workload.read_fraction_estimate()
    assert abs(reads / total - expected) < 0.08


def test_ticket_broker_is_95_percent_reads():
    workload = TicketBrokerWorkload()
    assert workload.read_fraction_estimate() == 0.95


def test_tpcw_mixes():
    assert TpcWWorkload(mix="browsing").read_fraction == 0.95
    assert TpcWWorkload(mix="ordering").read_fraction == 0.50
    with pytest.raises(ValueError):
        TpcWWorkload(mix="nonsense")


def test_zipf_skews_hot_keys():
    rng = random.Random(3)
    counts = {}
    for _ in range(3000):
        key = zipf_choice(rng, 100, 1.3)
        counts[key] = counts.get(key, 0) + 1
    hot = sum(counts.get(k, 0) for k in range(10))
    assert hot > 3000 * 0.3  # top 10% of keys get >30% of traffic


def test_sequential_batch_is_deterministic_cursor():
    workload = SequentialBatchWorkload(rows=5)
    rng = random.Random(1)
    keys = []
    for _ in range(7):
        spec = workload.next_transaction(rng)
        keys.append(spec.statements[0][0])
    assert "k = 0" in keys[0] and "k = 0" in keys[5]  # wraps around


def test_scaled_load_plan():
    assert scaled_load_plan(4, 5) == 20


def test_trace_capture_and_statistical_replay():
    workload = MicroWorkload(rows=30, read_fraction=0.6)
    mw = cluster_for(workload)
    session = mw.connect(database="shop")
    recorder = TraceRecorder(session)
    rng = random.Random(5)
    for _ in range(50):
        spec = workload.next_transaction(rng)
        for sql, params in spec.statements:
            recorder.execute(sql, params)
    histogram = recorder.kind_histogram()
    assert set(histogram) <= {"read", "write"}
    assert sum(histogram.values()) == 50

    # replay onto a second, identical cluster
    mw2 = cluster_for(MicroWorkload(rows=30, read_fraction=0.6))
    target = mw2.connect(database="shop")
    replayer = StatisticalReplayer(recorder.entries, seed=9)
    outcome = replayer.replay(target)
    assert outcome["replayed"] == 50
    target.close()
    recorder.close()


def test_statistical_equivalence_definition():
    assert equivalent({"read": 10, "write": 2}, {"write": 2, "read": 10})
    assert not equivalent({"read": 10}, {"read": 9})


def test_exact_replay_verdict_matches_paper():
    assert exact_replay_is_possible() is False


def test_closed_loop_counts_aborts():
    class FailingSession:
        def execute(self, sql, params=None):
            raise RuntimeError("nope")

        def close(self):
            pass

    run = ClosedLoopRun(MicroWorkload(rows=5), clients=1)
    stats = run.run(lambda: FailingSession(), transactions_per_client=3)
    assert stats["aborted"] == 3 and stats["completed"] == 0
