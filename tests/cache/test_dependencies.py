"""Dependency-extraction edge cases: what may be cached, at what
granularity, and what must never be (joins, IN-lists, subqueries,
``information_schema``, temporary tables, nondeterminism)."""

import pytest

from repro.cache import ReadDependencies, extract_read_dependencies
from repro.core.analysis import analyze
from repro.sqlengine import Engine, generic
from repro.sqlengine.parser import parse


@pytest.fixture
def schema_engine():
    e = Engine("deps", dialect=generic(), seed=7)
    e.create_database("shop")
    conn = e.connect(database="shop")
    conn.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
    conn.execute("CREATE TABLE other (id INT PRIMARY KEY, x INT)")
    for i in range(5):
        conn.execute(f"INSERT INTO kv (k, v) VALUES ({i}, {i * 10})")
        conn.execute(f"INSERT INTO other (id, x) VALUES ({i}, {i})")
    conn.close()
    return e


def extract(engine, sql, params=None, database="shop"):
    statement = parse(sql)
    info = analyze(statement)
    return extract_read_dependencies(statement, info, engine, database,
                                     params)


class TestPointProof:
    def test_pk_equality_is_a_point_dependency(self, schema_engine):
        deps = extract(schema_engine, "SELECT v FROM kv WHERE k = 2")
        assert deps is not None and deps.is_point
        assert deps.point_keys == {("shop", "kv", (2,))}
        assert deps.tables == {("shop", "kv")}

    def test_parameterized_pk_equality(self, schema_engine):
        deps = extract(schema_engine, "SELECT v FROM kv WHERE k = ?",
                       params=[3])
        assert deps.is_point
        assert deps.point_keys == {("shop", "kv", (3,))}

    def test_in_list_yields_one_key_per_member(self, schema_engine):
        deps = extract(schema_engine,
                       "SELECT v FROM kv WHERE k IN (1, 2, 4)")
        assert deps.is_point
        assert deps.point_keys == {("shop", "kv", (1,)),
                                   ("shop", "kv", (2,)),
                                   ("shop", "kv", (4,))}

    def test_aggregate_over_pk_probe_stays_point(self, schema_engine):
        deps = extract(schema_engine,
                       "SELECT COUNT(*) FROM kv WHERE k = 1")
        assert deps.is_point

    def test_table_alias_is_resolved(self, schema_engine):
        deps = extract(schema_engine,
                       "SELECT t.v FROM kv t WHERE t.k = 1")
        assert deps.is_point


class TestBroadFallback:
    def test_range_predicate_is_broad(self, schema_engine):
        deps = extract(schema_engine, "SELECT v FROM kv WHERE k > 1")
        assert deps is not None and not deps.is_point
        assert deps.tables == {("shop", "kv")}
        assert not deps.point_keys

    def test_non_key_predicate_is_broad(self, schema_engine):
        deps = extract(schema_engine, "SELECT k FROM kv WHERE v = 10")
        assert not deps.is_point

    def test_full_scan_is_broad(self, schema_engine):
        deps = extract(schema_engine, "SELECT COUNT(*) FROM kv")
        assert not deps.is_point
        assert deps.tables == {("shop", "kv")}

    def test_join_depends_broadly_on_both_tables(self, schema_engine):
        deps = extract(
            schema_engine,
            "SELECT kv.v, other.x FROM kv JOIN other ON kv.k = other.id "
            "WHERE kv.k = 1")
        assert deps is not None and not deps.is_point
        assert deps.tables == {("shop", "kv"), ("shop", "other")}
        assert not deps.point_keys

    def test_scalar_subquery_defeats_the_point_proof(self, schema_engine):
        deps = extract(
            schema_engine,
            "SELECT v FROM kv WHERE k = (SELECT MAX(id) FROM other)")
        assert deps is not None and not deps.is_point
        assert deps.tables == {("shop", "kv"), ("shop", "other")}

    def test_in_subquery_defeats_the_point_proof(self, schema_engine):
        deps = extract(
            schema_engine,
            "SELECT v FROM kv WHERE k IN (SELECT id FROM other)")
        assert deps is not None and not deps.is_point

    def test_exists_subquery_defeats_the_point_proof(self, schema_engine):
        deps = extract(
            schema_engine,
            "SELECT v FROM kv WHERE EXISTS "
            "(SELECT 1 FROM other WHERE other.id = kv.k)")
        assert deps is not None and not deps.is_point

    def test_derived_table_source_is_broad(self, schema_engine):
        deps = extract(
            schema_engine,
            "SELECT s.v FROM (SELECT v FROM kv WHERE k = 1) s")
        assert deps is not None and not deps.is_point
        assert ("shop", "kv") in deps.tables


class TestUncacheable:
    def test_nondeterministic_call_is_uncacheable(self, schema_engine):
        assert extract(schema_engine,
                       "SELECT v, NOW() FROM kv WHERE k = 1") is None

    def test_writes_are_uncacheable(self, schema_engine):
        assert extract(schema_engine,
                       "UPDATE kv SET v = 1 WHERE k = 1") is None

    def test_information_schema_is_uncacheable(self, schema_engine):
        assert extract(schema_engine,
                       "SELECT * FROM information_schema.tables") is None

    def test_unknown_table_is_uncacheable(self, schema_engine):
        assert extract(schema_engine, "SELECT * FROM ghost") is None

    def test_temp_table_read_is_uncacheable(self, schema_engine):
        conn = schema_engine.connect(database="shop")
        conn.execute("CREATE TEMPORARY TABLE scratch (id INT PRIMARY KEY)")
        try:
            # temp tables live in per-session space: unresolvable against
            # the shared schema, hence never cacheable across sessions
            assert extract(schema_engine,
                           "SELECT * FROM scratch") is None
        finally:
            conn.close()

    def test_no_default_database_is_uncacheable(self, schema_engine):
        assert extract(schema_engine, "SELECT v FROM kv WHERE k = 1",
                       database=None) is None


class TestTableless:
    def test_select_one_has_empty_dependencies(self, schema_engine):
        deps = extract(schema_engine, "SELECT 1")
        assert isinstance(deps, ReadDependencies)
        assert deps.tables == frozenset()
        assert not deps.is_point
