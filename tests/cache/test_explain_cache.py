"""EXPLAIN reports what the result cache would do with the statement."""

import pytest

from repro.cache import ResultCacheConfig
from repro.core import (
    MiddlewareConfig, ReplicationMiddleware, protocol_by_name,
)
from tests.conftest import KV_SCHEMA, make_replicas, seed_kv


def cache_decision(result):
    for row in result.rows:
        if row[0] == "CACHE":
            return row[2]
    return None


@pytest.fixture
def mw():
    replicas = make_replicas(3, schema=KV_SCHEMA)
    middleware = ReplicationMiddleware(
        replicas,
        MiddlewareConfig(replication="statement",
                         consistency=protocol_by_name("gsi"),
                         result_cache=ResultCacheConfig()))
    seed_kv(middleware)
    return middleware


class TestExplainCacheRow:
    def test_cold_statement_reports_miss(self, mw):
        s = mw.connect(database="shop")
        result = s.execute("EXPLAIN SELECT v FROM kv WHERE k = 1")
        assert cache_decision(result) == "cache miss"
        s.close()

    def test_filled_statement_reports_hit(self, mw):
        s = mw.connect(database="shop")
        s.execute("SELECT v FROM kv WHERE k = 1")
        result = s.execute("EXPLAIN SELECT v FROM kv WHERE k = 1")
        assert cache_decision(result) == "cache hit"
        s.close()

    def test_explain_itself_is_never_cached(self, mw):
        s = mw.connect(database="shop")
        s.execute("EXPLAIN SELECT v FROM kv WHERE k = 1")
        result = s.execute("EXPLAIN SELECT v FROM kv WHERE k = 1")
        assert not getattr(result, "from_cache", False)
        assert len(mw.result_cache) == 0
        s.close()

    def test_uncacheable_statement_is_reported(self, mw):
        s = mw.connect(database="shop")
        result = s.execute(
            "EXPLAIN SELECT v, NOW() FROM kv WHERE k = 1")
        assert cache_decision(result) == "cache bypass (uncacheable)"
        s.close()

    def test_transaction_bypass_is_reported(self, mw):
        s = mw.connect(database="shop")
        s.execute("BEGIN")
        result = s.execute("EXPLAIN SELECT v FROM kv WHERE k = 1")
        assert cache_decision(result) == "cache bypass (transaction)"
        s.execute("ROLLBACK")
        s.close()

    def test_session_statement_disables_caching(self, mw):
        s = mw.connect(database="shop")
        s.execute("USE shop")
        result = s.execute("EXPLAIN SELECT v FROM kv WHERE k = 1")
        assert cache_decision(result) == "cache bypass (session)"
        s.close()

    def test_broadcast_protocol_bypass_is_reported(self):
        replicas = make_replicas(3, schema=KV_SCHEMA)
        middleware = ReplicationMiddleware(
            replicas,
            MiddlewareConfig(replication="statement",
                             consistency=protocol_by_name("1sr"),
                             result_cache=ResultCacheConfig()))
        seed_kv(middleware)
        s = middleware.connect(database="shop")
        result = s.execute("EXPLAIN SELECT v FROM kv WHERE k = 1")
        assert cache_decision(result) == "cache bypass (protocol)"
        s.close()

    def test_no_cache_row_when_cache_is_off(self):
        replicas = make_replicas(3, schema=KV_SCHEMA)
        middleware = ReplicationMiddleware(
            replicas, MiddlewareConfig(replication="statement"))
        seed_kv(middleware)
        s = middleware.connect(database="shop")
        result = s.execute("EXPLAIN SELECT v FROM kv WHERE k = 1")
        assert cache_decision(result) is None
        s.close()
