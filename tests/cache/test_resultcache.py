"""Unit tests for the bounded LRU+TTL result store."""

from repro.cache import (
    CacheEntry, ReadDependencies, ResultCache, ResultCacheConfig,
    cache_key, normalize_statement,
)
from repro.sqlengine.executor import Result


def deps_broad(*tables):
    return ReadDependencies(frozenset(tables))


def deps_point(table, *pks):
    return ReadDependencies(
        frozenset({table}),
        point_keys=frozenset((table[0], table[1], pk) for pk in pks),
        point_tables=frozenset({table}))


def result(rows=((1,),)):
    return Result(columns=["v"], rows=list(rows), rowcount=len(rows))


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestKeying:
    def test_normalize_collapses_whitespace_and_semicolon(self):
        assert normalize_statement("  SELECT  1\n ; ") == "SELECT 1"

    def test_equivalent_spellings_share_a_key(self):
        a = cache_key("u", "shop", "SELECT * FROM kv WHERE k = 1", None)
        b = cache_key("u", "shop", "SELECT *  FROM kv\nWHERE k = 1;", ())
        assert a == b

    def test_case_is_preserved(self):
        a = cache_key("u", "shop", "SELECT 'A'", None)
        b = cache_key("u", "shop", "SELECT 'a'", None)
        assert a != b

    def test_params_distinguish_keys(self):
        a = cache_key("u", "shop", "SELECT v FROM kv WHERE k = ?", [1])
        b = cache_key("u", "shop", "SELECT v FROM kv WHERE k = ?", [2])
        assert a != b

    def test_unhashable_params_are_unkeyable(self):
        assert cache_key("u", "shop", "SELECT 1", [[1, 2]]) is None


class TestStore:
    def test_fill_then_peek_round_trips_the_result(self):
        cache = ResultCache(ResultCacheConfig(capacity=4))
        key = ("u", "shop", "q", ())
        entry = cache.put(key, result(), deps_broad(("shop", "kv")),
                          fill_seq=7)
        assert isinstance(entry, CacheEntry)
        got = cache.peek(key)
        assert got is entry
        served = got.to_result()
        assert served.from_cache and not served.stale
        assert served.rows == [(1,)]
        assert got.fill_seq == 7

    def test_served_rows_are_copies(self):
        cache = ResultCache(ResultCacheConfig(capacity=4))
        key = ("u", "shop", "q", ())
        cache.put(key, result(), deps_broad(("shop", "kv")), fill_seq=1)
        served = cache.peek(key).to_result()
        served.rows.append(("junk",))
        assert cache.peek(key).to_result().rows == [(1,)]

    def test_lru_eviction_prefers_stale_end(self):
        cache = ResultCache(ResultCacheConfig(capacity=2))
        d = deps_broad(("shop", "kv"))
        cache.put(("k1",), result(), d, 1)
        cache.put(("k2",), result(), d, 1)
        cache.peek(("k1",))  # touch k1 -> k2 is now LRU
        cache.put(("k3",), result(), d, 1)
        assert cache.peek(("k2",)) is None
        assert cache.peek(("k1",)) is not None
        assert cache.stats["evictions"] == 1

    def test_ttl_expiry_uses_injected_clock(self):
        clock = FakeClock()
        cache = ResultCache(ResultCacheConfig(capacity=4, ttl=10.0),
                            clock=clock)
        cache.put(("k",), result(), deps_broad(("shop", "kv")), 1)
        clock.now = 9.9
        assert cache.peek(("k",)) is not None
        clock.now = 10.0
        assert cache.peek(("k",)) is None
        assert cache.stats["expirations"] == 1

    def test_oversized_results_are_not_cached(self):
        cache = ResultCache(ResultCacheConfig(capacity=4, max_rows=2))
        big = result(rows=[(i,) for i in range(3)])
        assert cache.put(("k",), big, deps_broad(("shop", "kv")), 1) is None
        assert len(cache) == 0
        assert cache.stats["fill_rejected"] == 1


class TestInvalidation:
    TABLE = ("shop", "kv")

    def test_point_write_spares_unrelated_point_entries(self):
        cache = ResultCache()
        cache.put(("a",), result(), deps_point(self.TABLE, (1,)), 1)
        cache.put(("b",), result(), deps_point(self.TABLE, (2,)), 1)
        killed = cache.invalidate_point(("shop", "kv", (1,)))
        assert killed == 1
        assert cache.peek(("a",)) is None
        assert cache.peek(("b",)) is not None

    def test_point_write_kills_broad_entries_on_the_table(self):
        cache = ResultCache()
        cache.put(("scan",), result(), deps_broad(self.TABLE), 1)
        cache.invalidate_point(("shop", "kv", (99,)))
        assert cache.peek(("scan",)) is None

    def test_table_write_kills_point_entries_too(self):
        cache = ResultCache()
        cache.put(("a",), result(), deps_point(self.TABLE, (1,)), 1)
        cache.invalidate_table(self.TABLE)
        assert cache.peek(("a",)) is None

    def test_other_tables_are_untouched(self):
        cache = ResultCache()
        cache.put(("a",), result(), deps_broad(("shop", "other")), 1)
        cache.invalidate_table(self.TABLE)
        cache.invalidate_point(("shop", "kv", (1,)))
        assert cache.peek(("a",)) is not None

    def test_multi_table_entry_dies_with_any_of_its_tables(self):
        cache = ResultCache()
        cache.put(("join",), result(),
                  deps_broad(("shop", "kv"), ("shop", "other")), 1)
        cache.invalidate_table(("shop", "other"))
        assert cache.peek(("join",)) is None

    def test_flush_drops_everything_and_indexes(self):
        cache = ResultCache()
        cache.put(("a",), result(), deps_point(self.TABLE, (1,)), 1)
        cache.put(("b",), result(), deps_broad(self.TABLE), 1)
        assert cache.flush() == 2
        assert len(cache) == 0
        assert not cache._by_point and not cache._by_table_all

    def test_refill_replaces_index_entries(self):
        cache = ResultCache()
        key = ("k",)
        cache.put(key, result(), deps_point(self.TABLE, (1,)), 1)
        cache.put(key, result(), deps_point(self.TABLE, (2,)), 2)
        # the old footprint must no longer resurrect the key
        cache.invalidate_point(("shop", "kv", (1,)))
        assert cache.peek(key) is not None
        cache.invalidate_point(("shop", "kv", (2,)))
        assert cache.peek(key) is None

    def test_snapshot_reports_rates(self):
        cache = ResultCache(ResultCacheConfig(capacity=10))
        cache.put(("k",), result(), deps_broad(self.TABLE), 1)
        cache.stats["hits"] = 3
        cache.stats["misses"] = 1
        snap = cache.snapshot()
        assert snap["size"] == 1
        assert snap["hit_rate"] == 0.75
