"""The consistency gate: which protocol may serve which cached entry,
and how degraded mode turns shortfalls into labelled-stale hits."""

from repro.cache import (
    GATE_BYPASS_PROTOCOL, GATE_HIT, GATE_REJECT, GATE_STALE,
    ResultCacheConfig,
)
from repro.core import (
    MiddlewareConfig, ReplicationMiddleware, protocol_by_name,
)
from repro.core.resilience import ResiliencePolicy
from tests.conftest import KV_SCHEMA, make_replicas, seed_kv


def cached_cluster(consistency, replication="writeset",
                   propagation="sync", resilience=None):
    replicas = make_replicas(3, schema=KV_SCHEMA)
    middleware = ReplicationMiddleware(
        replicas,
        MiddlewareConfig(replication=replication, propagation=propagation,
                         consistency=protocol_by_name(consistency),
                         resilience=resilience,
                         result_cache=ResultCacheConfig()))
    middleware.interleave_auto_increment()
    seed_kv(middleware)
    return middleware


class TestProtocolBypass:
    def test_1sr_never_touches_the_cache(self):
        mw = cached_cluster("1sr", replication="statement")
        s = mw.connect(database="shop")
        for _ in range(3):
            result = s.execute("SELECT v FROM kv WHERE k = 1")
            assert not getattr(result, "from_cache", False)
        stats = mw.result_cache.stats
        assert stats["hits"] == 0 and stats["fills"] == 0
        assert stats["bypass_protocol"] > 0
        assert len(mw.result_cache) == 0
        s.close()

    def test_gate_reports_bypass_for_broadcast(self):
        mw = cached_cluster("1sr", replication="statement")
        s = mw.connect(database="shop")
        assert not mw.cache_gate.protocol_allows_caching
        assert mw.cache_gate.decide(s) == (GATE_BYPASS_PROTOCOL, 0)
        s.close()


class TestSnapshotFamily:
    def test_gsi_serves_any_cached_prefix(self):
        mw = cached_cluster("gsi")
        s = mw.connect(database="shop")
        s.execute("SELECT v FROM kv WHERE k = 1")
        assert mw.cache_gate.decide(s) == (GATE_HIT, 0)
        result = s.execute("SELECT v FROM kv WHERE k = 1")
        assert result.from_cache and not result.stale
        s.close()

    def test_hits_skip_the_balancer(self):
        mw = cached_cluster("gsi")
        s = mw.connect(database="shop")
        s.execute("SELECT v FROM kv WHERE k = 1")
        decisions = mw.config.balancer.decisions
        s.execute("SELECT v FROM kv WHERE k = 1")
        assert mw.config.balancer.decisions == decisions
        assert mw.config.balancer.cache_bypasses == 1
        s.close()

    def test_strong_si_hits_while_watermark_is_current(self):
        mw = cached_cluster("strong-si")
        s = mw.connect(database="shop")
        s.execute("SELECT v FROM kv WHERE k = 1")
        s.execute("UPDATE kv SET v = 7 WHERE k = 2")  # seq moves + publish
        assert mw.cache_invalidator.applied_seq == mw.global_seq
        result = s.execute("SELECT v FROM kv WHERE k = 1")
        assert result.from_cache
        s.close()

    def test_strong_si_rejects_a_lagging_watermark(self):
        mw = cached_cluster("strong-si")
        s = mw.connect(database="shop")
        s.execute("SELECT v FROM kv WHERE k = 1")
        # simulate a certified commit whose publication the invalidator
        # has not yet seen: the global sequence is ahead of the watermark
        mw.cache_invalidator.applied_seq -= 1
        assert mw.cache_gate.decide(s) == (GATE_REJECT, 1)
        result = s.execute("SELECT v FROM kv WHERE k = 1")
        assert not getattr(result, "from_cache", False)
        assert mw.result_cache.stats["gate_rejections"] >= 1
        s.close()

    def test_gsi_tolerates_the_same_lag(self):
        mw = cached_cluster("gsi")
        s = mw.connect(database="shop")
        s.execute("SELECT v FROM kv WHERE k = 1")
        mw.cache_invalidator.applied_seq -= 1
        assert mw.cache_gate.decide(s) == (GATE_HIT, 0)
        s.close()


class TestSessionProtocols:
    def test_session_reads_its_own_writes_through_the_cache(self):
        mw = cached_cluster("strong-session-si",
                            replication="statement")
        s = mw.connect(database="shop")
        s.execute("UPDATE kv SET v = 5 WHERE k = 1")
        first = s.execute("SELECT v FROM kv WHERE k = 1")
        assert first.rows == [(5,)]
        again = s.execute("SELECT v FROM kv WHERE k = 1")
        assert again.from_cache and again.rows == [(5,)]
        s.close()

    def test_writer_session_rejects_stale_watermark_reader_hits(self):
        mw = cached_cluster("pcsi")
        writer = mw.connect(database="shop")
        reader = mw.connect(database="shop")
        reader.execute("SELECT v FROM kv WHERE k = 1")
        writer.execute("UPDATE kv SET v = 3 WHERE k = 2")
        # hold the watermark behind the writer's commit
        mw.cache_invalidator.applied_seq -= 1
        decision, lag = mw.cache_gate.decide(writer)
        assert decision == GATE_REJECT and lag == 1
        # the read-only session demands nothing it has not seen
        assert mw.cache_gate.decide(reader) == (GATE_HIT, 0)
        writer.close()
        reader.close()


class TestDegradedServing:
    def test_stale_hit_is_labelled_under_degraded_strong_si(self):
        mw = cached_cluster(
            "strong-si",
            resilience=ResiliencePolicy(max_staleness=10))
        s = mw.connect(database="shop")
        s.execute("SELECT v FROM kv WHERE k = 1")
        mw.master.mark_failed()          # degraded: master gone
        mw.cache_invalidator.applied_seq -= 1
        assert mw.cache_gate.decide(s) == (GATE_STALE, 1)
        result = s.execute("SELECT v FROM kv WHERE k = 1")
        assert result.from_cache and result.stale and result.lag == 1
        assert mw.result_cache.stats["stale_hits"] == 1
        assert mw.resilience.stats["stale_cache_served"] == 1
        s.close()

    def test_staleness_budget_bounds_the_lag(self):
        mw = cached_cluster(
            "strong-si",
            resilience=ResiliencePolicy(max_staleness=2))
        s = mw.connect(database="shop")
        s.execute("SELECT v FROM kv WHERE k = 1")
        mw.master.mark_failed()
        mw.cache_invalidator.applied_seq -= 5
        assert mw.cache_gate.decide(s) == (GATE_REJECT, 5)
        s.close()

    def test_total_outage_falls_back_to_fresh_cache_hit(self):
        mw = cached_cluster(
            "gsi", resilience=ResiliencePolicy(max_staleness=10))
        s = mw.connect(database="shop")
        kept = s.execute("SELECT v FROM kv WHERE k = 1")
        for replica in mw.replicas:
            replica.mark_failed()
        # gsi: the entry is as fresh as the protocol demands, so the
        # outage is invisible for this read
        result = s.execute("SELECT v FROM kv WHERE k = 1")
        assert result.from_cache and not result.stale
        assert result.rows == kept.rows
        s.close()


class TestTempTableShadow:
    def test_temp_table_shadowing_vetoes_the_cached_entry(self):
        mw = cached_cluster("gsi", replication="statement")
        filler = mw.connect(database="shop")
        filler.execute("SELECT v FROM kv WHERE k = 1")
        assert len(mw.result_cache) == 1
        shadow = mw.connect(database="shop")
        shadow.execute(
            "CREATE TEMPORARY TABLE kv (k INT PRIMARY KEY, v INT)")
        shadow.execute("INSERT INTO kv (k, v) VALUES (77, 1)")
        result = shadow.execute("SELECT v FROM kv WHERE k = 1")
        assert not getattr(result, "from_cache", False)
        assert result.rows == []  # the temp table answered, not the cache
        filler.close()
        shadow.close()


class TestMultiStatementSafety:
    def test_scripts_never_fill_or_hit_the_cache(self):
        mw = cached_cluster("gsi", replication="statement")
        s = mw.connect(database="shop")
        s.execute("SELECT v FROM kv WHERE k = 4; SELECT v FROM kv "
                  "WHERE k = 5")
        assert len(mw.result_cache) == 0
        s.close()

    def test_recovery_resets_the_cache(self):
        mw = cached_cluster("gsi", replication="statement")
        s = mw.connect(database="shop")
        s.execute("SELECT v FROM kv WHERE k = 1")
        assert len(mw.result_cache) == 1
        mw.fail()
        mw.recover()
        assert len(mw.result_cache) == 0
        assert mw.cache_invalidator.applied_seq == mw.global_seq
