"""The writeset-driven invalidator: key-granular kills, watermark
advance, opaque flushes, and the bounded-history fill guard."""

from repro.cache import (
    CertifiedWrite, ReadDependencies, ResultCache, WritesetInvalidator,
)
from repro.core.writesets import invalidation_keys
from repro.sqlengine.executor import Result
from tests.conftest import KV_SCHEMA, make_replicas, seed_kv

from repro.core import (
    MiddlewareConfig, ReplicationMiddleware, protocol_by_name,
)


def fill(cache, name, deps, seq=0):
    key = (name,)
    cache.put(key, Result(columns=["v"], rows=[(1,)], rowcount=1),
              deps, fill_seq=seq)
    return key


def point_deps(pk):
    return ReadDependencies(
        frozenset({("shop", "kv")}),
        point_keys=frozenset({("shop", "kv", pk)}),
        point_tables=frozenset({("shop", "kv")}))


BROAD = ReadDependencies(frozenset({("shop", "kv")}))


class TestStream:
    def test_point_event_kills_matching_entry_only(self):
        cache = ResultCache()
        inv = WritesetInvalidator(cache)
        k1 = fill(cache, "one", point_deps((1,)))
        k2 = fill(cache, "two", point_deps((2,)))
        inv.on_certified(CertifiedWrite(
            seq=1, keys=frozenset({("shop", "kv", (1,))})))
        assert cache.peek(k1) is None
        assert cache.peek(k2) is not None
        assert inv.applied_seq == 1

    def test_table_level_key_kills_everything_on_the_table(self):
        cache = ResultCache()
        inv = WritesetInvalidator(cache)
        k1 = fill(cache, "one", point_deps((1,)))
        scan = fill(cache, "scan", BROAD)
        inv.on_certified(CertifiedWrite(
            seq=1, keys=frozenset({("shop", "kv", None)})))
        assert cache.peek(k1) is None and cache.peek(scan) is None

    def test_opaque_kinds_flush_the_cache(self):
        for kind in ("ddl", "opaque"):
            cache = ResultCache()
            inv = WritesetInvalidator(cache)
            fill(cache, "one", point_deps((1,)))
            inv.on_certified(CertifiedWrite(seq=5, kind=kind))
            assert len(cache) == 0
            assert inv.applied_seq == 5

    def test_empty_footprint_still_advances_the_watermark(self):
        inv = WritesetInvalidator(ResultCache())
        inv.on_certified(CertifiedWrite(seq=3, kind="statements"))
        assert inv.applied_seq == 3

    def test_reset_flushes_and_realigns(self):
        cache = ResultCache()
        inv = WritesetInvalidator(cache)
        fill(cache, "one", BROAD)
        inv.on_certified(CertifiedWrite(seq=1, keys=frozenset()))
        inv.reset(9)
        assert len(cache) == 0
        assert inv.applied_seq == 9
        # nothing cached at reset time -> no gratuitous flush count bump
        flushes = cache.stats["flushes"]
        inv.reset(10)
        assert cache.stats["flushes"] == flushes


class TestFillGuard:
    def test_no_writes_since_means_no_conflict(self):
        inv = WritesetInvalidator(ResultCache())
        inv.on_certified(CertifiedWrite(seq=1, keys=frozenset()))
        assert inv.conflicts_since(1, BROAD) is False
        assert inv.conflicts_since(5, BROAD) is False

    def test_overlapping_write_in_window_conflicts(self):
        inv = WritesetInvalidator(ResultCache())
        inv.on_certified(CertifiedWrite(
            seq=2, keys=frozenset({("shop", "kv", (1,))})))
        assert inv.conflicts_since(1, point_deps((1,))) is True
        assert inv.conflicts_since(1, BROAD) is True

    def test_disjoint_write_in_window_does_not_conflict(self):
        inv = WritesetInvalidator(ResultCache())
        inv.on_certified(CertifiedWrite(
            seq=2, keys=frozenset({("shop", "kv", (9,))})))
        assert inv.conflicts_since(1, point_deps((1,))) is False
        inv.on_certified(CertifiedWrite(
            seq=3, keys=frozenset({("shop", "other", None)})))
        assert inv.conflicts_since(1, point_deps((1,))) is False

    def test_opaque_event_conflicts_with_everything(self):
        inv = WritesetInvalidator(ResultCache())
        inv.on_certified(CertifiedWrite(seq=2, kind="opaque"))
        assert inv.conflicts_since(1, point_deps((1,))) is True

    def test_window_past_history_is_unknown(self):
        inv = WritesetInvalidator(ResultCache(), history_limit=2)
        for seq in range(1, 6):
            inv.on_certified(CertifiedWrite(
                seq=seq, keys=frozenset({("shop", "kv", (seq,))})))
        # history holds seqs {4, 5}; floor is 3
        assert inv.conflicts_since(4, point_deps((5,))) is True
        assert inv.conflicts_since(4, point_deps((1,))) is False
        assert inv.conflicts_since(2, point_deps((1,))) is None


class TestInvalidationKeys:
    def test_pk_changing_update_also_kills_destination_key(
            self, writeset_cluster):
        engine = writeset_cluster.replicas[0].engine
        entries = [{
            "database": "shop", "table": "kv", "op": "UPDATE",
            "primary_key": (1,), "old_values": {"k": 1, "v": 0},
            "new_values": {"k": 11, "v": 0},
        }]
        keys = invalidation_keys(entries, engine)
        assert ("shop", "kv", (1,)) in keys
        assert ("shop", "kv", (11,)) in keys

    def test_plain_update_keeps_one_key(self, writeset_cluster):
        engine = writeset_cluster.replicas[0].engine
        entries = [{
            "database": "shop", "table": "kv", "op": "UPDATE",
            "primary_key": (1,), "old_values": {"k": 1, "v": 0},
            "new_values": {"k": 1, "v": 5},
        }]
        assert invalidation_keys(entries, engine) == \
            frozenset({("shop", "kv", (1,))})


def cached_cluster(replication="writeset", consistency="gsi",
                   propagation="sync"):
    from repro.cache import ResultCacheConfig
    replicas = make_replicas(3, schema=KV_SCHEMA)
    middleware = ReplicationMiddleware(
        replicas,
        MiddlewareConfig(replication=replication, propagation=propagation,
                         consistency=protocol_by_name(consistency),
                         result_cache=ResultCacheConfig()))
    middleware.interleave_auto_increment()
    seed_kv(middleware)
    return middleware


class TestEndToEnd:
    def test_update_invalidates_only_the_written_key(self):
        mw = cached_cluster()
        s = mw.connect(database="shop")
        s.execute("SELECT v FROM kv WHERE k = 1")
        s.execute("SELECT v FROM kv WHERE k = 2")
        s.execute("UPDATE kv SET v = 99 WHERE k = 1")
        r1 = s.execute("SELECT v FROM kv WHERE k = 1")
        assert not getattr(r1, "from_cache", False)
        assert r1.rows == [(99,)]
        r2 = s.execute("SELECT v FROM kv WHERE k = 2")
        assert getattr(r2, "from_cache", False)
        s.close()

    def test_insert_invalidates_broad_scans(self):
        mw = cached_cluster()
        s = mw.connect(database="shop")
        before = s.execute("SELECT COUNT(*) FROM kv").scalar()
        s.execute("INSERT INTO kv (k, v) VALUES (100, 1)")
        after = s.execute("SELECT COUNT(*) FROM kv")
        assert not getattr(after, "from_cache", False)
        assert after.scalar() == before + 1
        s.close()

    def test_ddl_flushes_the_cache(self):
        mw = cached_cluster()
        s = mw.connect(database="shop")
        s.execute("SELECT v FROM kv WHERE k = 1")
        assert len(mw.result_cache) == 1
        s.execute("CREATE TABLE extra (id INT PRIMARY KEY)")
        assert len(mw.result_cache) == 0
        s.close()

    def test_pk_changing_update_kills_both_keys_end_to_end(self):
        mw = cached_cluster()
        s = mw.connect(database="shop")
        s.execute("SELECT v FROM kv WHERE k = 2")
        s.execute("SELECT v FROM kv WHERE k = 42")  # empty result, cached
        s.execute("UPDATE kv SET k = 42 WHERE k = 2")
        moved = s.execute("SELECT v FROM kv WHERE k = 42")
        assert not getattr(moved, "from_cache", False)
        assert moved.rows == [(0,)]
        s.close()

    def test_statement_mode_point_footprints(self):
        mw = cached_cluster(replication="statement",
                            consistency="strong-session-si")
        s = mw.connect(database="shop")
        s.execute("SELECT v FROM kv WHERE k = 1")
        s.execute("SELECT v FROM kv WHERE k = 2")
        s.execute("UPDATE kv SET v = v + 1 WHERE k = 2")
        r1 = s.execute("SELECT v FROM kv WHERE k = 1")
        assert getattr(r1, "from_cache", False)
        r2 = s.execute("SELECT v FROM kv WHERE k = 2")
        assert not getattr(r2, "from_cache", False)
        assert r2.rows == [(1,)]
        s.close()
