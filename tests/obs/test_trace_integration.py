"""Tracing wired through the live middleware: every executed statement
produces exactly one root ``mw.statement`` span whose children cover the
balancer, the replicas, certification and propagation — with zero
orphans (paper section 5.1: explaining requests, not just counting
them)."""

from repro.cache import ResultCacheConfig
from repro.core import (
    MiddlewareConfig, ReplicationMiddleware, protocol_by_name,
)
from repro.metrics.breakdown import trace_root
from tests.conftest import KV_SCHEMA, make_replicas, seed_kv


def build(replication="writeset", consistency="gsi", propagation="sync",
          result_cache=None, tracing=True, trace_retention=512, n=3):
    replicas = make_replicas(n, schema=KV_SCHEMA)
    middleware = ReplicationMiddleware(
        replicas,
        MiddlewareConfig(replication=replication, propagation=propagation,
                         consistency=protocol_by_name(consistency),
                         result_cache=result_cache, tracing=tracing,
                         trace_retention=trace_retention))
    seed_kv(middleware, rows=5)
    middleware.pump()
    middleware.tracer.clear()  # setup traffic is not under test
    return middleware


def roots_named(tracer, name):
    return [s for s in tracer.roots() if s.name == name]


def child_names(tracer, root):
    spans = tracer.trace(root.trace_id)
    return [s.name for s in spans if s.parent_id == root.span_id]


class TestStatementCoverage:
    def test_every_statement_gets_exactly_one_root_span(self):
        middleware = build()
        session = middleware.connect(database="shop")
        statements = [
            "SELECT v FROM kv WHERE k = 0",
            "UPDATE kv SET v = 1 WHERE k = 0",
            "SELECT v FROM kv WHERE k = 1",
            "INSERT INTO kv (k, v) VALUES (50, 5)",
        ]
        for sql in statements:
            session.execute(sql)
        session.close()
        roots = roots_named(middleware.tracer, "mw.statement")
        assert len(roots) == len(statements)
        for root, sql in zip(sorted(roots, key=lambda s: s.span_id),
                             statements):
            assert root.tags["sql"] == sql
            assert root.end_time is not None

    def test_read_has_balancer_and_replica_children(self):
        middleware = build()
        session = middleware.connect(database="shop")
        session.execute("SELECT v FROM kv WHERE k = 0")
        session.close()
        tracer = middleware.tracer
        root = roots_named(tracer, "mw.statement")[0]
        names = child_names(tracer, root)
        assert "balancer.choose" in names
        assert "replica.execute" in names
        choose = next(s for s in tracer.trace(root.trace_id)
                      if s.name == "balancer.choose")
        assert "replica" in choose.tags and "why" in choose.tags

    def test_write_trace_covers_certify_commit_propagate_apply(self):
        middleware = build()
        session = middleware.connect(database="shop")
        session.execute("UPDATE kv SET v = 9 WHERE k = 2")
        session.close()
        middleware.drain_all()
        tracer = middleware.tracer
        root = roots_named(tracer, "mw.statement")[0]
        spans = tracer.trace(root.trace_id)
        names = [s.name for s in spans]
        for expected in ("replica.execute", "certify", "replica.commit",
                         "propagate", "replica.apply"):
            assert expected in names, f"missing {expected}: {names}"
        certify = next(s for s in spans if s.name == "certify")
        assert certify.tags["ok"] is True and "seq" in certify.tags
        # sync propagation: one apply span per non-executing replica,
        # linked across the async boundary into the same trace
        applies = [s for s in spans if s.name == "replica.apply"]
        assert len(applies) == len(middleware.replicas) - 1
        propagate = next(s for s in spans if s.name == "propagate")
        for apply_span in applies:
            assert apply_span.parent_id == propagate.span_id
            assert "propagation_lag" in apply_span.tags

    def test_no_orphans_in_a_mixed_workload(self):
        middleware = build()
        session = middleware.connect(database="shop")
        for key in range(4):
            session.execute(f"UPDATE kv SET v = {key} WHERE k = {key}")
            session.execute(f"SELECT v FROM kv WHERE k = {key}")
        session.execute("BEGIN")
        session.execute("UPDATE kv SET v = 77 WHERE k = 0")
        session.execute("SELECT v FROM kv WHERE k = 0")
        session.execute("COMMIT")
        session.close()
        middleware.drain_all()
        tracer = middleware.tracer
        for spans in tracer.traces():
            ids = {s.span_id for s in spans}
            orphans = [s for s in spans
                       if s.parent_id is not None
                       and s.parent_id not in ids]
            assert orphans == [], f"orphan spans: {orphans}"
            assert trace_root(spans) is not None
        stats = tracer.snapshot()
        assert stats["spans_started"] == stats["spans_finished"]
        assert stats["spans_dropped"] == 0


class TestCacheAndTransactions:
    def test_cache_hit_produces_a_tagged_root(self):
        middleware = build(consistency="rsi-pc",
                           result_cache=ResultCacheConfig())
        session = middleware.connect(database="shop")
        sql = "SELECT v FROM kv WHERE k = 3"
        session.execute(sql)   # miss + fill
        session.execute(sql)   # hit: served without touching a replica
        session.close()
        tracer = middleware.tracer
        by_tag = {}
        for root in roots_named(tracer, "mw.statement"):
            if root.tags.get("sql") == sql:
                by_tag.setdefault(root.tags.get("cache"), []).append(root)
        assert len(by_tag.get("miss", [])) == 1
        hits = by_tag.get("hit", [])
        assert len(hits) == 1
        assert hits[0].duration == 0.0
        # the hit never reached the balancer or a replica
        assert child_names(tracer, hits[0]) == []

    def test_transaction_statements_share_no_root(self):
        """Each statement is its own root trace; the transaction is the
        session-level story (chaos runs add a ``request`` root above)."""
        middleware = build()
        session = middleware.connect(database="shop")
        session.execute("BEGIN")
        session.execute("UPDATE kv SET v = 5 WHERE k = 1")
        session.execute("COMMIT")
        session.close()
        roots = roots_named(middleware.tracer, "mw.statement")
        assert [r.tags["sql"] for r in
                sorted(roots, key=lambda s: s.span_id)] == \
            ["BEGIN", "UPDATE kv SET v = 5 WHERE k = 1", "COMMIT"]
        assert len({r.trace_id for r in roots}) == 3

    def test_commit_carries_certification_children(self):
        middleware = build()
        session = middleware.connect(database="shop")
        session.execute("BEGIN")
        session.execute("UPDATE kv SET v = 8 WHERE k = 4")
        session.execute("COMMIT")
        session.close()
        tracer = middleware.tracer
        commit_root = next(r for r in roots_named(tracer, "mw.statement")
                           if r.tags["sql"] == "COMMIT")
        names = child_names(tracer, commit_root)
        assert "certify" in names
        assert "replica.commit" in names
        assert "propagate" in names


class TestConfigKnobs:
    def test_tracing_off_records_nothing(self):
        middleware = build(tracing=False)
        session = middleware.connect(database="shop")
        session.execute("SELECT v FROM kv WHERE k = 0")
        session.execute("UPDATE kv SET v = 3 WHERE k = 3")
        session.close()
        middleware.drain_all()
        stats = middleware.tracer.snapshot()
        assert stats["spans_started"] == 0
        assert stats["retained_traces"] == 0

    def test_retention_bounds_middleware_traces(self):
        middleware = build(trace_retention=4)
        session = middleware.connect(database="shop")
        for index in range(10):
            session.execute(f"SELECT v FROM kv WHERE k = {index % 5}")
        session.close()
        stats = middleware.tracer.snapshot()
        assert stats["retained_traces"] == 4
        # 10 statements into 4 slots: at least 6 whole-trace evictions
        # (the exact counter includes pre-clear() setup traffic)
        assert stats["traces_evicted"] >= 6

    def test_trace_snapshot_and_explain_surface(self):
        middleware = build()
        session = middleware.connect(database="shop")
        session.execute("SELECT v FROM kv WHERE k = 0")
        session.close()
        snapshot = middleware.trace_snapshot()
        assert snapshot["spans_finished"] > 0
        assert middleware.monitor.count("trace_snapshot") == 1
        root = middleware.tracer.roots()[0]
        text = middleware.explain_request(root.trace_id)
        assert "TRACE" in text and "mw.statement" in text
        exported = middleware.export_traces()
        assert exported.count("\n") == snapshot["retained_spans"]

    def test_explain_unknown_trace_is_empty(self):
        middleware = build()
        assert middleware.explain_request(999999) == "(empty trace)"
