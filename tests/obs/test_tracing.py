"""Tracer/span unit tests: nesting, clock monotonicity, bounded
retention, JSON-lines round-trips and the no-op null span (the
observability layer of paper section 5.1)."""

import io

import pytest

from repro.metrics.breakdown import (
    BreakdownAggregator, explain_trace, trace_breakdown, trace_root,
)
from repro.obs import (
    NULL_SPAN, Span, Tracer, group_by_trace, read_jsonl, spans_to_jsonl,
    write_jsonl,
)


class ManualClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


@pytest.fixture
def clock():
    return ManualClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock=clock)


# ---------------------------------------------------------------------------
# span lifecycle + nesting
# ---------------------------------------------------------------------------

class TestSpanNesting:
    def test_root_and_children_share_the_trace(self, tracer, clock):
        root = tracer.start_span("request", kind="read")
        child = tracer.child_span("balancer.choose", root)
        grandchild = tracer.child_span("replica.execute", child)
        assert child.trace_id == root.trace_id == grandchild.trace_id
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        assert root.is_root() and not child.is_root()
        for span in (grandchild, child, root):
            span.end()
        assert len(tracer.trace(root.trace_id)) == 3

    def test_separate_roots_get_separate_traces(self, tracer):
        a = tracer.start_span("request")
        b = tracer.start_span("request")
        assert a.trace_id != b.trace_id
        assert a.span_id != b.span_id

    def test_child_span_without_parent_is_null(self, tracer):
        assert tracer.child_span("orphan", None) is NULL_SPAN
        assert tracer.child_span("orphan", NULL_SPAN) is NULL_SPAN
        # nothing recorded: orphan prevention, not silent roots
        assert tracer.snapshot()["spans_started"] == 0

    def test_linked_span_joins_a_foreign_trace(self, tracer):
        root = tracer.start_span("propagate")
        root.end()
        linked = tracer.start_linked("replica.apply", root.trace_id,
                                     root.span_id, replica="r1")
        linked.end()
        spans = tracer.trace(root.trace_id)
        assert len(spans) == 2
        assert linked.parent_id == root.span_id

    def test_context_manager_tags_errors(self, tracer):
        with pytest.raises(ValueError):
            with tracer.start_span("request") as span:
                raise ValueError("boom")
        assert span.finished
        assert span.tags["error"] == "ValueError"

    def test_disabled_tracer_returns_null(self, clock):
        tracer = Tracer(clock=clock, enabled=False)
        assert tracer.start_span("request") is NULL_SPAN
        assert not NULL_SPAN  # falsy: `if span:` guards stay cheap
        # every null-span operation is a harmless no-op
        NULL_SPAN.set_tag("k", 1)
        NULL_SPAN.event("retry", attempt=1)
        NULL_SPAN.end()
        with NULL_SPAN:
            pass
        assert tracer.snapshot()["spans_started"] == 0


# ---------------------------------------------------------------------------
# clock behaviour
# ---------------------------------------------------------------------------

class TestClockMonotonicity:
    def test_timestamps_never_regress(self, tracer, clock):
        span = tracer.start_span("request")
        clock.advance(2.0)
        tracer.now()            # high-water mark at t=2
        clock.now = 0.5         # the injected clock misbehaves
        late = tracer.child_span("child", span)
        assert late.start >= 2.0
        late.end()
        span.end()
        assert late.end_time >= late.start
        assert span.end_time >= span.start

    def test_event_and_end_clamped_to_start(self, tracer, clock):
        clock.advance(1.0)
        span = tracer.start_span("request")
        span.event("retry", attempt=1)
        time, name, attrs = span.events[0]
        assert time >= span.start
        span.end(end_time=0.0)  # explicit end before start: clamped
        assert span.end_time == span.start
        assert span.duration == 0.0

    def test_duration_tracks_the_injected_clock(self, tracer, clock):
        span = tracer.start_span("request")
        clock.advance(1.5)
        span.end()
        assert span.duration == pytest.approx(1.5)

    def test_end_is_idempotent(self, tracer, clock):
        span = tracer.start_span("request")
        clock.advance(1.0)
        span.end()
        clock.advance(5.0)
        span.end()
        assert span.duration == pytest.approx(1.0)
        assert tracer.snapshot()["spans_finished"] == 1


# ---------------------------------------------------------------------------
# bounded retention
# ---------------------------------------------------------------------------

class TestBoundedRetention:
    def test_oldest_traces_evicted_whole(self, clock):
        tracer = Tracer(clock=clock, max_traces=3)
        roots = []
        for index in range(5):
            root = tracer.start_span("request", index=index)
            tracer.child_span("child", root).end()
            root.end()
            roots.append(root)
        stats = tracer.snapshot()
        assert stats["retained_traces"] == 3
        assert stats["traces_evicted"] == 2
        assert tracer.trace(roots[0].trace_id) == []
        assert tracer.trace(roots[-1].trace_id) != []
        # eviction removes whole traces: no orphan children survive
        for spans in tracer.traces():
            ids = {span.span_id for span in spans}
            assert all(span.parent_id in ids or span.is_root()
                       for span in spans)

    def test_late_finish_into_evicted_trace_is_dropped(self, clock):
        tracer = Tracer(clock=clock, max_traces=1)
        old = tracer.start_span("request")
        tracer.start_span("request").end()  # evicts `old`'s trace
        old.end()                           # finishes into the void
        stats = tracer.snapshot()
        assert stats["spans_dropped"] == 1
        assert stats["retained_traces"] == 1

    def test_clear_resets_retention_not_counters(self, tracer):
        tracer.start_span("request").end()
        tracer.clear()
        stats = tracer.snapshot()
        assert stats["retained_traces"] == 0
        assert stats["spans_finished"] == 1


# ---------------------------------------------------------------------------
# JSON-lines export
# ---------------------------------------------------------------------------

class TestExportRoundTrip:
    def test_spans_round_trip(self, tracer, clock):
        root = tracer.start_span("request", kind="write")
        child = tracer.child_span("replica.execute", root, replica="r0")
        clock.advance(0.25)
        child.event("retry", attempt=1, backoff=0.1)
        child.end()
        root.end()

        buffer = io.StringIO()
        written = write_jsonl(tracer.finished_spans(), buffer)
        assert written == 2
        restored = read_jsonl(io.StringIO(buffer.getvalue()))
        assert [s.to_dict() for s in restored] == \
            [s.to_dict() for s in tracer.finished_spans()]
        grouped = group_by_trace(restored)
        assert set(grouped) == {root.trace_id}

    def test_read_skips_blank_lines(self):
        span = Span(None, 1, 2, None, "request", 0.0)
        span.end(end_time=1.0)
        text = spans_to_jsonl([span]) + "\n\n"
        assert len(read_jsonl(io.StringIO(text))) == 1

    def test_detached_span_preserves_events_and_tags(self):
        span = Span(None, 7, 8, 6, "certify", 1.0, {"seq": 3})
        span.events.append((1.5, "conflict", {"seq": 2}))
        span.end(end_time=2.0)
        clone = Span.from_dict(span.to_dict())
        assert clone.to_dict() == span.to_dict()
        assert clone.duration == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# breakdown arithmetic (the E25 fidelity bar, in miniature)
# ---------------------------------------------------------------------------

class TestBreakdown:
    def test_self_time_and_timed_events(self, tracer, clock):
        root = tracer.start_span("request")
        clock.advance(1.0)                      # 1.0s of root self time
        child = tracer.child_span("replica.execute", root)
        clock.advance(2.0)
        child.end()
        root.event("backoff", duration=0.5)     # charged by the caller
        clock.advance(0.5)
        root.end()
        stages = trace_breakdown(tracer.trace(root.trace_id))
        assert stages["replica.execute"] == pytest.approx(2.0)
        assert stages["backoff"] == pytest.approx(0.5)
        assert stages["request"] == pytest.approx(1.0)
        assert sum(stages.values()) == pytest.approx(root.duration)

    def test_untimed_events_are_not_stages(self, tracer, clock):
        root = tracer.start_span("request")
        root.event("retry", attempt=1, backoff=0.3)  # no duration attr
        clock.advance(1.0)
        root.end()
        stages = trace_breakdown(tracer.trace(root.trace_id))
        assert "retry" not in stages
        assert sum(stages.values()) == pytest.approx(1.0)

    def test_aggregator_coverage(self, tracer, clock):
        aggregator = BreakdownAggregator()
        for _ in range(3):
            root = tracer.start_span("request")
            child = tracer.child_span("replica.execute", root)
            clock.advance(1.0)
            child.end()
            root.end()
            aggregator.add_trace(tracer.trace(root.trace_id))
        summary = aggregator.summary()
        assert summary["traces"] == 3
        assert summary["coverage"] == pytest.approx(1.0)
        assert summary["stages"]["replica.execute"]["count"] == 3

    def test_explain_trace_renders_tree(self, tracer, clock):
        root = tracer.start_span("request", kind="read")
        child = tracer.child_span("balancer.choose", root, replica="r1")
        child.event("degraded_read", lag=4)
        clock.advance(0.01)
        child.end()
        root.end()
        text = explain_trace(tracer.trace(root.trace_id))
        assert "TRACE" in text and "balancer.choose" in text
        assert "degraded_read" in text and "replica=r1" in text
        assert trace_root(tracer.trace(root.trace_id)) is root
