#!/usr/bin/env python3
"""Autonomic replica provisioning (paper section 4.4.2, citing [9]).

The paper's agenda: "Being able to model and predict replica
synchronization time and its associated resource cost is key to efficient
autonomic middleware-based replicated databases."

This example runs the sense-decide-act loop: under a load spike the
provisioner predicts the synchronization cost of a new replica, adds it
through the recovery-log strategy when the prediction is feasible, and
scales back in when the spike passes.  It also shows the refusal case —
an update stream faster than the replay rate means a new replica would
never catch up, so the provisioner holds.
"""

from repro.bench import build_cluster, load_workload
from repro.core import (
    ApplyItem, AutonomicProvisioner, CostModel, Replica, SyncTimePredictor,
)
from repro.sqlengine import Engine, postgresql
from repro.workloads import MicroWorkload


def main() -> None:
    middleware = build_cluster(3, replication="writeset",
                               propagation="sync", consistency="gsi")
    load_workload(middleware, MicroWorkload(rows=500))

    def replica_factory(name: str) -> Replica:
        return Replica(name, Engine(name, dialect=postgresql()))

    provisioner = AutonomicProvisioner(
        middleware, replica_factory=replica_factory,
        high_watermark=3.0, low_watermark=0.5,
        min_replicas=2, max_replicas=6)

    # --- a feasibility prediction, before anything happens
    predictor = SyncTimePredictor(CostModel(), replay_parallelism=4)
    prediction = predictor.predict(backup_rows=provisioner.total_rows(),
                                   log_entries_behind=200,
                                   cluster_update_rate=150.0)
    print(f"sync prediction at 150 writes/s: {prediction}")

    # --- load spike: queues build up on every replica
    for replica in middleware.replicas:
        for seq in range(8):
            replica.enqueue(ApplyItem(10_000 + seq, "writeset", []))
    decision = provisioner.step(update_rate=150.0)
    print(f"under load  -> {decision}")
    print(f"cluster now: {[r.name for r in middleware.online_replicas()]}")
    print(f"new replica converged: {middleware.check_convergence()}")

    # --- the refusal case: updates outpace any serial replay
    provisioner.predictor = SyncTimePredictor(
        CostModel(writeset_apply=0.01), replay_parallelism=1)
    for replica in middleware.replicas:
        for seq in range(8):
            replica.enqueue(ApplyItem(20_000 + seq, "writeset", []))
    decision = provisioner.step(update_rate=500.0)
    print(f"hot stream  -> {decision}")

    # --- spike over: scale back in
    for replica in middleware.replicas:
        replica.apply_queue.clear()
    provisioner.predictor = SyncTimePredictor()
    decision = provisioner.step(update_rate=5.0)
    print(f"idle        -> {decision}")
    print(f"cluster now: {[r.name for r in middleware.online_replicas()]}")


if __name__ == "__main__":
    main()
