#!/usr/bin/env python3
"""Figure 2: hash-partitioned cluster for write scalability.

Orders are hash-partitioned across three replica groups (each internally
replicated for availability); a reference table is global.  Point queries
hit one partition, analytics scatter-gather across all of them, and writes
proceed in parallel per partition — the RAID-0 analogy of section 2.1.
"""

from repro.bench import build_cluster
from repro.core import HashPartitioner, PartitionedCluster, UnsupportedStatementError


def main() -> None:
    groups = [
        build_cluster(2, replication="statement", name=f"part{i}")
        for i in range(3)
    ]
    cluster = PartitionedCluster(groups)
    session = cluster.connect(database="shop")

    # DDL is broadcast so every partition group has the schema.
    session.execute("""CREATE TABLE orders (
        id INT PRIMARY KEY, customer VARCHAR(20), total FLOAT)""")
    session.execute("""CREATE TABLE countries (
        code VARCHAR(4) PRIMARY KEY, name VARCHAR(30))""")
    cluster.register_table("orders", "id", HashPartitioner(3))

    # Writes spread across partitions by key.
    for order_id in range(30):
        session.execute(
            f"INSERT INTO orders (id, customer, total) "
            f"VALUES ({order_id}, 'cust{order_id % 7}', {order_id * 1.5})")
    session.execute(
        "INSERT INTO countries (code, name) VALUES ('CH', 'Switzerland')")

    per_partition = [
        g.replicas[0].engine.row_count("shop", "orders") for g in groups
    ]
    print("orders per partition:", per_partition)

    # Point query: routed to exactly one partition.
    row = session.execute("SELECT customer, total FROM orders WHERE id = 17")
    print("point lookup (1 partition):", row.rows)

    # Scatter-gather analytics: intra-query parallelism across partitions.
    count = session.execute("SELECT COUNT(*) FROM orders").scalar()
    total = session.execute("SELECT SUM(total) FROM orders").scalar()
    print(f"scatter-gather: {count} orders, total={total:.1f}")
    print("routing stats:", cluster.stats)

    # The open problem of section 5.1: a write without the partition key
    # would need cross-partition coordination — refused explicitly.
    try:
        session.execute("UPDATE orders SET total = 0 WHERE customer = 'cust1'")
    except UnsupportedStatementError as exc:
        print(f"cross-partition write refused (expected): {exc}")

    # Each partition group is itself replicated and convergent.
    print("all groups converged:", cluster.check_convergence())
    session.close()


if __name__ == "__main__":
    main()
