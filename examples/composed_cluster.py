#!/usr/bin/env python3
"""The composed tier, end to end (docs/TOPOLOGY.md, experiment E30).

Three shard groups, each fronted by an active/standby HA middleware
pair registered with the shard router.  We run ordinary traffic
through the composition, then exercise the two operations E30 drills
together: a fenced failover on one group and an online range split
between two others — and show the router re-resolving, the 2PC
coordinator surviving, and the final state converged with nothing
lost.
"""

from repro.bench.harness import build_composed_cluster
from repro.ha import HAPair
from repro.shard import OnlineReshard, RangeSharder

ROWS = 60


def main() -> None:
    # --- build: router -> HA pairs -> replication groups ------------
    cluster = build_composed_cluster(shards=3, replicas=2, name="demo")
    for group in cluster.groups:
        session = group.connect(database="shop")
        session.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
        session.close()
    # keys 0..39 on group 0, 40..59 on group 2; group 1 starts empty
    cluster.register_table("kv", "k", RangeSharder([39, 10_000], [0, 2, 1]))

    session = cluster.connect(database="shop")
    for k in range(ROWS):
        session.execute(f"INSERT INTO kv (k, v) VALUES ({k}, 0)")
    print(f"composed cluster: {len(cluster.groups)} groups x "
          f"{len(cluster.groups[0].replicas)} replicas, "
          f"{ROWS} rows, map v{cluster.map.version}")

    # --- a cross-shard transaction (2PC under the hood) -------------
    session.execute("BEGIN")
    session.execute("UPDATE kv SET v = v + 1 WHERE k = 0")    # group 0
    session.execute("UPDATE kv SET v = v + 1 WHERE k = 50")   # group 2
    session.execute("COMMIT")
    print(f"cross-shard commit ok "
          f"(2pc commits: {cluster.stats['twopc_commits']})")

    # --- failover on group 2 while traffic flows --------------------
    pair = cluster.pairs[2]
    lost = pair.kill_active()
    pair.promote()
    print(f"killed group 2's active middleware "
          f"(in-txn sessions lost: {lost}); promoted the standby")
    # the router repointed groups[2]; the same client session carries on
    value = session.execute("SELECT v FROM kv WHERE k = 50").rows[0][0]
    print(f"same session reads k=50 from the promoted leader: v={value} "
          f"(group_promotions={cluster.stats['group_promotions']})")
    cluster.attach_pair(2, HAPair(cluster.groups[2]))  # restore a standby

    # --- online range split 0..19: group 0 -> group 1 ---------------
    move = OnlineReshard.split_range(cluster, "kv", 19, dst=1,
                                     database="shop")
    move.start()
    while move.state == "copying":
        move.copy_chunk(16)
    session.execute("UPDATE kv SET v = v + 1 WHERE k = 1")  # catch-up tail
    while move.catch_up():
        pass
    move.enter_dual_write()
    session.execute("UPDATE kv SET v = v + 1 WHERE k = 2")  # dual-written
    move.flip()
    print(f"split 0..19 onto group 1: copied "
          f"{move.stats['rows_copied']} rows, map now "
          f"v{cluster.map.version}")

    # --- prove nothing was lost -------------------------------------
    total = session.execute("SELECT SUM(v) FROM kv").rows[0][0]
    count = session.execute("SELECT COUNT(*) FROM kv").rows[0][0]
    per_group = []
    for group in cluster.groups:
        peek = group.connect(database="shop")
        per_group.append(
            peek.execute("SELECT COUNT(*) FROM kv").rows[0][0])
        peek.close()
    print(f"final: {count} rows (per group {per_group}), SUM(v)={total} "
          f"== 4 acked updates; converged={cluster.check_convergence()}")
    assert count == ROWS and total == 4
    assert cluster.check_convergence()
    session.close()


if __name__ == "__main__":
    main()
