#!/usr/bin/env python3
"""Figure 4: worldwide multi-way master/slave replication.

Three sites (EU, US, Asia), each a replicated cluster that is master for
its own geographic data.  Updates route to the owning site; asynchronous
shipping keeps the others eventually in sync.  A site disaster moves
ownership and quantifies the lost-update window.
"""

from repro.bench import build_cluster
from repro.core import Site, WanSystem


SCHEMA = """CREATE TABLE customers (
    id INT PRIMARY KEY, name VARCHAR(40), region VARCHAR(8), balance INT)"""


def make_site(name: str, regions) -> Site:
    middleware = build_cluster(2, replication="statement", name=name)
    session = middleware.connect(database="shop")
    session.execute(SCHEMA)
    session.close()
    return Site(name, middleware, regions)


def main() -> None:
    sites = [
        make_site("eu", ["eu"]),
        make_site("us", ["us"]),
        make_site("asia", ["asia"]),
    ]
    wan = WanSystem(sites, region_column="region")

    # European client: local writes are fast, US writes hop the ocean.
    eu_client = wan.connect("eu", database="shop")
    eu_client.execute(
        "INSERT INTO customers (id, name, region, balance) "
        "VALUES (1, 'claude', 'eu', 100)")
    eu_client.execute(
        "INSERT INTO customers (id, name, region, balance) "
        "VALUES (2, 'carol', 'us', 250)")
    print("write routing:", wan.stats)

    # Reads are always site-local: before shipping, EU does not see the
    # US row (asynchronous replication over WAN, section 4.3.4.1).
    local_count = eu_client.execute(
        "SELECT COUNT(*) FROM customers").scalar()
    print(f"EU sees {local_count} customer(s) before shipping")

    shipped = wan.ship_updates()
    local_count = eu_client.execute(
        "SELECT COUNT(*) FROM customers").scalar()
    print(f"shipped {shipped} entries; EU now sees {local_count}")

    # More US-bound updates, then disaster strikes before shipping.
    us_client = wan.connect("us", database="shop")
    us_client.execute("UPDATE customers SET balance = 300 WHERE region = 'us'")
    us_client.execute(
        "INSERT INTO customers (id, name, region, balance) "
        "VALUES (3, 'dave', 'us', 50)")
    backlog = wan.unshipped_backlog("us")
    report = wan.site_disaster("us")
    print(f"US site lost with {backlog} unshipped updates: {report}")

    # EU now owns 'us' data; clients keep working against stale-but-
    # consistent state (disaster recovery accepts a loss window).
    eu_client.execute(
        "INSERT INTO customers (id, name, region, balance) "
        "VALUES (4, 'erin', 'us', 75)")
    print("EU serves US region after takeover:",
          eu_client.execute(
              "SELECT COUNT(*) FROM customers WHERE region = 'us'").scalar(),
          "US rows visible")

    # The US site comes back and catches up from the survivors.
    replayed = wan.site_recovered("us")
    print(f"US site recovered, replayed {replayed} entries from peers")
    eu_client.close()
    us_client.close()


if __name__ == "__main__":
    main()
