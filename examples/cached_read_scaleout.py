#!/usr/bin/env python3
"""Consistency-aware result caching at the middleware (sections 4.1, 4.3).

A C-JDBC-style middleware sees every statement, so it can answer repeated
reads from a result cache without touching any replica — *if* it
invalidates from the same certified writeset stream that drives
replication, and *if* each hit is admitted by the session's consistency
protocol.  This example walks the life of the cache:

1. a point read fills the cache; the repeat is served without a replica;
2. a certified write kills exactly the entries it touches — unrelated
   keys keep hitting;
3. EXPLAIN reports the cache decision next to the access path;
4. a strict protocol (1SR) bypasses the cache entirely, and a degraded
   cluster serves an explicitly-labelled bounded-staleness hit.
"""

from repro.bench import build_cluster
from repro.cache import ResultCacheConfig
from repro.core import protocol_by_name
from repro.core.resilience import ResiliencePolicy


def show(result, label):
    origin = "cache" if getattr(result, "from_cache", False) else "replica"
    stale = " STALE(lag=%d)" % result.lag \
        if getattr(result, "stale", False) else ""
    print(f"  {label:<38} -> {result.rows!r:<12} from {origin}{stale}")


def main() -> None:
    middleware = build_cluster(
        3, replication="writeset", propagation="sync", consistency="gsi",
        result_cache=ResultCacheConfig(capacity=1024),
        resilience=ResiliencePolicy(max_staleness=100))
    session = middleware.connect(database="shop")
    session.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
    for k in range(10):
        session.execute(f"INSERT INTO kv (k, v) VALUES ({k}, {k * 10})")

    print("== fill, then hit ==")
    show(session.execute("SELECT v FROM kv WHERE k = 3"), "first read k=3")
    show(session.execute("SELECT v FROM kv WHERE k = 3"), "repeat read k=3")
    show(session.execute("SELECT v FROM kv WHERE k = 4"), "first read k=4")
    show(session.execute("SELECT v FROM kv WHERE k = 4"), "repeat read k=4")

    print("\n== writeset-driven invalidation is key-granular ==")
    session.execute("UPDATE kv SET v = 999 WHERE k = 3")
    show(session.execute("SELECT v FROM kv WHERE k = 3"),
         "read k=3 after write to k=3")
    show(session.execute("SELECT v FROM kv WHERE k = 4"),
         "read k=4 (untouched, still cached)")

    print("\n== EXPLAIN shows the cache decision ==")
    for row in session.execute("EXPLAIN SELECT v FROM kv WHERE k = 4").rows:
        print(f"  {row}")

    print("\n== a strict protocol refuses the cache ==")
    strict = build_cluster(3, replication="statement", consistency="1sr",
                           result_cache=ResultCacheConfig(), name="strict")
    s1 = strict.connect(database="shop")
    s1.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
    s1.execute("INSERT INTO kv (k, v) VALUES (1, 10)")
    show(s1.execute("SELECT v FROM kv WHERE k = 1"), "1SR first read")
    show(s1.execute("SELECT v FROM kv WHERE k = 1"), "1SR repeat read")
    print(f"  1SR bypasses: "
          f"{strict.result_cache.stats['bypass_protocol']} "
          f"(hits: {strict.result_cache.stats['hits']})")
    s1.close()

    print("\n== degraded mode: labelled bounded-staleness hit ==")
    middleware.master.mark_failed()
    # pretend the certified stream is one publication behind
    middleware.cache_invalidator.applied_seq -= 1
    middleware.config.consistency = protocol_by_name("strong-si")
    show(session.execute("SELECT v FROM kv WHERE k = 4"),
         "strong-si read, master down")

    print("\n== cache snapshot ==")
    for key, value in sorted(middleware.cache_snapshot().items()):
        print(f"  {key:<22} {value}")
    session.close()


if __name__ == "__main__":
    main()
