#!/usr/bin/env python3
"""Figure 3: hot standby with heartbeat detection and virtual-IP failover.

Master/slave pair (Slony-I style), asynchronous apply at the slave, a
heartbeat failure detector, and a virtual IP the application connects
through.  We compare the 1-safe loss window against 2-safe operation, and
exercise failback once the old master returns.
"""

from repro.bench import build_cluster, load_workload
from repro.cluster import Environment, HeartbeatDetector, Network
from repro.core import FailoverManager, VirtualIP
from repro.workloads import MicroWorkload


def run(safety: str) -> None:
    print(f"--- {safety} configuration ---")
    env = Environment()
    propagation = "sync" if safety == "2-safe" else "async"
    middleware = build_cluster(
        2, replication="writeset", propagation=propagation,
        consistency="rsi-pc", env=env, name=f"hs_{safety}")
    load_workload(middleware, MicroWorkload(rows=50))
    master, slave = middleware.replicas

    vip = VirtualIP("db-vip", master.name)
    failover = FailoverManager(middleware, vip)

    network = Network(env)
    heartbeat = HeartbeatDetector(env, network, "monitor",
                                  interval=0.5, timeout=0.5,
                                  miss_threshold=3)
    heartbeat.watch(master.node)
    heartbeat.watch(slave.node)
    detected = {}

    def on_failure(name: str) -> None:
        detected[name] = env.now
        replica = middleware.replica_by_name(name)
        report = failover.handle_replica_failure(
            name, discard_pending=(safety == "1-safe"))
        print(f"[{env.now:5.2f}s] {name} declared dead -> "
              f"promoted {report.new_master}, vip={vip.target}, "
              f"lost={report.lost_transactions} committed txns")

    heartbeat.on_failure(on_failure)
    heartbeat.start()

    # Application traffic: bursts of updates at the master.
    session = middleware.connect(database="shop")

    applied = {"count": 0, "failed": 0}

    def traffic():
        for i in range(40):
            try:
                session.execute(
                    f"UPDATE kv SET v = v + 1 WHERE k = {i % 50}")
                applied["count"] += 1
            except Exception:  # noqa: BLE001 — master down, retry next tick
                applied["failed"] += 1
            yield env.timeout(0.05)

    env.process(traffic(), name="app")

    # The master dies at t=1.5s.
    def fault():
        yield env.timeout(1.5)
        print(f"[{env.now:5.2f}s] master {master.name} crashes "
              f"(slave applied {slave.applied_seq}/{master.applied_seq})")
        master.node.crash()
        master.engine.crash()

    env.process(fault(), name="fault")
    env.run(until=10.0)
    heartbeat.stop()

    detection_latency = detected.get(master.name, 0.0) - 1.5
    print(f"detection latency: {detection_latency:.2f}s "
          f"(heartbeat interval 0.5s x 3 misses)")

    # Failback: the old master is repaired and resynchronized.
    master.node.recover()
    replayed = failover.failback(master.name)
    print(f"failback replayed {replayed} recovery-log entries; "
          f"cluster converged: {middleware.check_convergence()}")
    session.close()
    print()


def main() -> None:
    run("1-safe")
    run("2-safe")
    print("1-safe loses the in-flight shipping window; "
          "2-safe loses nothing but pays commit latency (section 2.2).")


if __name__ == "__main__":
    main()
