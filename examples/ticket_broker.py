#!/usr/bin/env python3
"""The Fortune-500 ticket broker scenario from the paper's introduction.

A 95%-read travel brokerage workload runs against a read-scaled cluster
(master handles bookings, slaves absorb searches).  Mid-run, the master
crashes; the failover manager promotes the freshest slave and we report
the outage the way the paper says customers experience it: "the difference
between a 30-second and a one-minute outage determines whether travel
agents retry ... or switch to another broker for the rest of the day".
"""

from repro.bench import ClosedLoopDriver, TimedCluster, build_cluster, load_workload
from repro.cluster import Environment
from repro.core import FailoverManager, VirtualIP
from repro.metrics import AvailabilityTracker
from repro.workloads import TicketBrokerWorkload


def main() -> None:
    env = Environment()
    middleware = build_cluster(
        4, replication="writeset", propagation="async",
        consistency="rsi-pc", env=env, name="broker")
    workload = TicketBrokerWorkload(offers=150, agencies=30,
                                    read_fraction=0.95)
    load_workload(middleware, workload)

    cluster = TimedCluster(env, middleware, apply_parallelism=2)
    driver = ClosedLoopDriver(cluster, workload, clients=12, seed=5)
    vip = VirtualIP("broker-db", middleware.master.name)
    failover = FailoverManager(middleware, vip)
    availability = AvailabilityTracker(start_time=0.0)

    crash_time = 10.0
    run_time = 30.0

    def crash_master():
        yield env.timeout(crash_time)
        master = middleware.master
        print(f"[{env.now:6.2f}s] master {master.name} crashes")
        master.node.crash()
        master.engine.crash()
        availability.service_down(env.now)
        # heartbeat detection delay before the failover kicks in
        yield env.timeout(2.0)
        report = failover.handle_replica_failure(master.name)
        availability.service_up(env.now)
        print(f"[{env.now:6.2f}s] promoted {report.new_master}; "
              f"virtual IP -> {vip.target}; "
              f"lost 1-safe window: {report.lost_transactions} txns")

    env.process(crash_master(), name="fault")
    driver.start(duration=run_time)
    env.run(until=run_time)
    availability.finish(env.now)
    cluster.stop()
    middleware.pump()

    metrics = driver.metrics
    print()
    print(f"transactions completed : {metrics.throughput.completed}")
    print(f"throughput             : {metrics.rate(run_time):8.1f} tps")
    print(f"read  p95 latency      : {metrics.read_latency.percentile(95)*1000:6.2f} ms")
    print(f"write p95 latency      : {metrics.write_latency.percentile(95)*1000:6.2f} ms")
    print(f"errors during failover : {dict(metrics.errors)}")
    summary = availability.summary()
    print(f"availability           : {summary['availability']*100:.3f}% "
          f"({summary['nines']:.1f} nines), MTTR={summary['mttr']:.1f}s")
    if summary["mttr"] <= 30.0:
        print("outage under 30s: agents retry — customer retained")
    else:
        print("outage over 60s: agents switch brokers for the day")


if __name__ == "__main__":
    main()
