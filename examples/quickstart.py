#!/usr/bin/env python3
"""Quickstart: a 3-replica multi-master cluster in a few lines.

Builds a writeset-replicated cluster with prefix-consistent snapshot
isolation (Tashkent-style), runs some SQL through the middleware, shows
certification catching a write-write conflict, and verifies that all three
replicas converged to identical contents.
"""

from repro import build_cluster, load_workload
from repro.sqlengine import SerializationError
from repro.workloads import MicroWorkload


def main() -> None:
    # Three PostgreSQL-like replicas behind one middleware, transaction
    # (writeset) replication, synchronous propagation, PCSI consistency.
    middleware = build_cluster(
        3, replication="writeset", propagation="sync", consistency="pcsi")
    load_workload(middleware, MicroWorkload(rows=100))

    print("Cluster:", [r.name for r in middleware.replicas])
    print("Protocol:", middleware.config.consistency.describe())

    # Plain SQL through the middleware — autocommit and transactions.
    with middleware.connect(database="shop") as session:
        session.execute("UPDATE kv SET v = v + 10 WHERE k = 5")
        session.begin()
        session.execute("UPDATE kv SET v = v + 1 WHERE k = 6")
        session.execute("UPDATE kv SET v = v + 1 WHERE k = 7")
        session.commit()
        value = session.execute("SELECT v FROM kv WHERE k = 5").scalar()
        print(f"kv[5] = {value}")

    # First-committer-wins certification: two transactions race on k=1.
    alice = middleware.connect(database="shop")
    bob = middleware.connect(database="shop")
    alice.begin()
    bob.begin()
    alice.execute("UPDATE kv SET v = 100 WHERE k = 1")
    bob.execute("UPDATE kv SET v = 200 WHERE k = 1")
    alice.commit()
    try:
        bob.commit()
    except SerializationError as exc:
        print(f"bob aborted by certification (expected): {exc}")
    alice.close()
    bob.close()

    # Every replica holds identical committed data.
    assert middleware.check_convergence()
    print("all replicas converged:", middleware.check_convergence())
    print("global commit sequence:", middleware.global_seq)
    final = middleware.connect(database="shop")
    print("kv[1] =", final.execute("SELECT v FROM kv WHERE k = 1").scalar())
    final.close()


if __name__ == "__main__":
    main()
